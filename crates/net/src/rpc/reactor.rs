//! Poll-driven reactor: one thread multiplexing every nonblocking
//! socket a daemon owns — its listener, each accepted RPC connection,
//! and each outbound durable link — over `poll(2)` ([`super::sys`]).
//!
//! This replaces the thread-per-accepted-connection and
//! thread-per-link model: fan-in no longer costs an OS thread (and its
//! stack) per socket, which is what caps a thread-per-connection daemon
//! at a few hundred clients.
//!
//! Each socket is a small state machine ([`Slot`]):
//!
//! - **Inbound connections** accumulate reads into a buffer and decode
//!   length-prefixed frames incrementally, dispatching every complete
//!   envelope of a readiness cycle to the [`RpcService`] in one batch
//!   (peer planes answer N entries with one batched ack frame —
//!   [`super::frame::seal_acks`]). Replies coalesce into a per-connection
//!   write buffer flushed on write readiness; a connection whose buffer
//!   exceeds [`WRITE_BUF_CAP`] stops being read until the peer drains
//!   it (backpressure instead of unbounded memory).
//! - **Outbound links** run the durable-queue retry contract as a
//!   dial/connect/pump state machine: nonblocking connect with a
//!   deadline, capped exponential redial backoff, full retransmission
//!   of unacknowledged entries on every new connection, and batched
//!   coalesced frame writes from the stable queue.
//!
//! A self-pipe carries wake-ups from other threads (new commands, new
//! queue entries), so the loop blocks in `poll` with no periodic tick
//! when idle.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use esr_obs::{LinkInstruments, ReactorInstruments};
use esr_storage::stable_queue::{EntryId, StableQueue};

use super::frame::{seal, write_frame, Envelope, KIND_CLIENT, KIND_PEER, MAX_FRAME, NO_ENTRY};
use super::sys::{self, PollFd, POLLERR, POLLHUP, POLLIN, POLLOUT};

use super::conn::{Backoff, Resolver};

/// A stable queue shared between a link's owner (who enqueues) and the
/// reactor (who drains it over TCP).
pub type SharedQueue = Arc<Mutex<Box<dyn StableQueue + Send>>>;

/// Write-buffer backpressure threshold: beyond this many buffered
/// bytes the reactor stops reading from (and replying to) a connection
/// until the peer drains what it already owes.
pub const WRITE_BUF_CAP: usize = 256 * 1024;

/// Per-`read(2)` scratch size.
const READ_CHUNK: usize = 64 * 1024;
/// Most bytes pulled off one socket per readiness cycle, for fairness.
const MAX_READ_PER_CYCLE: usize = 1024 * 1024;
/// Most envelopes dispatched per `handle_batch` call, bounding reply
/// amplification between write-buffer cap checks.
const ENV_BATCH: usize = 128;
/// Nonblocking connect deadline.
const CONNECT_TIMEOUT: Duration = Duration::from_millis(500);
/// Stable-queue entries fetched per transmit scan.
const LINK_BATCH: usize = 32;
/// While a link has backlog the reactor wakes at least this often, to
/// retry transmission and keep the queue gauges current.
const BACKLOG_TICK: Duration = Duration::from_millis(100);

/// Which plane an accepted connection speaks, learned from its first
/// byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnKind {
    /// Durable peer plane ([`KIND_PEER`]): entry-carrying envelopes
    /// that must be acknowledged.
    Peer,
    /// Client RPC plane ([`KIND_CLIENT`]): request/reply envelopes.
    Client,
}

/// An inbound-frame handler, dispatched on the reactor thread.
///
/// `envs` holds every complete envelope decoded in one readiness cycle
/// (bounded, in arrival order); replies and acknowledgements are
/// appended to `out` as already-framed bytes, which the reactor flushes
/// through the connection's coalescing write buffer. Returning `false`
/// closes the connection after a best-effort flush.
pub trait RpcService: Send + Sync + 'static {
    /// Handles one batch of inbound envelopes from a single connection.
    fn handle_batch(&self, kind: ConnKind, envs: Vec<Envelope>, out: &mut Vec<u8>) -> bool;
}

/// Everything the reactor needs to run one outbound durable link.
pub(crate) struct LinkSpec {
    /// The durable queue this link drains.
    pub queue: SharedQueue,
    /// Fresh peer address before every dial.
    pub resolve: Resolver,
    /// Greeting sent (outside the durable contract) on every connect.
    pub hello: Bytes,
    /// Redial backoff shape.
    pub backoff: Backoff,
    /// Per-link metrics bundle.
    pub obs: LinkInstruments,
}

enum Cmd {
    Serve(TcpListener, Arc<dyn RpcService>),
    AddLink(u64, LinkSpec),
    Nudge(u64),
    Remove(u64),
    Shutdown,
}

struct Ctrl {
    cmds: Mutex<Vec<Cmd>>,
    wake_tx: UnixStream,
    next_token: AtomicU64,
}

impl Ctrl {
    fn push(&self, cmd: Cmd) {
        match self.cmds.lock() {
            Ok(mut q) => q.push(cmd),
            Err(poisoned) => poisoned.into_inner().push(cmd),
        }
        // Nonblocking self-pipe: a full pipe already guarantees a
        // pending wake-up, so WouldBlock is success.
        let _ = (&self.wake_tx).write(&[1]);
    }
}

fn take_cmds(ctrl: &Ctrl) -> Vec<Cmd> {
    match ctrl.cmds.lock() {
        Ok(mut q) => std::mem::take(&mut *q),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

/// Locks a [`SharedQueue`], recovering from poisoning (the queue's own
/// state stays consistent — every mutation is atomic under the lock).
pub(crate) fn lock_queue(q: &SharedQueue) -> MutexGuard<'_, Box<dyn StableQueue + Send>> {
    match q.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Cheap clonable handle for submitting work to a running [`Reactor`].
#[derive(Clone)]
pub struct ReactorHandle {
    ctrl: Arc<Ctrl>,
}

impl ReactorHandle {
    /// Registers `listener` (switched to nonblocking) and serves every
    /// connection it accepts through `service`.
    pub fn serve(&self, listener: TcpListener, service: Arc<dyn RpcService>) {
        self.ctrl.push(Cmd::Serve(listener, service));
    }

    pub(crate) fn add_link(&self, spec: LinkSpec) -> u64 {
        let token = self.ctrl.next_token.fetch_add(1, Ordering::Relaxed);
        self.ctrl.push(Cmd::AddLink(token, spec));
        token
    }

    pub(crate) fn nudge(&self, token: u64) {
        self.ctrl.push(Cmd::Nudge(token));
    }

    pub(crate) fn remove(&self, token: u64) {
        self.ctrl.push(Cmd::Remove(token));
    }
}

/// The reactor thread plus its control handle. Dropping shuts the
/// thread down, closing every socket it owns (durable queues outlive
/// it — they belong to their links).
pub struct Reactor {
    handle: ReactorHandle,
    thread: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Spawns an unobserved reactor thread.
    pub fn new() -> io::Result<Self> {
        Self::with_instruments(ReactorInstruments::default())
    }

    /// Spawns the reactor thread with a metrics bundle.
    pub fn with_instruments(obs: ReactorInstruments) -> io::Result<Self> {
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let ctrl = Arc::new(Ctrl {
            cmds: Mutex::new(Vec::new()),
            wake_tx,
            next_token: AtomicU64::new(0),
        });
        let handle = ReactorHandle {
            ctrl: Arc::clone(&ctrl),
        };
        let thread = std::thread::Builder::new()
            .name("esr-reactor".into())
            .spawn(move || run(&ctrl, &wake_rx, &obs))?;
        Ok(Self {
            handle,
            thread: Some(thread),
        })
    }

    /// A clonable handle to this reactor.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// Registers `listener` and serves accepted connections through
    /// `service` (see [`ReactorHandle::serve`]).
    pub fn serve(&self, listener: TcpListener, service: Arc<dyn RpcService>) {
        self.handle.serve(listener, service);
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.handle.ctrl.push(Cmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Bytes coalesced for one socket, flushed on write readiness.
#[derive(Default)]
struct WriteBuf {
    buf: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Writes as much as the socket accepts; `Ok(true)` when drained.
    fn flush(&mut self, stream: &mut TcpStream) -> io::Result<bool> {
        while self.pos < self.buf.len() {
            match stream.write(&self.buf[self.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.buf.clear();
        self.pos = 0;
        Ok(true)
    }
}

fn be_u32(b: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[..4]);
    u32::from_be_bytes(a)
}

fn be_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_be_bytes(a)
}

/// Inbound bytes with incremental length-prefixed frame decoding.
#[derive(Default)]
struct RecvBuf {
    buf: Vec<u8>,
}

impl RecvBuf {
    /// Reads until `WouldBlock` (or `max_bytes`); `Ok(false)` on EOF.
    fn fill(&mut self, stream: &mut TcpStream, scratch: &mut [u8], max_bytes: usize) -> io::Result<bool> {
        let mut taken = 0;
        while taken < max_bytes {
            match stream.read(scratch) {
                Ok(0) => return Ok(false),
                Ok(n) => {
                    self.buf.extend_from_slice(&scratch[..n]);
                    taken += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Decodes up to `max` complete envelope frames off the front.
    /// `Err` means a protocol violation (oversized or truncated frame)
    /// and the connection must close.
    fn drain_envelopes(&mut self, out: &mut Vec<Envelope>, max: usize) -> io::Result<()> {
        let mut off = 0;
        while out.len() < max && self.buf.len() - off >= 4 {
            let len = be_u32(&self.buf[off..]) as usize;
            if len > MAX_FRAME {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "announced frame exceeds MAX_FRAME",
                ));
            }
            if self.buf.len() - off - 4 < len {
                break; // incomplete — wait for more bytes
            }
            let frame = &self.buf[off + 4..off + 4 + len];
            if frame.len() < 8 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame shorter than its envelope header",
                ));
            }
            out.push(Envelope {
                entry: be_u64(frame),
                payload: frame[8..].to_vec(),
            });
            off += 4 + len;
        }
        if off > 0 {
            self.buf.drain(..off);
        }
        Ok(())
    }
}

/// One accepted connection's state machine.
struct Inbound {
    stream: TcpStream,
    service: Arc<dyn RpcService>,
    kind: Option<ConnKind>,
    rbuf: RecvBuf,
    wbuf: WriteBuf,
}

enum LinkPhase {
    /// No connection; redial at `retry_at`.
    Down { retry_at: Instant },
    /// Nonblocking connect in flight.
    Connecting { stream: TcpStream, deadline: Instant },
    /// Established: pumping queue entries out, reaping acks in.
    Up {
        stream: TcpStream,
        rbuf: RecvBuf,
        wbuf: WriteBuf,
        /// Highest entry transmitted on *this* connection; resets on
        /// reconnect so unacknowledged entries retransmit.
        sent_high: Option<EntryId>,
    },
}

/// One outbound durable link's state machine.
struct LinkConn {
    token: u64,
    spec: LinkSpec,
    delay: Duration,
    /// Highest entry ever transmitted on *any* connection: anything at
    /// or below it written again is a retransmit, not a first send.
    sent_ever: Option<EntryId>,
    /// Start of the current non-empty stretch, for the queue-age gauge.
    backlog_since: Option<Instant>,
    phase: LinkPhase,
}

impl LinkConn {
    fn new(token: u64, spec: LinkSpec) -> Self {
        let delay = spec.backoff.initial;
        Self {
            token,
            spec,
            delay,
            sent_ever: None,
            backlog_since: None,
            phase: LinkPhase::Down {
                retry_at: Instant::now(),
            },
        }
    }

    /// Connection lost after being up: redial immediately (the backoff
    /// only grows on dial *failures*).
    fn drop_conn(&mut self) {
        self.phase = LinkPhase::Down {
            retry_at: Instant::now(),
        };
    }

    /// Dial failed (or the peer has no published address): back off.
    fn dial_failed(&mut self, now: Instant) {
        self.phase = LinkPhase::Down {
            retry_at: now + self.delay,
        };
        self.delay = (self.delay * 2).min(self.spec.backoff.max);
    }

    fn try_dial(&mut self, now: Instant) {
        match (self.spec.resolve)() {
            Some(addr) => match sys::connect_nonblocking(&addr) {
                Ok(stream) => {
                    self.phase = LinkPhase::Connecting {
                        stream,
                        deadline: now + CONNECT_TIMEOUT,
                    };
                }
                Err(_) => self.dial_failed(now),
            },
            None => self.dial_failed(now),
        }
    }

    /// Connect handshake finished: queue the kind byte + hello, reset
    /// the per-connection high-water mark so everything unacknowledged
    /// retransmits.
    fn go_up(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let mut wbuf = WriteBuf::default();
        wbuf.buf.push(KIND_PEER);
        let _ = write_frame(&mut wbuf.buf, &seal(NO_ENTRY, &self.spec.hello));
        self.delay = self.spec.backoff.initial;
        self.spec.obs.dialed();
        self.phase = LinkPhase::Up {
            stream,
            rbuf: RecvBuf::default(),
            wbuf,
            sent_high: None,
        };
    }
}

/// Checks `SO_ERROR` on a connect that reported writability and moves
/// the link up or back down.
fn finish_connect(l: &mut LinkConn, now: Instant) {
    let placeholder = LinkPhase::Down { retry_at: now };
    let LinkPhase::Connecting { stream, .. } = std::mem::replace(&mut l.phase, placeholder) else {
        return;
    };
    match sys::take_socket_error(&stream) {
        Ok(()) => l.go_up(stream),
        Err(_) => l.dial_failed(now),
    }
}

/// Refreshes the link's queue depth/age gauges.
fn refresh_queue_gauge(l: &mut LinkConn, depth: usize, now: Instant) {
    if !l.spec.obs.is_attached() {
        return;
    }
    if depth == 0 {
        l.backlog_since = None;
    } else if l.backlog_since.is_none() {
        l.backlog_since = Some(now);
    }
    let age = l
        .backlog_since
        .map_or(0, |t| now.duration_since(t).as_micros() as u64);
    l.spec.obs.queue(depth as u64, age);
}

/// Transmits pending queue entries into the link's write buffer
/// (coalesced, oldest first, past the connection's high-water mark) and
/// flushes what the socket accepts.
fn pump_link(l: &mut LinkConn, now: Instant) {
    let mut depth = lock_queue(&l.spec.queue).len();
    if let LinkPhase::Up {
        stream,
        wbuf,
        sent_high,
        ..
    } = &mut l.phase
    {
        let mut broken = false;
        while wbuf.pending() < WRITE_BUF_CAP {
            let batch = {
                let mut q = lock_queue(&l.spec.queue);
                let batch = q.pending_after(*sent_high, LINK_BATCH);
                for (id, _) in &batch {
                    q.record_attempt(*id);
                }
                depth = q.len();
                batch
            };
            if batch.is_empty() {
                break;
            }
            for (id, payload) in &batch {
                let _ = write_frame(&mut wbuf.buf, &seal(id.0, payload));
                if l.sent_ever.is_some_and(|h| id.0 <= h.0) {
                    l.spec.obs.retransmitted(1);
                } else {
                    l.spec.obs.sent(1);
                    l.sent_ever = Some(*id);
                }
                *sent_high = Some(*id);
            }
        }
        if wbuf.flush(stream).is_err() {
            broken = true;
        }
        if broken {
            l.drop_conn();
        }
    }
    refresh_queue_gauge(l, depth, now);
}

/// Reads acknowledgement envelopes off an up link and retires their
/// queue entries. Returns `false` when the connection is gone.
fn reap_link(l: &mut LinkConn, scratch: &mut [u8]) -> bool {
    let LinkPhase::Up { stream, rbuf, .. } = &mut l.phase else {
        return true;
    };
    let alive = rbuf
        .fill(stream, scratch, MAX_READ_PER_CYCLE)
        .unwrap_or_default();
    // Even a dying connection may have delivered complete ack frames.
    let mut envs = Vec::new();
    if rbuf.drain_envelopes(&mut envs, usize::MAX).is_err() {
        return false;
    }
    let mut acked = 0u64;
    {
        let mut q = lock_queue(&l.spec.queue);
        for env in &envs {
            if let Some(ids) = env.ack_ids() {
                for id in ids {
                    if q.ack(EntryId(id)) {
                        acked += 1;
                    }
                }
            }
        }
    }
    if acked > 0 {
        l.spec.obs.acked(acked);
    }
    alive
}

/// Runs link timers (dial retries, connect deadlines) and reports when
/// this link next needs the loop to wake.
fn link_tick(l: &mut LinkConn, now: Instant) -> Option<Instant> {
    if let LinkPhase::Down { retry_at } = l.phase {
        if retry_at <= now {
            l.try_dial(now);
        }
    }
    if let LinkPhase::Connecting { deadline, .. } = l.phase {
        if deadline <= now {
            l.dial_failed(now);
        }
    }
    match &l.phase {
        LinkPhase::Down { retry_at } => Some(*retry_at),
        LinkPhase::Connecting { deadline, .. } => Some(*deadline),
        LinkPhase::Up { .. } => {
            let depth = lock_queue(&l.spec.queue).len();
            refresh_queue_gauge(l, depth, now);
            (depth > 0).then(|| now + BACKLOG_TICK)
        }
    }
}

/// Pumps one inbound connection: optional socket fill, then decode and
/// dispatch envelope batches until the write buffer hits its cap.
/// Returns `false` when the connection should close.
fn service_inbound(c: &mut Inbound, scratch: &mut [u8]) -> bool {
    let mut alive = true;
    // Skip the fill when a previous cycle already left a large backlog
    // of undecoded bytes (a backpressured connection drains first).
    if c.rbuf.buf.len() < MAX_READ_PER_CYCLE {
        alive = c
            .rbuf
            .fill(&mut c.stream, scratch, MAX_READ_PER_CYCLE)
            .unwrap_or_default();
    }
    if c.kind.is_none() && !c.rbuf.buf.is_empty() {
        c.kind = match c.rbuf.buf.remove(0) {
            KIND_PEER => Some(ConnKind::Peer),
            KIND_CLIENT => Some(ConnKind::Client),
            _ => return false,
        };
    }
    let Some(kind) = c.kind else { return alive };
    while c.wbuf.pending() < WRITE_BUF_CAP {
        let mut envs = Vec::new();
        if c.rbuf.drain_envelopes(&mut envs, ENV_BATCH).is_err() {
            return false;
        }
        if envs.is_empty() {
            break;
        }
        if !c.service.handle_batch(kind, envs, &mut c.wbuf.buf) {
            let _ = c.wbuf.flush(&mut c.stream);
            return false;
        }
        if c.wbuf.flush(&mut c.stream).is_err() {
            return false;
        }
    }
    alive
}

struct Slots {
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
}

enum Slot {
    Listener {
        listener: TcpListener,
        service: Arc<dyn RpcService>,
    },
    Inbound(Inbound),
    Link(Box<LinkConn>),
}

impl Slots {
    fn insert(&mut self, slot: Slot) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }

    fn remove(&mut self, i: usize) {
        if self.slots[i].take().is_some() {
            self.free.push(i);
        }
    }

    fn find_link(&mut self, token: u64) -> Option<usize> {
        self.slots.iter().position(|s| {
            matches!(s, Some(Slot::Link(l)) if l.token == token)
        })
    }
}

fn run(ctrl: &Ctrl, wake_rx: &UnixStream, obs: &ReactorInstruments) {
    let mut st = Slots {
        slots: Vec::new(),
        free: Vec::new(),
    };
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut pollfds: Vec<PollFd> = Vec::new();
    let mut owners: Vec<usize> = Vec::new();

    loop {
        // 1. Drain control commands.
        for cmd in take_cmds(ctrl) {
            match cmd {
                Cmd::Serve(listener, service) => {
                    let _ = listener.set_nonblocking(true);
                    st.insert(Slot::Listener { listener, service });
                }
                Cmd::AddLink(token, spec) => {
                    st.insert(Slot::Link(Box::new(LinkConn::new(token, spec))));
                }
                Cmd::Nudge(token) => {
                    if let Some(i) = st.find_link(token) {
                        if let Some(Slot::Link(l)) = st.slots[i].as_mut() {
                            pump_link(l, Instant::now());
                        }
                    }
                }
                Cmd::Remove(token) => {
                    if let Some(i) = st.find_link(token) {
                        st.remove(i);
                    }
                }
                Cmd::Shutdown => return,
            }
        }

        // 2. Link timers: due redials, expired connects, backlog ticks.
        let now = Instant::now();
        let mut wake_at: Option<Instant> = None;
        for slot in st.slots.iter_mut().flatten() {
            if let Slot::Link(l) = slot {
                if let Some(t) = link_tick(l, now) {
                    wake_at = Some(wake_at.map_or(t, |w| w.min(t)));
                }
            }
        }

        // 3. Build the descriptor set. Index 0 is the wake pipe.
        pollfds.clear();
        owners.clear();
        pollfds.push(PollFd::new(wake_rx.as_raw_fd(), POLLIN));
        owners.push(usize::MAX);
        for (i, slot) in st.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let (fd, events) = match slot {
                Slot::Listener { listener, .. } => (listener.as_raw_fd(), POLLIN),
                Slot::Inbound(c) => {
                    let mut ev = 0;
                    if c.wbuf.pending() < WRITE_BUF_CAP {
                        ev |= POLLIN;
                    }
                    if c.wbuf.pending() > 0 {
                        ev |= POLLOUT;
                    }
                    (c.stream.as_raw_fd(), ev)
                }
                Slot::Link(l) => match &l.phase {
                    LinkPhase::Down { .. } => continue,
                    LinkPhase::Connecting { stream, .. } => (stream.as_raw_fd(), POLLOUT),
                    LinkPhase::Up { stream, wbuf, .. } => {
                        let mut ev = POLLIN;
                        if wbuf.pending() > 0 {
                            ev |= POLLOUT;
                        }
                        (stream.as_raw_fd(), ev)
                    }
                },
            };
            pollfds.push(PollFd::new(fd, events));
            owners.push(i);
        }

        // 4. Block for readiness (or the next link timer).
        let timeout_ms = match wake_at {
            Some(t) => {
                // +1 rounds up so a sub-millisecond remainder can't spin.
                let ms = t.saturating_duration_since(Instant::now()).as_millis() + 1;
                ms.min(i32::MAX as u128) as i32
            }
            None => -1,
        };
        let polled_at = Instant::now();
        let ready = match sys::poll(&mut pollfds, timeout_ms) {
            Ok(n) => n,
            Err(_) => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
        };
        obs.poll_tick(polled_at.elapsed().as_micros() as u64);
        if ready > 0 {
            obs.wakeup();
        }

        if pollfds[0].revents & POLLIN != 0 {
            // Drain the wake pipe; commands are picked up next cycle.
            let mut pipe = wake_rx;
            while let Ok(n) = pipe.read(&mut scratch[..64]) {
                if n == 0 {
                    break;
                }
            }
        }

        // 5. Dispatch readiness. Accepted sockets are registered after
        // the loop so a freed index can't be reused while stale
        // revents still reference it.
        let mut accepted: Vec<(TcpStream, Arc<dyn RpcService>)> = Vec::new();
        for (k, pfd) in pollfds.iter().enumerate().skip(1) {
            if pfd.revents == 0 {
                continue;
            }
            let i = owners[k];
            let Some(slot) = st.slots[i].as_mut() else {
                continue;
            };
            match slot {
                Slot::Listener { listener, service } => loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(true);
                            let _ = stream.set_nodelay(true);
                            accepted.push((stream, Arc::clone(service)));
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                        Err(_) => break,
                    }
                },
                Slot::Inbound(c) => {
                    let mut alive = true;
                    if pfd.revents & POLLOUT != 0 && c.wbuf.flush(&mut c.stream).is_err() {
                        alive = false;
                    }
                    // Any event (including a drained write buffer, which
                    // may unblock a backpressured connection's undecoded
                    // backlog) is a chance to read and dispatch — unless
                    // the connection still owes the peer too much.
                    if alive {
                        if c.wbuf.pending() < WRITE_BUF_CAP {
                            alive = service_inbound(c, &mut scratch);
                        } else if pfd.revents & (POLLERR | POLLHUP) != 0 {
                            alive = false;
                        }
                    }
                    if !alive {
                        st.remove(i);
                        obs.connection_closed();
                    }
                }
                Slot::Link(l) => {
                    let now = Instant::now();
                    match &l.phase {
                        LinkPhase::Connecting { .. } => {
                            finish_connect(l, now);
                            if matches!(l.phase, LinkPhase::Up { .. }) {
                                pump_link(l, now);
                            }
                        }
                        LinkPhase::Up { .. } => {
                            let mut alive = true;
                            if pfd.revents & POLLOUT != 0 {
                                if let LinkPhase::Up { stream, wbuf, .. } = &mut l.phase {
                                    if wbuf.flush(stream).is_err() {
                                        alive = false;
                                    }
                                }
                            }
                            if alive && pfd.revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                                alive = reap_link(l, &mut scratch);
                            }
                            if alive {
                                pump_link(l, now);
                            } else {
                                l.drop_conn();
                            }
                        }
                        LinkPhase::Down { .. } => {}
                    }
                }
            }
        }
        for (stream, service) in accepted {
            st.insert(Slot::Inbound(Inbound {
                stream,
                service,
                kind: None,
                rbuf: RecvBuf::default(),
                wbuf: WriteBuf::default(),
            }));
            obs.connection_opened();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn write_buf_tracks_pending_and_resets_when_drained() {
        let mut wb = WriteBuf::default();
        assert_eq!(wb.pending(), 0);
        wb.buf.extend_from_slice(b"hello");
        assert_eq!(wb.pending(), 5);
        wb.pos = 3;
        assert_eq!(wb.pending(), 2);
    }

    #[test]
    fn recv_buf_decodes_incrementally_across_partial_arrivals() {
        let mut framed = Vec::new();
        write_frame(&mut framed, &seal(1, b"alpha")).unwrap();
        write_frame(&mut framed, &seal(2, b"beta")).unwrap();

        let mut rb = RecvBuf::default();
        let mut out = Vec::new();

        // First frame plus a split second frame: only one decodes.
        rb.buf.extend_from_slice(&framed[..framed.len() - 3]);
        rb.drain_envelopes(&mut out, usize::MAX).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].entry, 1);
        assert_eq!(out[0].payload, b"alpha");

        // Remainder arrives: the second completes.
        rb.buf.extend_from_slice(&framed[framed.len() - 3..]);
        rb.drain_envelopes(&mut out, usize::MAX).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[1].entry, 2);
        assert_eq!(out[1].payload, b"beta");
        assert!(rb.buf.is_empty(), "fully consumed");
    }

    #[test]
    fn recv_buf_rejects_oversized_and_short_frames() {
        let mut rb = RecvBuf::default();
        rb.buf.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(rb.drain_envelopes(&mut Vec::new(), usize::MAX).is_err());

        let mut rb = RecvBuf::default();
        // A 3-byte frame cannot hold an 8-byte envelope header.
        rb.buf.extend_from_slice(&3u32.to_be_bytes());
        rb.buf.extend_from_slice(b"abc");
        assert!(rb.drain_envelopes(&mut Vec::new(), usize::MAX).is_err());
    }

    #[test]
    fn recv_buf_honours_the_batch_limit() {
        let mut rb = RecvBuf::default();
        for i in 0..10u64 {
            let mut c = Cursor::new(Vec::new());
            write_frame(&mut c, &seal(i, b"x")).unwrap();
            rb.buf.extend_from_slice(c.get_ref());
        }
        let mut out = Vec::new();
        rb.drain_envelopes(&mut out, 4).unwrap();
        assert_eq!(out.len(), 4);
        out.clear();
        rb.drain_envelopes(&mut out, usize::MAX).unwrap();
        assert_eq!(out.len(), 6, "remaining frames decode next call");
    }
}
