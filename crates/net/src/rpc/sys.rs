//! Thin libc FFI for the poll-driven reactor: `poll(2)`, nonblocking
//! `connect(2)`, `SO_ERROR` draining, and `RLIMIT_NOFILE` raising for
//! high fan-in benches.
//!
//! `std` already links libc on every supported target, so bare
//! `extern "C"` declarations resolve without adding a crate dependency
//! (the container is offline; external crates are shims). Constants are
//! Linux values — the reactor is only built and run there.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, RawFd};

/// `poll(2)` readable event.
pub const POLLIN: i16 = 0x001;
/// `poll(2)` writable event.
pub const POLLOUT: i16 = 0x004;
/// `poll(2)` error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// `poll(2)` peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;

const AF_INET: u16 = 2;
const AF_INET6: u16 = 10;
const SOCK_STREAM: i32 = 1;
const SOCK_NONBLOCK: i32 = 0o4000;
const SOCK_CLOEXEC: i32 = 0o2000000;
const SOL_SOCKET: i32 = 1;
const SO_ERROR: i32 = 4;
const EINPROGRESS: i32 = 115;
const EINTR: i32 = 4;
const RLIMIT_NOFILE: i32 = 7;

/// One entry in a `poll(2)` descriptor set (`struct pollfd`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Descriptor to watch.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events; error conditions appear even when unrequested.
    pub revents: i16,
}

impl PollFd {
    /// A pollfd watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        Self {
            fd,
            events,
            revents: 0,
        }
    }

    /// Did the descriptor become readable (or fail — errors must be
    /// consumed by a read attempt to learn the cause)?
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// Did the descriptor become writable (or fail)?
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

mod c {
    use super::{PollFd, Rlimit};

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        pub fn connect(fd: i32, addr: *const u8, len: u32) -> i32;
        pub fn getsockopt(fd: i32, level: i32, name: i32, val: *mut u8, len: *mut u32) -> i32;
        pub fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
}

/// Blocks until a descriptor in `fds` is ready or `timeout_ms` elapses
/// (`-1` = wait indefinitely). Returns how many descriptors have
/// nonzero `revents`; `EINTR` is retried internally.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let rc = unsafe { c::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.raw_os_error() != Some(EINTR) {
            return Err(err);
        }
    }
}

/// Starts a nonblocking TCP connect to `addr`. The returned stream is
/// *not* connected yet: poll it for `POLLOUT`, then check
/// [`take_socket_error`] to learn whether the handshake succeeded.
pub fn connect_nonblocking(addr: &SocketAddr) -> io::Result<TcpStream> {
    // sockaddr_in / sockaddr_in6, laid out by hand: family in native
    // order, port/flowinfo in network order.
    let mut sa = [0u8; 28];
    let (family, len): (u16, u32) = match addr {
        SocketAddr::V4(a) => {
            sa[2..4].copy_from_slice(&a.port().to_be_bytes());
            sa[4..8].copy_from_slice(&a.ip().octets());
            (AF_INET, 16)
        }
        SocketAddr::V6(a) => {
            sa[2..4].copy_from_slice(&a.port().to_be_bytes());
            sa[4..8].copy_from_slice(&a.flowinfo().to_be_bytes());
            sa[8..24].copy_from_slice(&a.ip().octets());
            sa[24..28].copy_from_slice(&a.scope_id().to_ne_bytes());
            (AF_INET6, 28)
        }
    };
    sa[0..2].copy_from_slice(&family.to_ne_bytes());

    let fd = unsafe {
        c::socket(
            i32::from(family),
            SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
            0,
        )
    };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // Wrap immediately so every error path below closes the descriptor.
    let stream = unsafe { TcpStream::from_raw_fd(fd) };
    let rc = unsafe { c::connect(fd, sa.as_ptr(), len) };
    if rc == 0 {
        return Ok(stream);
    }
    let err = io::Error::last_os_error();
    match err.raw_os_error() {
        Some(EINPROGRESS) | Some(EINTR) => Ok(stream),
        _ => Err(err),
    }
}

/// Drains the pending `SO_ERROR` from a socket that just reported write
/// readiness after [`connect_nonblocking`]: `Ok(())` means the
/// connection is established.
pub fn take_socket_error(stream: &TcpStream) -> io::Result<()> {
    let mut err: i32 = 0;
    let mut len: u32 = 4;
    let rc = unsafe {
        c::getsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_ERROR,
            (&mut err as *mut i32).cast(),
            &mut len,
        )
    };
    if rc != 0 {
        return Err(io::Error::last_os_error());
    }
    if err != 0 {
        return Err(io::Error::from_raw_os_error(err));
    }
    Ok(())
}

/// Raises the soft (and, where privilege allows, hard) open-file limit
/// to at least `want` descriptors. Returns the resulting soft limit;
/// an already-sufficient limit is never lowered.
pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    if unsafe { c::getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur >= want {
        return Ok(lim.cur);
    }
    let raised = Rlimit {
        cur: want,
        max: lim.max.max(want),
    };
    if unsafe { c::setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
        return Ok(want);
    }
    // Unprivileged: the existing hard limit is the ceiling.
    let capped = Rlimit {
        cur: lim.max,
        max: lim.max,
    };
    if unsafe { c::setrlimit(RLIMIT_NOFILE, &capped) } != 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(lim.max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    #[test]
    fn poll_times_out_and_wakes_on_data() {
        let (mut tx, rx) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let t0 = Instant::now();
        assert_eq!(poll(&mut fds, 30).unwrap(), 0, "no data yet");
        assert!(t0.elapsed().as_millis() >= 25, "timeout honoured");
        tx.write_all(&[1]).unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].readable());
    }

    #[test]
    fn nonblocking_connect_reaches_a_listener() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stream = connect_nonblocking(&addr).unwrap();
        let mut fds = [PollFd::new(stream.as_raw_fd(), POLLOUT)];
        assert_eq!(poll(&mut fds, 5000).unwrap(), 1);
        assert!(fds[0].writable());
        take_socket_error(&stream).unwrap();
        let (_peer, peer_addr) = listener.accept().unwrap();
        assert_eq!(peer_addr, stream.local_addr().unwrap());
    }

    #[test]
    fn nonblocking_connect_to_dead_port_reports_the_failure() {
        // Reserve a port, then free it so nothing is listening.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        match connect_nonblocking(&addr) {
            // Loopback may fail the connect synchronously...
            Err(_) => {}
            // ...or report the refusal through SO_ERROR on writability.
            Ok(stream) => {
                let mut fds = [PollFd::new(stream.as_raw_fd(), POLLOUT)];
                assert_eq!(poll(&mut fds, 5000).unwrap(), 1);
                assert!(take_socket_error(&stream).is_err());
            }
        }
    }

    #[test]
    fn nofile_limit_is_at_least_queried() {
        let cur = raise_nofile_limit(64).unwrap();
        assert!(cur >= 64);
    }
}
