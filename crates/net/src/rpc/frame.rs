//! Byte-level framing for the esr-rpc transport.
//!
//! Two layers, both payload-agnostic (this crate never sees the frame
//! *contents* — those are encoded by `esr-replica`'s wire codec):
//!
//! 1. **Length-prefixed frames** over any `Read`/`Write` stream: a
//!    big-endian `u32` length followed by that many payload bytes, with
//!    a hard size cap so a corrupt or hostile peer cannot force a huge
//!    allocation.
//! 2. **Link envelopes** inside each frame: a big-endian `u64` queue
//!    entry id followed by the opaque message bytes. Durable links tag
//!    each message with the sender's stable-queue entry id; the
//!    receiver echoes the id back in an *empty* envelope as the
//!    transport-level acknowledgement. [`NO_ENTRY`] marks messages
//!    outside the at-least-once contract (handshakes, request/reply
//!    traffic), which are never acknowledged.
//!
//! Immediately after connecting, a dialer writes a single connection
//! kind byte ([`KIND_PEER`] or [`KIND_CLIENT`]) so the accepting daemon
//! knows which plane the stream belongs to before any frame arrives.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload, applied on both sides.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Envelope entry id marking a message outside the durable-queue
/// contract: never acknowledged, never retransmitted.
pub const NO_ENTRY: u64 = u64::MAX;

/// Connection kind byte: a peer daemon's durable link.
pub const KIND_PEER: u8 = b'P';

/// Connection kind byte: a client (library or `esrctl`) request stream.
pub const KIND_CLIENT: u8 = b'C';

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Blocks until a complete frame
/// arrives or the stream errors; a clean EOF before the length prefix
/// surfaces as [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("announced frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A link envelope: which durable queue entry (if any) the message
/// rides on, plus the opaque message bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The sender-side queue entry id, or [`NO_ENTRY`].
    pub entry: u64,
    /// The message bytes (empty for a transport acknowledgement).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Is this a transport-level acknowledgement (an echoed entry id
    /// with no message)?
    pub fn is_ack(&self) -> bool {
        self.entry != NO_ENTRY && self.payload.is_empty()
    }
}

/// Wraps message bytes in a link envelope.
pub fn seal(entry: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&entry.to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Builds the transport acknowledgement for queue entry `entry`.
pub fn seal_ack(entry: u64) -> Vec<u8> {
    seal(entry, &[])
}

/// Splits a frame back into its link envelope.
pub fn unseal(frame: Vec<u8>) -> io::Result<Envelope> {
    if frame.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame shorter than its envelope header",
        ));
    }
    let mut entry = [0u8; 8];
    entry.copy_from_slice(&frame[..8]);
    let mut payload = frame;
    payload.drain(..8);
    Ok(Envelope {
        entry: u64::from_be_bytes(entry),
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 300]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xAB; 300]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_announcement_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn envelope_roundtrip_and_ack_shape() {
        let sealed = seal(42, b"payload");
        let env = unseal(sealed).unwrap();
        assert_eq!(env.entry, 42);
        assert_eq!(env.payload, b"payload");
        assert!(!env.is_ack());

        let ack = unseal(seal_ack(42)).unwrap();
        assert!(ack.is_ack());
        assert_eq!(ack.entry, 42);

        let hello = unseal(seal(NO_ENTRY, b"h")).unwrap();
        assert!(!hello.is_ack());

        assert!(unseal(vec![1, 2, 3]).is_err());
    }
}
