//! Byte-level framing for the esr-rpc transport.
//!
//! Two layers, both payload-agnostic (this crate never sees the frame
//! *contents* — those are encoded by `esr-replica`'s wire codec):
//!
//! 1. **Length-prefixed frames** over any `Read`/`Write` stream: a
//!    big-endian `u32` length followed by that many payload bytes, with
//!    a hard size cap so a corrupt or hostile peer cannot force a huge
//!    allocation.
//! 2. **Link envelopes** inside each frame: a big-endian `u64` queue
//!    entry id followed by the opaque message bytes. Durable links tag
//!    each message with the sender's stable-queue entry id; the
//!    receiver echoes the id back in an *empty* envelope as the
//!    transport-level acknowledgement. [`NO_ENTRY`] marks messages
//!    outside the at-least-once contract (handshakes, request/reply
//!    traffic), which are never acknowledged.
//!
//! Immediately after connecting, a dialer writes a single connection
//! kind byte ([`KIND_PEER`] or [`KIND_CLIENT`]) so the accepting daemon
//! knows which plane the stream belongs to before any frame arrives.

use std::io::{self, Read, Write};

/// Hard cap on a single frame's payload, applied on both sides.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Envelope entry id marking a message outside the durable-queue
/// contract: never acknowledged, never retransmitted.
pub const NO_ENTRY: u64 = u64::MAX;

/// Connection kind byte: a peer daemon's durable link.
pub const KIND_PEER: u8 = b'P';

/// Connection kind byte: a client (library or `esrctl`) request stream.
pub const KIND_CLIENT: u8 = b'C';

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Blocks until a complete frame
/// arrives or the stream errors; a clean EOF before the length prefix
/// surfaces as [`io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("announced frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// A link envelope: which durable queue entry (if any) the message
/// rides on, plus the opaque message bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The sender-side queue entry id, or [`NO_ENTRY`].
    pub entry: u64,
    /// The message bytes (empty for a transport acknowledgement).
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Is this a *single-entry* transport acknowledgement (an echoed
    /// entry id with no message)? Batched acknowledgements carry extra
    /// ids in the payload — [`Envelope::ack_ids`] covers both shapes.
    pub fn is_ack(&self) -> bool {
        self.entry != NO_ENTRY && self.payload.is_empty()
    }

    /// The queue entries this envelope acknowledges: the carried entry
    /// id plus any batched ids packed into the payload as big-endian
    /// `u64`s ([`seal_acks`]). `None` when the envelope is not an
    /// acknowledgement (no entry id, or a payload that is not a whole
    /// number of ids).
    pub fn ack_ids(&self) -> Option<impl Iterator<Item = u64> + '_> {
        if self.entry == NO_ENTRY || !self.payload.len().is_multiple_of(8) {
            return None;
        }
        let batched = self.payload.chunks_exact(8).map(|chunk| {
            let mut id = [0u8; 8];
            id.copy_from_slice(chunk);
            u64::from_be_bytes(id)
        });
        Some(batched.chain(std::iter::once(self.entry)))
    }
}

/// Wraps message bytes in a link envelope.
pub fn seal(entry: u64, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&entry.to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Builds the transport acknowledgement for queue entry `entry`.
pub fn seal_ack(entry: u64) -> Vec<u8> {
    seal(entry, &[])
}

/// Builds one transport acknowledgement covering every entry in `ids`:
/// the envelope rides the last id and the remaining ids are packed into
/// the payload as big-endian `u64`s, so N applied entries cost one
/// frame instead of N. A single-id batch is byte-identical to
/// [`seal_ack`], and [`Envelope::ack_ids`] recovers the full set on the
/// other side. An empty batch degenerates to a [`NO_ENTRY`] ack, which
/// every receiver ignores.
pub fn seal_acks(ids: &[u64]) -> Vec<u8> {
    let Some((&last, rest)) = ids.split_last() else {
        return seal_ack(NO_ENTRY);
    };
    let mut buf = Vec::with_capacity(8 + 8 * rest.len());
    buf.extend_from_slice(&last.to_be_bytes());
    for id in rest {
        buf.extend_from_slice(&id.to_be_bytes());
    }
    buf
}

/// Splits a frame back into its link envelope.
pub fn unseal(frame: Vec<u8>) -> io::Result<Envelope> {
    if frame.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame shorter than its envelope header",
        ));
    }
    let mut entry = [0u8; 8];
    entry.copy_from_slice(&frame[..8]);
    let mut payload = frame;
    payload.drain(..8);
    Ok(Envelope {
        entry: u64::from_be_bytes(entry),
        payload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 300]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), vec![0xAB; 300]);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_announcement_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let mut r = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn envelope_roundtrip_and_ack_shape() {
        let sealed = seal(42, b"payload");
        let env = unseal(sealed).unwrap();
        assert_eq!(env.entry, 42);
        assert_eq!(env.payload, b"payload");
        assert!(!env.is_ack());

        let ack = unseal(seal_ack(42)).unwrap();
        assert!(ack.is_ack());
        assert_eq!(ack.entry, 42);

        let hello = unseal(seal(NO_ENTRY, b"h")).unwrap();
        assert!(!hello.is_ack());

        assert!(unseal(vec![1, 2, 3]).is_err());
    }

    #[test]
    fn batched_acks_pack_and_recover_every_id() {
        // One id: byte-identical to the legacy single ack.
        assert_eq!(seal_acks(&[7]), seal_ack(7));

        let env = unseal(seal_acks(&[3, 9, 27])).unwrap();
        assert_eq!(env.entry, 27, "envelope rides the last id");
        let ids: Vec<u64> = env.ack_ids().unwrap().collect();
        assert_eq!(ids, vec![3, 9, 27]);

        // A legacy single ack still parses through ack_ids.
        let single = unseal(seal_ack(42)).unwrap();
        assert_eq!(single.ack_ids().unwrap().collect::<Vec<_>>(), vec![42]);

        // Non-ack envelopes yield nothing.
        assert!(unseal(seal(NO_ENTRY, b"hello")).unwrap().ack_ids().is_none());
        let odd = unseal(seal(5, b"xyz")).unwrap();
        assert!(odd.ack_ids().is_none(), "payload not a whole set of ids");

        // The empty-batch degenerate form is ignored by every receiver.
        let empty = unseal(seal_acks(&[])).unwrap();
        assert!(empty.ack_ids().is_none());
        assert!(!empty.is_ack());
    }
}
