//! esr-rpc: the real-network transport under the replicated system.
//!
//! Where the rest of this crate *plans* deliveries in virtual time for
//! the simulator, this module moves actual bytes: length-prefixed
//! frames over `std::net::TcpStream` ([`frame`]), a poll-driven
//! readiness loop multiplexing every socket on one thread ([`reactor`]
//! over the thin [`sys`] FFI), and durable at-least-once outbound links
//! that drain a stable queue with reconnect + exponential backoff
//! ([`conn`]). Payloads stay opaque here — `esr-replica`'s wire codec
//! defines their contents, and the `esrd` daemon in `esr-runtime` wires
//! both into a running site.

pub mod conn;
pub mod frame;
pub mod reactor;
pub mod sys;

pub use conn::{Backoff, Link, Resolver};
pub use frame::{
    read_frame, seal, seal_ack, seal_acks, unseal, write_frame, Envelope, KIND_CLIENT, KIND_PEER,
    MAX_FRAME, NO_ENTRY,
};
pub use reactor::{ConnKind, Reactor, ReactorHandle, RpcService, WRITE_BUF_CAP};
