//! Durable outbound links: the "persistently retry message delivery
//! until successful" half of the paper's stable-queue contract (§2.2),
//! over a real TCP connection.
//!
//! A [`Link`] pairs a [`StableQueue`] with a background connection
//! thread. `send` durably enqueues *before* returning, so a message
//! survives the sender crashing right after; the thread then drains the
//! queue over TCP, retransmitting every unacknowledged entry each time
//! the connection is (re)established — at-least-once delivery, with the
//! receiver responsible for idempotency. Acknowledgements (empty
//! envelopes echoing the entry id) retire queue entries.
//!
//! Reconnection uses capped exponential backoff and re-resolves the
//! peer address on every attempt, so a daemon that restarts on a new
//! ephemeral port is picked up as soon as it republishes its address.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use esr_obs::LinkInstruments;
use esr_storage::stable_queue::{EntryId, StableQueue};

use super::frame::{read_frame, seal, unseal, write_frame, KIND_PEER, NO_ENTRY};

/// Reconnect backoff shape.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Delay after the first failure.
    pub initial: Duration,
    /// Cap for the doubling delay.
    pub max: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            initial: Duration::from_millis(20),
            max: Duration::from_secs(1),
        }
    }
}

/// Re-resolves the peer's current address (daemons republish their
/// listen address on every boot).
pub type Resolver = Box<dyn Fn() -> Option<SocketAddr> + Send>;

type SharedQueue = Arc<Mutex<Box<dyn StableQueue + Send>>>;

enum LinkCmd {
    Nudge,
    Shutdown,
}

/// A durable at-least-once link to one peer.
pub struct Link {
    queue: SharedQueue,
    cmd: Sender<LinkCmd>,
    thread: Option<JoinHandle<()>>,
}

impl Link {
    /// Spawns the connection thread. `hello` is sent (outside the
    /// durable contract) every time a connection is established, so the
    /// receiver learns who is dialing before any queued traffic.
    pub fn spawn(queue: Box<dyn StableQueue + Send>, resolve: Resolver, hello: Bytes) -> Self {
        Self::spawn_with(queue, resolve, hello, Backoff::default())
    }

    /// [`Link::spawn`] with an explicit backoff shape (tests tighten it).
    pub fn spawn_with(
        queue: Box<dyn StableQueue + Send>,
        resolve: Resolver,
        hello: Bytes,
        backoff: Backoff,
    ) -> Self {
        Self::spawn_observed(queue, resolve, hello, backoff, LinkInstruments::default())
    }

    /// [`Link::spawn_with`] plus a metrics bundle: the connection thread
    /// ticks dials, sends, retransmits, and acks, and keeps the queue
    /// depth/age gauges current (wall-clock age — this thread already
    /// lives in real time).
    pub fn spawn_observed(
        queue: Box<dyn StableQueue + Send>,
        resolve: Resolver,
        hello: Bytes,
        backoff: Backoff,
        obs: LinkInstruments,
    ) -> Self {
        let queue: SharedQueue = Arc::new(Mutex::new(queue));
        let (cmd, rx) = mpsc::channel();
        let worker_queue = Arc::clone(&queue);
        let thread = std::thread::spawn(move || {
            run_link(&worker_queue, &resolve, &hello, backoff, &rx, &obs);
        });
        Self {
            queue,
            cmd,
            thread: Some(thread),
        }
    }

    /// Durably enqueues `payload` and nudges the connection thread.
    /// Returns once the bytes are in the stable queue — delivery
    /// happens (and keeps being retried) in the background.
    pub fn send(&self, payload: Bytes) -> EntryId {
        let id = lock_queue(&self.queue).enqueue(payload);
        let _ = self.cmd.send(LinkCmd::Nudge);
        id
    }

    /// Entries enqueued but not yet acknowledged by the peer.
    pub fn pending(&self) -> usize {
        lock_queue(&self.queue).len()
    }

    /// Stops the connection thread (queued entries stay durable).
    pub fn shutdown(mut self) {
        let _ = self.cmd.send(LinkCmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        let _ = self.cmd.send(LinkCmd::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn lock_queue(q: &SharedQueue) -> std::sync::MutexGuard<'_, Box<dyn StableQueue + Send>> {
    match q.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// One established connection: the write half plus the reader thread's
/// ack feed.
struct Conn {
    stream: TcpStream,
    acks: Receiver<u64>,
}

fn dial(resolve: &Resolver, hello: &Bytes) -> Option<Conn> {
    let addr = resolve()?;
    let stream = TcpStream::connect_timeout(&addr, Duration::from_millis(500)).ok()?;
    stream.set_nodelay(true).ok()?;
    let mut write_half = stream.try_clone().ok()?;
    write_half.write_all(&[KIND_PEER]).ok()?;
    write_frame(&mut write_half, &seal(NO_ENTRY, hello)).ok()?;

    // Blocking reader thread: turns incoming ack envelopes into channel
    // messages, exits when the socket dies. (A read timeout on the main
    // thread could desync mid-frame; a dedicated blocking reader cannot.)
    let (ack_tx, acks) = mpsc::channel();
    let mut read_half = stream;
    std::thread::spawn(move || loop {
        match read_frame(&mut read_half) {
            Ok(frame) => {
                if let Ok(env) = unseal(frame) {
                    if env.is_ack() && ack_tx.send(env.entry).is_err() {
                        return;
                    }
                }
            }
            Err(_) => return,
        }
    });
    Some(Conn {
        stream: write_half,
        acks,
    })
}

fn run_link(
    queue: &SharedQueue,
    resolve: &Resolver,
    hello: &Bytes,
    backoff: Backoff,
    cmd: &Receiver<LinkCmd>,
    obs: &LinkInstruments,
) {
    let mut conn: Option<Conn> = None;
    let mut delay = backoff.initial;
    // Highest entry transmitted on the *current* connection; resets on
    // reconnect so every unacknowledged entry is retransmitted.
    let mut sent_high: Option<EntryId> = None;
    // Highest entry ever transmitted on *any* connection: anything at or
    // below it written again is a retransmit, not a first send.
    let mut sent_ever: Option<EntryId> = None;
    // Start of the current non-empty stretch, for the queue-age gauge.
    let mut backlog_since: Option<Instant> = None;

    loop {
        // Wait for work (a nudge, an ack to reap, or a retry tick).
        match cmd.recv_timeout(Duration::from_millis(20)) {
            Ok(LinkCmd::Shutdown) | Err(RecvTimeoutError::Disconnected) => {
                if let Some(c) = conn {
                    let _ = c.stream.shutdown(Shutdown::Both);
                }
                return;
            }
            Ok(LinkCmd::Nudge) | Err(RecvTimeoutError::Timeout) => {}
        }

        // (Re)connect if needed.
        if conn.is_none() {
            match dial(resolve, hello) {
                Some(c) => {
                    conn = Some(c);
                    delay = backoff.initial;
                    sent_high = None;
                    obs.dialed();
                }
                None => {
                    std::thread::sleep(delay);
                    delay = (delay * 2).min(backoff.max);
                    continue;
                }
            }
        }

        let mut broken = false;
        if let Some(c) = conn.as_mut() {
            // Reap acknowledgements first so the pending scan below
            // skips retired entries. The reader thread exiting (its
            // channel hanging up) is how a peer-side close is detected
            // even when there is nothing to write.
            loop {
                match c.acks.try_recv() {
                    Ok(entry) => {
                        lock_queue(queue).ack(EntryId(entry));
                        obs.acked(1);
                    }
                    Err(mpsc::TryRecvError::Empty) => break,
                    Err(mpsc::TryRecvError::Disconnected) => {
                        broken = true;
                        break;
                    }
                }
            }

            // Transmit everything past the high-water mark of this
            // connection, oldest first.
            while !broken {
                let batch = lock_queue(queue).pending_after(sent_high, 32);
                if batch.is_empty() {
                    break;
                }
                for (id, payload) in batch {
                    lock_queue(queue).record_attempt(id);
                    if write_frame(&mut c.stream, &seal(id.0, &payload)).is_err() {
                        broken = true;
                        break;
                    }
                    if sent_ever.is_some_and(|h| id.0 <= h.0) {
                        obs.retransmitted(1);
                    } else {
                        obs.sent(1);
                        sent_ever = Some(id);
                    }
                    sent_high = Some(id);
                }
            }
            if broken {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
        }
        if broken {
            conn = None;
        }

        if obs.is_attached() {
            let depth = lock_queue(queue).len() as u64;
            if depth == 0 {
                backlog_since = None;
            } else if backlog_since.is_none() {
                backlog_since = Some(Instant::now());
            }
            let age = backlog_since.map_or(0, |t| t.elapsed().as_micros() as u64);
            obs.queue(depth, age);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_storage::stable_queue::MemQueue;
    use std::net::TcpListener;

    fn tight_backoff() -> Backoff {
        Backoff {
            initial: Duration::from_millis(5),
            max: Duration::from_millis(40),
        }
    }

    /// Accepts one connection, checks the handshake, and returns the
    /// stream positioned after the hello frame.
    fn accept_peer(listener: &TcpListener) -> (TcpStream, Vec<u8>) {
        let (mut s, _) = listener.accept().unwrap();
        let mut kind = [0u8; 1];
        std::io::Read::read_exact(&mut s, &mut kind).unwrap();
        assert_eq!(kind[0], KIND_PEER);
        let hello = unseal(read_frame(&mut s).unwrap()).unwrap();
        assert_eq!(hello.entry, NO_ENTRY);
        (s, hello.payload)
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("condition not reached within 5s");
    }

    #[test]
    fn delivers_and_retires_on_ack() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let link = Link::spawn_with(
            Box::new(MemQueue::new()),
            Box::new(move || Some(addr)),
            Bytes::from_static(b"hi"),
            tight_backoff(),
        );
        link.send(Bytes::from_static(b"alpha"));
        link.send(Bytes::from_static(b"beta"));

        let (mut s, hello) = accept_peer(&listener);
        assert_eq!(hello, b"hi");
        for expect in [b"alpha".as_slice(), b"beta".as_slice()] {
            let env = unseal(read_frame(&mut s).unwrap()).unwrap();
            assert_eq!(env.payload, expect);
            write_frame(&mut s, &super::super::frame::seal_ack(env.entry)).unwrap();
        }
        wait_until(|| link.pending() == 0);
        link.shutdown();
    }

    #[test]
    fn retransmits_unacked_entries_after_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let link = Link::spawn_with(
            Box::new(MemQueue::new()),
            Box::new(move || Some(addr)),
            Bytes::from_static(b"h"),
            tight_backoff(),
        );
        link.send(Bytes::from_static(b"one"));
        link.send(Bytes::from_static(b"two"));

        // First incarnation: read both, ack only the first, then die.
        {
            let (mut s, _) = accept_peer(&listener);
            let first = unseal(read_frame(&mut s).unwrap()).unwrap();
            assert_eq!(first.payload, b"one");
            let _second = read_frame(&mut s).unwrap();
            write_frame(&mut s, &super::super::frame::seal_ack(first.entry)).unwrap();
            // Give the ack a moment to land before the drop closes us.
            wait_until(|| link.pending() == 1);
            let _ = s.shutdown(Shutdown::Both);
        }

        // Second incarnation: the unacked entry comes back.
        let (mut s, _) = accept_peer(&listener);
        let env = unseal(read_frame(&mut s).unwrap()).unwrap();
        assert_eq!(env.payload, b"two");
        write_frame(&mut s, &super::super::frame::seal_ack(env.entry)).unwrap();
        wait_until(|| link.pending() == 0);
        link.shutdown();
    }

    #[test]
    fn survives_peer_absence_until_it_appears() {
        // Reserve an address, then close the listener so the first
        // dials fail; entries queue durably in the meantime.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let link = Link::spawn_with(
            Box::new(MemQueue::new()),
            Box::new(move || Some(addr)),
            Bytes::from_static(b"h"),
            tight_backoff(),
        );
        link.send(Bytes::from_static(b"late"));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(link.pending(), 1);

        let listener = TcpListener::bind(addr).unwrap();
        let (mut s, _) = accept_peer(&listener);
        let env = unseal(read_frame(&mut s).unwrap()).unwrap();
        assert_eq!(env.payload, b"late");
        write_frame(&mut s, &super::super::frame::seal_ack(env.entry)).unwrap();
        wait_until(|| link.pending() == 0);
        link.shutdown();
    }
}
