//! Durable outbound links: the "persistently retry message delivery
//! until successful" half of the paper's stable-queue contract (§2.2),
//! over a real TCP connection.
//!
//! A [`Link`] pairs a [`StableQueue`] with a connection state machine
//! that runs on a poll-driven [`Reactor`] ([`super::reactor`]). `send`
//! durably enqueues *before* returning, so a message survives the
//! sender crashing right after; the reactor then drains the queue over
//! TCP, retransmitting every unacknowledged entry each time the
//! connection is (re)established — at-least-once delivery, with the
//! receiver responsible for idempotency. Acknowledgements (envelopes
//! echoing one or more entry ids, [`super::frame::seal_acks`]) retire
//! queue entries.
//!
//! Reconnection uses capped exponential backoff and re-resolves the
//! peer address on every attempt, so a daemon that restarts on a new
//! ephemeral port is picked up as soon as it republishes its address.
//!
//! A standalone `spawn` owns a private single-link reactor (one thread,
//! as before); a daemon instead runs all of its links *and* its RPC
//! plane on one shared reactor via [`Link::attach`] — one I/O thread
//! total, regardless of cluster size or client fan-in.

use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use bytes::Bytes;
use esr_obs::LinkInstruments;
use esr_storage::stable_queue::{EntryId, StableQueue};

use super::reactor::{lock_queue, LinkSpec, Reactor, ReactorHandle, SharedQueue};

/// Reconnect backoff shape.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// Delay after the first failure.
    pub initial: Duration,
    /// Cap for the doubling delay.
    pub max: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            initial: Duration::from_millis(20),
            max: Duration::from_secs(1),
        }
    }
}

/// Re-resolves the peer's current address (daemons republish their
/// listen address on every boot).
pub type Resolver = Box<dyn Fn() -> Option<SocketAddr> + Send>;

/// A durable at-least-once link to one peer.
pub struct Link {
    queue: SharedQueue,
    reactor: ReactorHandle,
    token: u64,
    /// A private reactor when this link was spawned standalone; shared-
    /// reactor links (daemons) leave this empty. Declared last so the
    /// token is deregistered before the owned thread joins.
    owned: Option<Reactor>,
}

impl Link {
    /// Spawns a standalone link on its own reactor. `hello` is sent
    /// (outside the durable contract) every time a connection is
    /// established, so the receiver learns who is dialing before any
    /// queued traffic.
    pub fn spawn(queue: Box<dyn StableQueue + Send>, resolve: Resolver, hello: Bytes) -> Self {
        Self::spawn_with(queue, resolve, hello, Backoff::default())
    }

    /// [`Link::spawn`] with an explicit backoff shape (tests tighten it).
    pub fn spawn_with(
        queue: Box<dyn StableQueue + Send>,
        resolve: Resolver,
        hello: Bytes,
        backoff: Backoff,
    ) -> Self {
        Self::spawn_observed(queue, resolve, hello, backoff, LinkInstruments::default())
    }

    /// [`Link::spawn_with`] plus a metrics bundle: the reactor ticks
    /// dials, sends, retransmits, and acks, and keeps the queue
    /// depth/age gauges current (wall-clock age — the reactor lives in
    /// real time).
    pub fn spawn_observed(
        queue: Box<dyn StableQueue + Send>,
        resolve: Resolver,
        hello: Bytes,
        backoff: Backoff,
        obs: LinkInstruments,
    ) -> Self {
        let reactor =
            Reactor::new().unwrap_or_else(|e| panic!("spawn link reactor: {e}"));
        let mut link = Self::attach(&reactor, queue, resolve, hello, backoff, obs);
        link.owned = Some(reactor);
        link
    }

    /// Registers this link on an existing reactor instead of spawning
    /// one — the daemon multiplexes every link and its whole RPC plane
    /// on a single reactor thread.
    pub fn attach(
        reactor: &Reactor,
        queue: Box<dyn StableQueue + Send>,
        resolve: Resolver,
        hello: Bytes,
        backoff: Backoff,
        obs: LinkInstruments,
    ) -> Self {
        let queue: SharedQueue = Arc::new(Mutex::new(queue));
        let handle = reactor.handle();
        let token = handle.add_link(LinkSpec {
            queue: Arc::clone(&queue),
            resolve,
            hello,
            backoff,
            obs,
        });
        Self {
            queue,
            reactor: handle,
            token,
            owned: None,
        }
    }

    /// Durably enqueues `payload` and nudges the reactor. Returns once
    /// the bytes are in the stable queue — delivery happens (and keeps
    /// being retried) in the background.
    pub fn send(&self, payload: Bytes) -> EntryId {
        let id = lock_queue(&self.queue).enqueue(payload);
        self.reactor.nudge(self.token);
        id
    }

    /// Entries enqueued but not yet acknowledged by the peer.
    pub fn pending(&self) -> usize {
        lock_queue(&self.queue).len()
    }

    /// Deregisters the link (queued entries stay durable). A standalone
    /// link's private reactor is joined before returning.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        self.reactor.remove(self.token);
        // `owned` (if any) drops after this: shutdown + join.
    }
}

#[cfg(test)]
mod tests {
    use super::super::frame::{read_frame, unseal, write_frame, KIND_PEER, NO_ENTRY};
    use super::*;
    use esr_storage::stable_queue::MemQueue;
    use std::net::{Shutdown, TcpListener, TcpStream};

    fn tight_backoff() -> Backoff {
        Backoff {
            initial: Duration::from_millis(5),
            max: Duration::from_millis(40),
        }
    }

    /// Accepts one connection, checks the handshake, and returns the
    /// stream positioned after the hello frame.
    fn accept_peer(listener: &TcpListener) -> (TcpStream, Vec<u8>) {
        let (mut s, _) = listener.accept().unwrap();
        let mut kind = [0u8; 1];
        std::io::Read::read_exact(&mut s, &mut kind).unwrap();
        assert_eq!(kind[0], KIND_PEER);
        let hello = unseal(read_frame(&mut s).unwrap()).unwrap();
        assert_eq!(hello.entry, NO_ENTRY);
        (s, hello.payload)
    }

    fn wait_until(mut cond: impl FnMut() -> bool) {
        for _ in 0..500 {
            if cond() {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        panic!("condition not reached within 5s");
    }

    #[test]
    fn delivers_and_retires_on_ack() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let link = Link::spawn_with(
            Box::new(MemQueue::new()),
            Box::new(move || Some(addr)),
            Bytes::from_static(b"hi"),
            tight_backoff(),
        );
        link.send(Bytes::from_static(b"alpha"));
        link.send(Bytes::from_static(b"beta"));

        let (mut s, hello) = accept_peer(&listener);
        assert_eq!(hello, b"hi");
        for expect in [b"alpha".as_slice(), b"beta".as_slice()] {
            let env = unseal(read_frame(&mut s).unwrap()).unwrap();
            assert_eq!(env.payload, expect);
            write_frame(&mut s, &super::super::frame::seal_ack(env.entry)).unwrap();
        }
        wait_until(|| link.pending() == 0);
        link.shutdown();
    }

    #[test]
    fn retransmits_unacked_entries_after_reconnect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let link = Link::spawn_with(
            Box::new(MemQueue::new()),
            Box::new(move || Some(addr)),
            Bytes::from_static(b"h"),
            tight_backoff(),
        );
        link.send(Bytes::from_static(b"one"));
        link.send(Bytes::from_static(b"two"));

        // First incarnation: read both, ack only the first, then die.
        {
            let (mut s, _) = accept_peer(&listener);
            let first = unseal(read_frame(&mut s).unwrap()).unwrap();
            assert_eq!(first.payload, b"one");
            let _second = read_frame(&mut s).unwrap();
            write_frame(&mut s, &super::super::frame::seal_ack(first.entry)).unwrap();
            // Give the ack a moment to land before the drop closes us.
            wait_until(|| link.pending() == 1);
            let _ = s.shutdown(Shutdown::Both);
        }

        // Second incarnation: the unacked entry comes back.
        let (mut s, _) = accept_peer(&listener);
        let env = unseal(read_frame(&mut s).unwrap()).unwrap();
        assert_eq!(env.payload, b"two");
        write_frame(&mut s, &super::super::frame::seal_ack(env.entry)).unwrap();
        wait_until(|| link.pending() == 0);
        link.shutdown();
    }

    #[test]
    fn survives_peer_absence_until_it_appears() {
        // Reserve an address, then close the listener so the first
        // dials fail; entries queue durably in the meantime.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);

        let link = Link::spawn_with(
            Box::new(MemQueue::new()),
            Box::new(move || Some(addr)),
            Bytes::from_static(b"h"),
            tight_backoff(),
        );
        link.send(Bytes::from_static(b"late"));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(link.pending(), 1);

        let listener = TcpListener::bind(addr).unwrap();
        let (mut s, _) = accept_peer(&listener);
        let env = unseal(read_frame(&mut s).unwrap()).unwrap();
        assert_eq!(env.payload, b"late");
        write_frame(&mut s, &super::super::frame::seal_ack(env.entry)).unwrap();
        wait_until(|| link.pending() == 0);
        link.shutdown();
    }

    #[test]
    fn batched_ack_retires_many_entries_at_once() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let link = Link::spawn_with(
            Box::new(MemQueue::new()),
            Box::new(move || Some(addr)),
            Bytes::from_static(b"hi"),
            tight_backoff(),
        );
        let ids: Vec<u64> = (0..5)
            .map(|i| link.send(Bytes::from(vec![i])).0)
            .collect();

        let (mut s, _) = accept_peer(&listener);
        for _ in 0..5 {
            read_frame(&mut s).unwrap();
        }
        write_frame(&mut s, &super::super::frame::seal_acks(&ids)).unwrap();
        wait_until(|| link.pending() == 0);
        link.shutdown();
    }
}
