//! # esr-net — simulated network substrate
//!
//! The network under the replicated system: a topology of sites joined by
//! links with configurable latency distributions, drop and duplication
//! probabilities, plus a schedule of partitions. Delivery *planning* is
//! deterministic from the seed: [`Network::plan_send`] models the
//! stable-queue retry loop and returns the exact virtual times at which
//! message copies arrive, which the simulation driver turns into events.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod faults;
pub mod latency;
pub mod rpc;
pub mod topology;
pub mod transport;

pub use faults::{PartitionSchedule, PartitionWindow};
pub use latency::LatencyModel;
pub use topology::{LinkConfig, Topology};
pub use transport::{Delivery, NetStats, Network};
