//! Delivery planning: reliable at-least-once transport over lossy links.
//!
//! The simulator separates *planning* a message's fate from *executing*
//! it: [`Network::plan_send`] decides, deterministically from the seeded
//! RNG, when each copy of a message arrives — modelling the stable-queue
//! retry loop ("persistently retry message delivery until successful",
//! §2.2) — and the caller schedules those arrivals as events. Partitions
//! stall attempts until the window heals; drops trigger retries after the
//! retry interval; duplication can deliver a second copy.

use serde::{Deserialize, Serialize};

use esr_core::ids::{MsgId, SiteId};
use esr_sim::rng::DetRng;
use esr_sim::time::{Duration, VirtualTime};

use std::collections::BTreeMap;

use crate::faults::PartitionSchedule;
use crate::topology::Topology;

/// One planned arrival of a message copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The message this is a copy of.
    pub msg: MsgId,
    /// When the copy arrives at the destination.
    pub at: VirtualTime,
    /// How many send attempts preceded success (1 = first try).
    pub attempts: u32,
    /// True for the extra copy produced by duplication.
    pub duplicate: bool,
}

/// Counters describing everything the network did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Messages handed to `plan_send` / `plan_send_unreliable`.
    pub sent: u64,
    /// Copies that will arrive.
    pub delivered: u64,
    /// Attempts lost to link drop probability.
    pub dropped_attempts: u64,
    /// Attempts blocked by a partition.
    pub partition_blocked: u64,
    /// Extra copies from duplication.
    pub duplicated: u64,
    /// Unreliable sends that were lost outright.
    pub lost: u64,
}

/// The simulated network.
///
/// ```
/// use esr_core::ids::SiteId;
/// use esr_net::latency::LatencyModel;
/// use esr_net::topology::{LinkConfig, Topology};
/// use esr_net::transport::Network;
/// use esr_sim::rng::DetRng;
/// use esr_sim::time::{Duration, VirtualTime};
///
/// let link = LinkConfig::lossy(
///     LatencyModel::Constant(Duration::from_millis(5)),
///     0.5, // half of all attempts are lost…
/// );
/// let mut net = Network::new(Topology::full_mesh(2, link), DetRng::new(7));
/// // …but reliable planning retries until one succeeds.
/// let deliveries = net.plan_send(SiteId(0), SiteId(1), VirtualTime::ZERO);
/// assert_eq!(deliveries.len(), 1);
/// assert!(deliveries[0].at >= VirtualTime::from_millis(5));
/// ```
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    partitions: PartitionSchedule,
    rng: DetRng,
    retry_interval: Duration,
    max_attempts: u32,
    next_msg: u64,
    /// Per-directed-link transmitter occupancy: a bandwidth-limited link
    /// serializes one message at a time, so later sends queue.
    busy_until: BTreeMap<(SiteId, SiteId), VirtualTime>,
    stats: NetStats,
}

impl Network {
    /// A network over `topology` with no partitions, seeded RNG, and a
    /// 50 ms retry interval.
    pub fn new(topology: Topology, rng: DetRng) -> Self {
        Self {
            topology,
            partitions: PartitionSchedule::none(),
            rng,
            retry_interval: Duration::from_millis(50),
            max_attempts: 100_000,
            next_msg: 0,
            busy_until: BTreeMap::new(),
            stats: NetStats::default(),
        }
    }

    /// Installs a partition schedule.
    pub fn with_partitions(mut self, partitions: PartitionSchedule) -> Self {
        self.partitions = partitions;
        self
    }

    /// Overrides the stable-queue retry interval.
    pub fn with_retry_interval(mut self, interval: Duration) -> Self {
        self.retry_interval = interval;
        self
    }

    /// Overrides the reliable-send attempt cap. The chaos runtime plans
    /// fates in *logical tick* time (one tick per queue entry) where
    /// partition windows span a handful of ticks, so it lowers the cap
    /// to fail fast on a misconfigured plan instead of spinning through
    /// the default 100 000 attempts.
    pub fn with_max_attempts(mut self, max_attempts: u32) -> Self {
        assert!(max_attempts > 0);
        self.max_attempts = max_attempts;
        self
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The partition schedule.
    pub fn partitions(&self) -> &PartitionSchedule {
        &self.partitions
    }

    /// Statistics so far.
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    fn fresh_msg(&mut self) -> MsgId {
        let id = MsgId(self.next_msg);
        self.next_msg += 1;
        id
    }

    /// Plans a **reliable** send from `from` to `to` starting at `now`:
    /// retries through drops and partitions until an attempt succeeds.
    /// Returns one arrival, or two when the link duplicates.
    ///
    /// Panics if the link stays unavailable for `max_attempts` retries —
    /// with the default settings that is >80 virtual minutes of
    /// continuous partition, which indicates a misconfigured experiment.
    pub fn plan_send(&mut self, from: SiteId, to: SiteId, now: VirtualTime) -> Vec<Delivery> {
        self.plan_send_sized(from, to, now, 0)
    }

    /// [`Network::plan_send`] for a message of `bytes` bytes: on a
    /// bandwidth-limited link the message first waits for the
    /// transmitter (earlier messages still serializing), then pays
    /// `bytes / bandwidth` of serialization delay, then the propagation
    /// latency. Zero-byte messages and unlimited links skip both.
    pub fn plan_send_sized(
        &mut self,
        from: SiteId,
        to: SiteId,
        now: VirtualTime,
        bytes: u64,
    ) -> Vec<Delivery> {
        self.stats.sent += 1;
        let msg = self.fresh_msg();
        let link = self.topology.link(from, to);
        // Serialization: claim the transmitter, pay bytes/bandwidth.
        let mut start = now;
        if let Some(bw) = link.bandwidth {
            if bytes > 0 && bw > 0 {
                let busy = self
                    .busy_until
                    .entry((from, to))
                    .or_insert(VirtualTime::ZERO);
                let tx_start = (*busy).max(now);
                let tx_us = bytes.saturating_mul(1_000_000) / bw;
                let tx_done = tx_start + Duration::from_micros(tx_us);
                *busy = tx_done;
                start = tx_done;
            }
        }
        let mut attempt_time = start;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            assert!(
                attempts <= self.max_attempts,
                "message {msg} from {from} to {to} exceeded {} attempts",
                self.max_attempts
            );
            if !self.partitions.connected(from, to, attempt_time) {
                self.stats.partition_blocked += 1;
                // Skip straight to the heal time when we can see it;
                // otherwise back off by the retry interval.
                attempt_time = self
                    .partitions
                    .next_connected(from, to, attempt_time, VirtualTime::MAX)
                    .unwrap_or(attempt_time + self.retry_interval)
                    .max(attempt_time + self.retry_interval);
                continue;
            }
            if self.rng.chance(link.drop_prob) {
                self.stats.dropped_attempts += 1;
                attempt_time += self.retry_interval;
                continue;
            }
            break;
        }
        let arrival = attempt_time + link.latency.sample(&mut self.rng);
        let mut deliveries = vec![Delivery {
            msg,
            at: arrival,
            attempts,
            duplicate: false,
        }];
        self.stats.delivered += 1;
        if self.rng.chance(link.duplicate_prob) {
            let dup_at = attempt_time + link.latency.sample(&mut self.rng);
            deliveries.push(Delivery {
                msg,
                at: dup_at,
                attempts,
                duplicate: true,
            });
            self.stats.duplicated += 1;
            self.stats.delivered += 1;
        }
        deliveries
    }

    /// Plans a **single-attempt** send: lost to a drop or a partition is
    /// lost forever. Used by the synchronous baselines, whose commit
    /// protocol carries its own timeout/retry logic.
    pub fn plan_send_unreliable(
        &mut self,
        from: SiteId,
        to: SiteId,
        now: VirtualTime,
    ) -> Option<Delivery> {
        self.stats.sent += 1;
        let msg = self.fresh_msg();
        let link = self.topology.link(from, to);
        if !self.partitions.connected(from, to, now) {
            self.stats.partition_blocked += 1;
            self.stats.lost += 1;
            return None;
        }
        if self.rng.chance(link.drop_prob) {
            self.stats.dropped_attempts += 1;
            self.stats.lost += 1;
            return None;
        }
        self.stats.delivered += 1;
        Some(Delivery {
            msg,
            at: now + link.latency.sample(&mut self.rng),
            attempts: 1,
            duplicate: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::PartitionWindow;
    use crate::latency::LatencyModel;
    use crate::topology::LinkConfig;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::from_millis(ms)
    }

    fn mesh(n: usize, link: LinkConfig) -> Network {
        Network::new(Topology::full_mesh(n, link), DetRng::new(42))
    }

    #[test]
    fn reliable_send_on_clean_link_arrives_once() {
        let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(5)));
        let mut net = mesh(2, link);
        let d = net.plan_send(SiteId(0), SiteId(1), t(0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].at, t(5));
        assert_eq!(d[0].attempts, 1);
        assert!(!d[0].duplicate);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn drops_cause_retries_but_delivery_always_happens() {
        let link = LinkConfig::lossy(LatencyModel::Constant(Duration::from_millis(1)), 0.7);
        let mut net = mesh(2, link);
        let mut max_attempts = 0;
        for i in 0..200 {
            let d = net.plan_send(SiteId(0), SiteId(1), t(i));
            assert_eq!(d.len(), 1, "reliable plan always delivers");
            max_attempts = max_attempts.max(d[0].attempts);
        }
        assert!(max_attempts > 1, "with 70% drop some retries must occur");
        assert!(net.stats().dropped_attempts > 0);
    }

    #[test]
    fn partition_delays_delivery_to_heal_time() {
        let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)));
        let mut net = mesh(2, link).with_partitions(PartitionSchedule::new(vec![
            PartitionWindow::split(t(0), t(100), [SiteId(0)], [SiteId(1)]),
        ]));
        let d = net.plan_send(SiteId(0), SiteId(1), t(10));
        assert_eq!(d.len(), 1);
        assert!(d[0].at >= t(100), "arrives only after heal, got {}", d[0].at);
        assert!(d[0].attempts >= 2);
        assert!(net.stats().partition_blocked > 0);
    }

    #[test]
    fn duplication_produces_second_copy() {
        let link = LinkConfig {
            latency: LatencyModel::Constant(Duration::from_millis(2)),
            drop_prob: 0.0,
            duplicate_prob: 1.0,
            bandwidth: None,
        };
        let mut net = mesh(2, link);
        let d = net.plan_send(SiteId(0), SiteId(1), t(0));
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].msg, d[1].msg, "same message id");
        assert!(d[1].duplicate);
        assert_eq!(net.stats().duplicated, 1);
    }

    #[test]
    fn unreliable_send_lost_in_partition() {
        let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)));
        let mut net = mesh(2, link).with_partitions(PartitionSchedule::new(vec![
            PartitionWindow::split(t(0), t(100), [SiteId(0)], [SiteId(1)]),
        ]));
        assert!(net.plan_send_unreliable(SiteId(0), SiteId(1), t(50)).is_none());
        assert_eq!(net.stats().lost, 1);
        // After heal it succeeds.
        assert!(net.plan_send_unreliable(SiteId(0), SiteId(1), t(150)).is_some());
    }

    #[test]
    fn unreliable_send_may_drop() {
        let link = LinkConfig::lossy(LatencyModel::Constant(Duration::from_millis(1)), 1.0);
        let mut net = mesh(2, link);
        assert!(net.plan_send_unreliable(SiteId(0), SiteId(1), t(0)).is_none());
    }

    #[test]
    fn message_ids_are_unique() {
        let mut net = mesh(2, LinkConfig::default());
        let a = net.plan_send(SiteId(0), SiteId(1), t(0))[0].msg;
        let b = net.plan_send(SiteId(0), SiteId(1), t(0))[0].msg;
        assert_ne!(a, b);
    }

    #[test]
    fn same_seed_same_plan() {
        let link = LinkConfig::lossy(LatencyModel::Uniform(Duration::ZERO, Duration::from_millis(10)), 0.3);
        let plan = |seed: u64| {
            let mut net = Network::new(Topology::full_mesh(2, link), DetRng::new(seed));
            (0..50)
                .map(|i| net.plan_send(SiteId(0), SiteId(1), t(i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(plan(7), plan(7));
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)))
            .with_bandwidth(1_000_000); // 1 MB/s
        let mut net = mesh(2, link);
        // 100 KB at 1 MB/s = 100 ms serialization + 1 ms latency.
        let d = net.plan_send_sized(SiteId(0), SiteId(1), t(0), 100_000);
        assert_eq!(d[0].at, t(101));
        // A zero-byte control message is unaffected.
        let d = net.plan_send(SiteId(0), SiteId(1), t(0));
        assert_eq!(d[0].at, t(1));
    }

    #[test]
    fn bandwidth_congestion_queues_messages() {
        let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)))
            .with_bandwidth(1_000_000);
        let mut net = mesh(2, link);
        // Three back-to-back 50 KB messages at t=0: each takes 50 ms of
        // transmitter time, so arrivals are 51, 101, 151 ms.
        let a = net.plan_send_sized(SiteId(0), SiteId(1), t(0), 50_000)[0].at;
        let b = net.plan_send_sized(SiteId(0), SiteId(1), t(0), 50_000)[0].at;
        let c = net.plan_send_sized(SiteId(0), SiteId(1), t(0), 50_000)[0].at;
        assert_eq!(a, t(51));
        assert_eq!(b, t(101));
        assert_eq!(c, t(151));
        // Different direction = different transmitter: no queueing.
        let d = net.plan_send_sized(SiteId(1), SiteId(0), t(0), 50_000)[0].at;
        assert_eq!(d, t(51));
    }

    #[test]
    fn idle_transmitter_does_not_backlog_future_sends() {
        let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)))
            .with_bandwidth(1_000_000);
        let mut net = mesh(2, link);
        net.plan_send_sized(SiteId(0), SiteId(1), t(0), 10_000); // busy till 10ms
        // A send at t=500 starts immediately (transmitter long idle).
        let d = net.plan_send_sized(SiteId(0), SiteId(1), t(500), 10_000);
        assert_eq!(d[0].at, t(511));
    }

    #[test]
    fn retry_interval_is_respected() {
        let link = LinkConfig::lossy(LatencyModel::Constant(Duration::ZERO), 0.9);
        let mut net = mesh(2, link).with_retry_interval(Duration::from_millis(100));
        // Find a plan that took k attempts; its arrival must be at least
        // (k-1) * 100ms after the send.
        for i in 0..100 {
            let d = net.plan_send(SiteId(0), SiteId(1), t(i * 10));
            let min = t(i * 10) + Duration::from_millis(100).saturating_mul(u64::from(d[0].attempts - 1));
            assert!(d[0].at >= min);
        }
    }
}
