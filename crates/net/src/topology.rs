//! Network topology: sites and per-link configuration.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use esr_core::ids::SiteId;

use crate::latency::LatencyModel;

/// Configuration of one directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Latency distribution of a successful hop.
    pub latency: LatencyModel,
    /// Probability that one delivery attempt is lost.
    pub drop_prob: f64,
    /// Probability that a delivered message is delivered twice.
    pub duplicate_prob: f64,
    /// Link bandwidth in bytes per second; `None` = infinite (no
    /// serialization delay, no congestion).
    pub bandwidth: Option<u64>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self {
            latency: LatencyModel::default(),
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            bandwidth: None,
        }
    }
}

impl LinkConfig {
    /// A perfectly reliable link with the given latency model.
    pub fn reliable(latency: LatencyModel) -> Self {
        Self {
            latency,
            ..Self::default()
        }
    }

    /// A lossy link.
    pub fn lossy(latency: LatencyModel, drop_prob: f64) -> Self {
        Self {
            latency,
            drop_prob,
            ..Self::default()
        }
    }

    /// Caps the link's bandwidth (bytes per second): sized sends pay a
    /// serialization delay and queue behind each other.
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth = Some(bytes_per_sec);
        self
    }
}

/// A set of sites and the link configuration between each ordered pair.
#[derive(Debug, Clone)]
pub struct Topology {
    sites: Vec<SiteId>,
    default_link: LinkConfig,
    overrides: BTreeMap<(SiteId, SiteId), LinkConfig>,
}

impl Topology {
    /// A full mesh of `n` sites (ids `0..n`) with one default link
    /// config.
    pub fn full_mesh(n: usize, default_link: LinkConfig) -> Self {
        Self {
            sites: (0..n as u64).map(SiteId).collect(),
            default_link,
            overrides: BTreeMap::new(),
        }
    }

    /// The sites, in id order.
    pub fn sites(&self) -> &[SiteId] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True for the degenerate empty topology.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// True when `site` belongs to this topology.
    pub fn contains(&self, site: SiteId) -> bool {
        self.sites.binary_search(&site).is_ok()
    }

    /// Overrides the configuration of one directed link.
    pub fn set_link(&mut self, from: SiteId, to: SiteId, config: LinkConfig) {
        self.overrides.insert((from, to), config);
    }

    /// Overrides both directions of a link.
    pub fn set_link_bidir(&mut self, a: SiteId, b: SiteId, config: LinkConfig) {
        self.set_link(a, b, config);
        self.set_link(b, a, config);
    }

    /// The configuration in force for a directed link.
    pub fn link(&self, from: SiteId, to: SiteId) -> LinkConfig {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Every site except `me` (the replication fan-out set).
    pub fn peers_of(&self, me: SiteId) -> Vec<SiteId> {
        self.sites.iter().copied().filter(|&s| s != me).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_sim::time::Duration;

    #[test]
    fn full_mesh_has_all_sites() {
        let t = Topology::full_mesh(4, LinkConfig::default());
        assert_eq!(t.len(), 4);
        assert!(t.contains(SiteId(0)));
        assert!(t.contains(SiteId(3)));
        assert!(!t.contains(SiteId(4)));
        assert!(!t.is_empty());
    }

    #[test]
    fn peers_exclude_self() {
        let t = Topology::full_mesh(3, LinkConfig::default());
        let peers = t.peers_of(SiteId(1));
        assert_eq!(peers, vec![SiteId(0), SiteId(2)]);
    }

    #[test]
    fn link_override_is_directional() {
        let mut t = Topology::full_mesh(2, LinkConfig::default());
        let slow = LinkConfig::reliable(LatencyModel::Constant(Duration::from_secs(1)));
        t.set_link(SiteId(0), SiteId(1), slow);
        assert_eq!(t.link(SiteId(0), SiteId(1)).drop_prob, 0.0);
        assert_eq!(
            t.link(SiteId(0), SiteId(1)).latency,
            LatencyModel::Constant(Duration::from_secs(1))
        );
        // Reverse direction untouched.
        assert_eq!(t.link(SiteId(1), SiteId(0)).latency, LatencyModel::default());
    }

    #[test]
    fn bidir_override_touches_both() {
        let mut t = Topology::full_mesh(2, LinkConfig::default());
        let lossy = LinkConfig::lossy(LatencyModel::default(), 0.5);
        t.set_link_bidir(SiteId(0), SiteId(1), lossy);
        assert_eq!(t.link(SiteId(0), SiteId(1)).drop_prob, 0.5);
        assert_eq!(t.link(SiteId(1), SiteId(0)).drop_prob, 0.5);
    }

    #[test]
    fn constructors() {
        let r = LinkConfig::reliable(LatencyModel::wan());
        assert_eq!(r.drop_prob, 0.0);
        let l = LinkConfig::lossy(LatencyModel::wan(), 0.1);
        assert_eq!(l.drop_prob, 0.1);
        assert_eq!(l.duplicate_prob, 0.0);
    }
}
