//! Link latency models.

use serde::{Deserialize, Serialize};

use esr_sim::rng::DetRng;
use esr_sim::time::Duration;

/// How long one network hop takes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(Duration),
    /// Uniformly distributed in `[lo, hi]`.
    Uniform(Duration, Duration),
    /// Exponentially distributed with the given mean (heavy tail capped
    /// at 100× the mean by the RNG).
    Exponential(Duration),
}

impl LatencyModel {
    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut DetRng) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(lo, hi) => rng.uniform_duration(*lo, *hi),
            LatencyModel::Exponential(mean) => rng.exponential(*mean),
        }
    }

    /// The mean of the distribution (exact for constant/exponential,
    /// midpoint for uniform).
    pub fn mean(&self) -> Duration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(lo, hi) => {
                Duration::from_micros((lo.as_micros() + hi.as_micros()) / 2)
            }
            LatencyModel::Exponential(mean) => *mean,
        }
    }

    /// A LAN-ish default: uniform 0.2–1 ms.
    pub fn lan() -> Self {
        LatencyModel::Uniform(Duration::from_micros(200), Duration::from_millis(1))
    }

    /// A WAN-ish default: exponential with 30 ms mean.
    pub fn wan() -> Self {
        LatencyModel::Exponential(Duration::from_millis(30))
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_always_same() {
        let m = LatencyModel::Constant(Duration::from_millis(5));
        let mut rng = DetRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), Duration::from_millis(5));
        }
        assert_eq!(m.mean(), Duration::from_millis(5));
    }

    #[test]
    fn uniform_in_bounds() {
        let lo = Duration::from_millis(1);
        let hi = Duration::from_millis(3);
        let m = LatencyModel::Uniform(lo, hi);
        let mut rng = DetRng::new(2);
        for _ in 0..1000 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d <= hi);
        }
        assert_eq!(m.mean(), Duration::from_millis(2));
    }

    #[test]
    fn exponential_mean_near_target() {
        let m = LatencyModel::Exponential(Duration::from_millis(10));
        let mut rng = DetRng::new(3);
        let n = 10_000u64;
        let total: u64 = (0..n).map(|_| m.sample(&mut rng).as_micros()).sum();
        let avg = total / n;
        assert!((8_500..11_500).contains(&avg), "avg {avg}us");
        assert_eq!(m.mean(), Duration::from_millis(10));
    }

    #[test]
    fn defaults_exist() {
        let mut rng = DetRng::new(4);
        assert!(LatencyModel::lan().sample(&mut rng) <= Duration::from_millis(1));
        assert!(LatencyModel::default().mean() < LatencyModel::wan().mean());
    }
}
