//! Fault schedules: network partitions.
//!
//! A [`PartitionSchedule`] describes windows of virtual time during which
//! the site set is split into disconnected groups. Replica control must
//! be "robust in face of very slow links, network partitions, and site
//! failures" (§2.2); experiments E6 and E10 drive partitions through this
//! module.
//!
//! The time axis need not be the simulator's clock: any monotone logical
//! scale works. The thread runtime's chaos layer (`esr-runtime`) reuses
//! these schedules with **logical ticks** — virtual-millisecond `t` is
//! read as "queue entry `e` on delivery attempt `k`" via `t = e + k` —
//! so a window `[lo, hi)` deterministically blocks the cross-cut entries
//! enqueued before `hi`, healing as their retry attempts advance the
//! tick, with no wall-clock dependence at all.

use std::collections::BTreeSet;

use esr_core::ids::SiteId;
use esr_sim::time::VirtualTime;

/// One partition window: between `start` (inclusive) and `end`
/// (exclusive) the sites are split into `groups`; two sites communicate
/// only if some group contains both. Sites not listed in any group are
/// isolated for the window.
#[derive(Debug, Clone)]
pub struct PartitionWindow {
    /// When the partition begins.
    pub start: VirtualTime,
    /// When it heals.
    pub end: VirtualTime,
    /// The connected components during the window.
    pub groups: Vec<BTreeSet<SiteId>>,
}

impl PartitionWindow {
    /// Splits the sites into exactly two groups for a window.
    pub fn split(
        start: VirtualTime,
        end: VirtualTime,
        group_a: impl IntoIterator<Item = SiteId>,
        group_b: impl IntoIterator<Item = SiteId>,
    ) -> Self {
        Self {
            start,
            end,
            groups: vec![group_a.into_iter().collect(), group_b.into_iter().collect()],
        }
    }

    /// Isolates one site from everyone else for a window.
    pub fn isolate(
        start: VirtualTime,
        end: VirtualTime,
        victim: SiteId,
        others: impl IntoIterator<Item = SiteId>,
    ) -> Self {
        Self::split(start, end, [victim], others)
    }

    fn active_at(&self, at: VirtualTime) -> bool {
        self.start <= at && at < self.end
    }

    fn connects(&self, a: SiteId, b: SiteId) -> bool {
        self.groups
            .iter()
            .any(|g| g.contains(&a) && g.contains(&b))
    }
}

/// A schedule of partition windows.
#[derive(Debug, Clone, Default)]
pub struct PartitionSchedule {
    windows: Vec<PartitionWindow>,
}

impl PartitionSchedule {
    /// A schedule with no partitions: the network is always connected.
    pub fn none() -> Self {
        Self::default()
    }

    /// Builds a schedule from windows.
    pub fn new(windows: Vec<PartitionWindow>) -> Self {
        Self { windows }
    }

    /// Adds a window.
    pub fn add(&mut self, window: PartitionWindow) {
        self.windows.push(window);
    }

    /// Can `a` reach `b` at time `at`? (A site can always reach itself.)
    pub fn connected(&self, a: SiteId, b: SiteId, at: VirtualTime) -> bool {
        if a == b {
            return true;
        }
        self.windows
            .iter()
            .filter(|w| w.active_at(at))
            .all(|w| w.connects(a, b))
    }

    /// The earliest time at or after `at` when `a` can reach `b`, or
    /// `None` if some window never ends before `horizon`.
    pub fn next_connected(
        &self,
        a: SiteId,
        b: SiteId,
        at: VirtualTime,
        horizon: VirtualTime,
    ) -> Option<VirtualTime> {
        let mut t = at;
        loop {
            if t > horizon {
                return None;
            }
            if self.connected(a, b, t) {
                return Some(t);
            }
            // Jump to the end of the earliest blocking window.
            let next_end = self
                .windows
                .iter()
                .filter(|w| w.active_at(t) && !w.connects(a, b))
                .map(|w| w.end)
                .min()?;
            t = next_end;
        }
    }

    /// True when any window is active at `at`.
    pub fn partitioned_at(&self, at: VirtualTime) -> bool {
        self.windows.iter().any(|w| w.active_at(at))
    }

    /// The time at which the last window heals ([`VirtualTime::ZERO`]
    /// when there are no windows).
    pub fn last_heal(&self) -> VirtualTime {
        self.windows
            .iter()
            .map(|w| w.end)
            .max()
            .unwrap_or(VirtualTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::from_millis(ms)
    }

    #[test]
    fn no_partitions_always_connected() {
        let p = PartitionSchedule::none();
        assert!(p.connected(SiteId(0), SiteId(1), t(0)));
        assert!(!p.partitioned_at(t(5)));
        assert_eq!(p.last_heal(), VirtualTime::ZERO);
    }

    #[test]
    fn split_blocks_cross_group_traffic() {
        let w = PartitionWindow::split(t(10), t(20), [SiteId(0), SiteId(1)], [SiteId(2)]);
        let p = PartitionSchedule::new(vec![w]);
        // Before the window: connected.
        assert!(p.connected(SiteId(0), SiteId(2), t(5)));
        // During: same group ok, cross group blocked.
        assert!(p.connected(SiteId(0), SiteId(1), t(15)));
        assert!(!p.connected(SiteId(0), SiteId(2), t(15)));
        assert!(!p.connected(SiteId(2), SiteId(1), t(10)), "start inclusive");
        // At the end instant it heals (end exclusive).
        assert!(p.connected(SiteId(0), SiteId(2), t(20)));
    }

    #[test]
    fn isolate_cuts_one_site_off() {
        let w = PartitionWindow::isolate(t(0), t(10), SiteId(3), [SiteId(0), SiteId(1), SiteId(2)]);
        let p = PartitionSchedule::new(vec![w]);
        assert!(!p.connected(SiteId(3), SiteId(0), t(5)));
        assert!(p.connected(SiteId(0), SiteId(1), t(5)));
        assert!(p.connected(SiteId(3), SiteId(3), t(5)), "self always reachable");
    }

    #[test]
    fn unlisted_sites_are_isolated_during_window() {
        let w = PartitionWindow::split(t(0), t(10), [SiteId(0)], [SiteId(1)]);
        let p = PartitionSchedule::new(vec![w]);
        assert!(!p.connected(SiteId(2), SiteId(0), t(5)));
        assert!(!p.connected(SiteId(2), SiteId(3), t(5)));
    }

    #[test]
    fn overlapping_windows_must_all_connect() {
        let w1 = PartitionWindow::split(t(0), t(20), [SiteId(0), SiteId(1)], [SiteId(2)]);
        let w2 = PartitionWindow::split(t(10), t(30), [SiteId(0)], [SiteId(1), SiteId(2)]);
        let p = PartitionSchedule::new(vec![w1, w2]);
        assert!(p.connected(SiteId(0), SiteId(1), t(5)), "only w1 active");
        assert!(!p.connected(SiteId(0), SiteId(1), t(15)), "w2 splits them");
        assert!(!p.connected(SiteId(1), SiteId(2), t(15)), "w1 splits them");
        assert!(p.connected(SiteId(1), SiteId(2), t(25)), "only w2 active");
    }

    #[test]
    fn next_connected_jumps_to_heal_time() {
        let w = PartitionWindow::split(t(10), t(20), [SiteId(0)], [SiteId(1)]);
        let p = PartitionSchedule::new(vec![w]);
        assert_eq!(p.next_connected(SiteId(0), SiteId(1), t(5), t(100)), Some(t(5)));
        assert_eq!(
            p.next_connected(SiteId(0), SiteId(1), t(12), t(100)),
            Some(t(20))
        );
        assert_eq!(p.next_connected(SiteId(0), SiteId(1), t(12), t(15)), None);
    }

    #[test]
    fn last_heal_is_max_end() {
        let p = PartitionSchedule::new(vec![
            PartitionWindow::split(t(0), t(10), [SiteId(0)], [SiteId(1)]),
            PartitionWindow::split(t(5), t(30), [SiteId(0)], [SiteId(1)]),
        ]);
        assert_eq!(p.last_heal(), t(30));
        assert!(p.partitioned_at(t(29)));
        assert!(!p.partitioned_at(t(30)));
    }
}
