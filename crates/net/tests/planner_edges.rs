//! Edge cases in the delivery planner and partition schedules: the
//! degenerate windows and fault combinations the mainline tests never
//! hit, plus the `NetStats` bookkeeping identities that keep the chaos
//! oracles honest (a miscounted duplicate or drop silently weakens the
//! "faults actually fired" assertions).

use esr_core::ids::SiteId;
use esr_net::faults::{PartitionSchedule, PartitionWindow};
use esr_net::latency::LatencyModel;
use esr_net::topology::{LinkConfig, Topology};
use esr_net::transport::Network;
use esr_sim::rng::DetRng;
use esr_sim::time::{Duration, VirtualTime};

fn t(ms: u64) -> VirtualTime {
    VirtualTime::from_millis(ms)
}

fn mesh(link: LinkConfig, seed: u64) -> Network {
    Network::new(Topology::full_mesh(2, link), DetRng::new(seed))
}

const A: SiteId = SiteId(0);
const B: SiteId = SiteId(1);

#[test]
fn zero_length_window_never_blocks() {
    // start == end: the half-open [t, t) window contains no instant, so
    // it must be inert everywhere — including at exactly `t`.
    let p = PartitionSchedule::new(vec![PartitionWindow::split(t(10), t(10), [A], [B])]);
    assert!(p.connected(A, B, t(9)));
    assert!(p.connected(A, B, t(10)), "empty window blocked its own start");
    assert!(p.connected(A, B, t(11)));
    assert!(!p.partitioned_at(t(10)));
    // next_connected never stalls on it.
    assert_eq!(p.next_connected(A, B, t(10), t(100)), Some(t(10)));
    // But last_heal still reports its end: the schedule knows of it.
    assert_eq!(p.last_heal(), t(10));

    // And the planner routes traffic straight through.
    let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)));
    let mut net = mesh(link, 1).with_partitions(p);
    let d = net.plan_send(A, B, t(10));
    assert_eq!(d[0].at, t(11));
    assert_eq!(d[0].attempts, 1);
    assert_eq!(net.stats().partition_blocked, 0);
}

#[test]
fn back_to_back_windows_block_continuously() {
    // [10,20) followed by [20,30): no connected gap at the seam — the
    // first heal instant is exactly 30.
    let p = PartitionSchedule::new(vec![
        PartitionWindow::split(t(10), t(20), [A], [B]),
        PartitionWindow::split(t(20), t(30), [A], [B]),
    ]);
    assert!(!p.connected(A, B, t(19)));
    assert!(!p.connected(A, B, t(20)), "seam instant must stay blocked");
    assert!(!p.connected(A, B, t(29)));
    assert!(p.connected(A, B, t(30)));
    assert!(p.partitioned_at(t(20)));
    assert_eq!(p.last_heal(), t(30));
    // next_connected hops across both windows in one call.
    assert_eq!(p.next_connected(A, B, t(12), t(100)), Some(t(30)));
    // A horizon inside the blocked span means "never".
    assert_eq!(p.next_connected(A, B, t(12), t(29)), None);

    // The planner delivers only after the second window heals.
    let link = LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)));
    let mut net = mesh(link, 1).with_partitions(p);
    let d = net.plan_send(A, B, t(12));
    assert!(d[0].at >= t(30), "arrived at {} inside the blocked span", d[0].at);
    assert!(net.stats().partition_blocked >= 1);
}

#[test]
fn overlapping_windows_heal_at_the_later_end() {
    // Overlap rather than abutment: [10,25) and [20,30) — still one
    // continuous blocked span for the cut pair.
    let p = PartitionSchedule::new(vec![
        PartitionWindow::split(t(10), t(25), [A], [B]),
        PartitionWindow::split(t(20), t(30), [A], [B]),
    ]);
    assert_eq!(p.next_connected(A, B, t(15), t(100)), Some(t(30)));
    assert!(!p.connected(A, B, t(27)), "second window still active");
    assert!(p.connected(A, B, t(30)));
}

#[test]
fn duplicates_attach_only_to_the_successful_attempt() {
    // Every attempt drops with p=0.75 and every delivery duplicates
    // with p=1.0. If the planner ever rolled duplication for a
    // *dropped* attempt, the RNG streams would interleave differently
    // and the counters below would not balance.
    let link = LinkConfig {
        latency: LatencyModel::Constant(Duration::from_millis(2)),
        drop_prob: 0.75,
        duplicate_prob: 1.0,
        bandwidth: None,
    };
    let mut net = mesh(link, 99);
    let mut total_attempts = 0u64;
    for i in 0..200 {
        let d = net.plan_send(A, B, t(i));
        // Exactly two copies: the real one and its duplicate, agreeing
        // on the message and on how many attempts preceded success.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].msg, d[1].msg);
        assert!(!d[0].duplicate && d[1].duplicate);
        assert_eq!(d[0].attempts, d[1].attempts);
        // The duplicate is a second *arrival*, not a second attempt: it
        // departs from the same successful attempt time, and with a
        // constant-latency link that pins both arrivals to one instant.
        assert_eq!(d[1].at, d[0].at);
        total_attempts += u64::from(d[0].attempts);
    }
    let s = net.stats();
    assert_eq!(s.sent, 200);
    // One duplicate per send, no more — dropped attempts contribute
    // nothing to duplication.
    assert_eq!(s.duplicated, 200);
    assert_eq!(s.delivered, s.sent + s.duplicated);
    // Attempt accounting: every attempt either dropped or succeeded,
    // and exactly one per message succeeded.
    assert_eq!(s.dropped_attempts, total_attempts - s.sent);
    assert!(s.dropped_attempts > 0, "75% drop never fired");
    assert_eq!(s.lost, 0, "reliable sends never lose messages");
}

#[test]
fn unreliable_sends_never_duplicate() {
    let link = LinkConfig {
        latency: LatencyModel::Constant(Duration::from_millis(1)),
        drop_prob: 0.5,
        duplicate_prob: 1.0,
        bandwidth: None,
    };
    let mut net = mesh(link, 7);
    let mut delivered = 0u64;
    for i in 0..100 {
        if let Some(d) = net.plan_send_unreliable(A, B, t(i)) {
            assert!(!d.duplicate);
            assert_eq!(d.attempts, 1);
            delivered += 1;
        }
    }
    let s = net.stats();
    assert_eq!(s.sent, 100);
    assert_eq!(s.delivered, delivered);
    assert_eq!(s.duplicated, 0, "single-attempt sends must not duplicate");
    assert_eq!(s.lost, s.sent - s.delivered);
    assert_eq!(s.dropped_attempts, s.lost, "no partitions: every loss is a drop");
}

#[test]
fn partition_blocked_and_dropped_attempts_count_separately() {
    // A lossy link under a partition: attempts before the heal charge
    // `partition_blocked`, attempts after the heal that drop charge
    // `dropped_attempts` — the two counters never blur.
    let link = LinkConfig::lossy(LatencyModel::Constant(Duration::from_millis(1)), 0.6);
    let p = PartitionSchedule::new(vec![PartitionWindow::split(t(0), t(200), [A], [B])]);
    let mut net = mesh(link, 21).with_partitions(p);
    for i in 0..50 {
        let d = net.plan_send(A, B, t(i));
        assert!(d[0].at >= t(200));
    }
    let s = net.stats();
    assert_eq!(s.sent, 50);
    assert_eq!(s.delivered, 50);
    assert!(s.partition_blocked >= 50, "every send hit the window first");
    assert!(s.dropped_attempts > 0, "post-heal drops must still fire");
    assert_eq!(s.lost, 0);
}
