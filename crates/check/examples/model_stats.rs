//! Ad-hoc sweep sizing: `cargo run --release -p esr-check --example
//! model_stats -- <method> <crashes> <dups> [budget]`.

use esr_check::model::explore::{explore, Sweep};
use esr_check::model::ModelCfg;
use esr_runtime::state::RtMethod;

fn num<T: std::str::FromStr>(s: &str, what: &str) -> T {
    match s.parse() {
        Ok(v) => v,
        Err(_) => panic!("bad {what}: {s}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let method = match args[0].as_str() {
        "ordup" => RtMethod::Ordup,
        "commu" => RtMethod::Commu,
        "ritu" => RtMethod::Ritu,
        "ritumv" => RtMethod::RituMv,
        "compe" => RtMethod::Compe,
        other => panic!("unknown method {other}"),
    };
    let mut cfg = ModelCfg::standard(method);
    cfg.max_crashes = num(&args[1], "crashes");
    cfg.max_dups = num(&args[2], "dups");
    let budget = args.get(3).map_or(40_000_000, |b| num(b, "budget"));
    if let Some(updates) = args.get(4) {
        let n: usize = num(updates, "updates");
        cfg.workload.truncate(n);
        cfg.decisions.retain(|(et, _)| cfg.workload.iter().any(|m| m.et == *et));
    }
    let start = std::time::Instant::now();
    match explore(&cfg, budget) {
        Sweep::Clean(s) => println!(
            "{method:?} clean: exec={} states={} pruned={} depth={} in {:?}",
            s.executions,
            s.states,
            s.sleep_pruned,
            s.max_depth,
            start.elapsed()
        ),
        Sweep::Failed(f) => println!("{method:?} FAILED: {:?}\n{:?}", f.findings, f.schedule),
        Sweep::BudgetExceeded(s) => println!(
            "{method:?} budget exceeded: exec={} states={} in {:?}",
            s.executions,
            s.states,
            start.elapsed()
        ),
    }
}
