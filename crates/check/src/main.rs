//! The `esr-check` binary: canary self-test, then clean sweep.
//!
//! ```text
//! esr-check [--schedules N] [--seed S] [--skip-canaries]
//! esr-check --model [--model-budget N]
//! ```
//!
//! Default mode — the schedule explorer: phase 1 proves the checker
//! catches every seeded defect class (two shim-level harnesses with
//! controls, three runtime fault injections). Phase 2 sweeps the
//! unmutated runtime across `N` schedules split over the five
//! replica-control methods, running the race and lock-order detectors
//! on every trace and the ESR oracles on every run. Exit code 0 means
//! every canary was caught and the sweep was clean; the summary ends
//! with a digest that is a pure function of `(--seed, --schedules)`.
//!
//! `--model` runs `esr-model` instead: the exhaustive control-plane
//! explorer over the pure `NodeCore` step function. Phase 1 hunts the
//! seven seeded control-plane defects (the two failover defects —
//! split-brain double-coordinator and completion-lost-in-handoff —
//! run with a one-suspicion budget so the explorer can drive a view
//! change). Phase 2 sweeps the canary-size configuration (one update,
//! crash + dup budgets) and the standard two-update configuration
//! (single-fault passes) clean for every method, then the one-update
//! view-change configuration for COMMU (the other methods' failover
//! sweeps are the ignored full tier of `model_check.rs`).

use std::process::ExitCode;

use esr_check::canary::{self, RT_CANARIES};
use esr_check::explore::{run_scheduled, schedule_matrix};
use esr_check::model;
use esr_check::model::explore::{explore, Sweep};
use esr_check::model::ModelCfg;
use esr_check::oracles;
use esr_check::race::{LockOrderDetector, RaceDetector};
use esr_runtime::{RtCanary, RtMethod};

const METHODS: [RtMethod; 5] = [
    RtMethod::Ordup,
    RtMethod::Commu,
    RtMethod::Ritu,
    RtMethod::RituMv,
    RtMethod::Compe,
];

/// Schedules spent per runtime canary before declaring it missed.
const CANARY_BUDGET: u64 = 48;

struct Args {
    schedules: u64,
    seed: u64,
    skip_canaries: bool,
    model: bool,
    model_budget: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schedules: 200,
        seed: 1,
        skip_canaries: false,
        model: false,
        model_budget: 40_000_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schedules" => {
                let v = it.next().ok_or("--schedules needs a value")?;
                args.schedules = v.parse().map_err(|e| format!("--schedules: {e}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--skip-canaries" => args.skip_canaries = true,
            "--model" => args.model = true,
            "--model-budget" => {
                let v = it.next().ok_or("--model-budget needs a value")?;
                args.model_budget = v.parse().map_err(|e| format!("--model-budget: {e}"))?;
            }
            "--help" | "-h" => {
                println!(
                    "usage: esr-check [--schedules N] [--seed S] [--skip-canaries]\n\
                     \x20      esr-check --model [--model-budget N]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// FNV-1a, folded over the sweep's observable outcomes: same seed and
/// budget must print the same digest on every run.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }
    fn mix(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn mix_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn run_canaries() -> bool {
    let mut ok = true;
    println!("== canary self-test ==");
    for t in canary::shim_self_tests() {
        println!(
            "  [{}] {}: {}",
            if t.pass { "PASS" } else { "FAIL" },
            t.name,
            t.detail
        );
        ok &= t.pass;
    }
    for case in &RT_CANARIES {
        match canary::expose(case, 0xC0FF_EE00, CANARY_BUDGET) {
            Some((n, findings)) => {
                println!(
                    "  [PASS] {}: flagged by `{}` after {n} schedule(s): {}",
                    case.name, case.oracle, findings[0]
                );
            }
            None => {
                println!(
                    "  [FAIL] {}: no `{}` finding in {CANARY_BUDGET} schedules",
                    case.name, case.oracle
                );
                ok = false;
            }
        }
    }
    ok
}

fn run_sweep(seed: u64, schedules: u64, digest: &mut Digest) -> u64 {
    println!("== clean sweep: {schedules} schedules over {} methods ==", METHODS.len());
    let mut findings_total = 0u64;
    let per_method = (schedules / METHODS.len() as u64).max(1);
    for (mi, &method) in METHODS.iter().enumerate() {
        let matrix = schedule_matrix(seed.wrapping_add(mi as u64 * 0x1000), per_method);
        let expected = oracles::expected_threads(method);
        let mut steps_sum = 0u64;
        let mut method_findings = 0u64;
        for spec in matrix {
            let explored = run_scheduled(spec, expected, || {
                oracles::run_workload(method, RtCanary::None)
            });
            steps_sum += explored.steps;
            digest.mix(explored.steps);
            if explored.forced_stop {
                method_findings += 1;
                println!(
                    "  [{method:?}] FORCED STOP under seed {:#x} ({:?}) after {} steps — \
                     schedule wedged or ran away",
                    spec.seed, spec.policy, explored.steps
                );
            }
            for f in oracles::check(&explored.value) {
                method_findings += 1;
                digest.mix_str(f.oracle);
                println!("  [{method:?}] oracle finding under seed {:#x}: {f}", spec.seed);
            }
            for f in RaceDetector::analyze(&explored.trace)
                .into_iter()
                .chain(LockOrderDetector::analyze(&explored.trace))
            {
                method_findings += 1;
                println!("  [{method:?}] trace finding under seed {:#x}: {f}", spec.seed);
            }
        }
        digest.mix(method_findings);
        println!(
            "  [{method:?}] {per_method} schedules, {steps_sum} scheduler steps, \
             {method_findings} finding(s)"
        );
        findings_total += method_findings;
    }
    findings_total
}

/// Runs one model sweep, printing the outcome. Returns `true` on a
/// clean exhaustive pass.
fn model_sweep(label: &str, cfg: &ModelCfg, budget: u64) -> bool {
    match explore(cfg, budget) {
        Sweep::Clean(stats) => {
            println!(
                "  [PASS] {label}: clean; {} executions, {} states, depth {}",
                stats.executions, stats.states, stats.max_depth
            );
            true
        }
        Sweep::Failed(failure) => {
            println!("  [FAIL] {label}: oracle failure");
            for f in &failure.findings {
                println!("         {}: {}", f.oracle, f.detail);
            }
            println!("         schedule: {:?}", failure.schedule);
            false
        }
        Sweep::BudgetExceeded(stats) => {
            println!(
                "  [FAIL] {label}: budget exceeded after {} states ({} executions)",
                stats.states, stats.executions
            );
            false
        }
    }
}

/// The `--model` mode: control-plane canary hunts, then exhaustive
/// clean sweeps (canary-size with the full fault budget, standard size
/// in single-fault passes).
fn run_model(budget: u64) -> ExitCode {
    let mut ok = true;
    println!("== esr-model: control-plane canary hunt ==");
    for case in &model::canary::CTRL_CANARIES {
        match model::canary::expose(case, budget) {
            Some(failure) => {
                let by_expected = failure.findings.iter().any(|f| f.oracle == case.oracle);
                let caught = failure
                    .findings
                    .first()
                    .map(|f| f.oracle)
                    .unwrap_or("none");
                if by_expected {
                    println!(
                        "  [PASS] {}: caught by `{}` in a {}-transition schedule",
                        case.name,
                        case.oracle,
                        failure.schedule.len()
                    );
                } else {
                    println!(
                        "  [FAIL] {}: caught, but by `{caught}` instead of `{}`",
                        case.name, case.oracle
                    );
                    ok = false;
                }
            }
            None => {
                println!("  [FAIL] {}: escaped the exhaustive sweep", case.name);
                ok = false;
            }
        }
    }
    println!("== esr-model: clean sweeps ==");
    for method in METHODS {
        let mut small = ModelCfg::standard(method);
        small.workload.truncate(1);
        small.decisions.retain(|(et, _)| small.workload.iter().any(|m| m.et == *et));
        ok &= model_sweep(&format!("{method:?} 1-update, crash+dup"), &small, budget);
        for (crashes, dups) in [(1usize, 0usize), (0, 1)] {
            let mut cfg = ModelCfg::standard(method);
            cfg.max_crashes = crashes;
            cfg.max_dups = dups;
            let label = format!("{method:?} 2-update, {crashes} crash {dups} dup");
            ok &= model_sweep(&label, &cfg, budget);
        }
    }
    // The failover sweep: one update racing one coordinator suspicion
    // (plus a volatile-loss crash), exercising the whole
    // view-change/handoff machinery under the split-brain,
    // view-monotonicity and duplicate-complete oracles. Run for COMMU
    // only: elections interleave so richly that one method is minutes
    // of search, and COMMU's config is the one the canary discipline
    // requires clean (both failover canaries hunt in it). The
    // method-plane evidence variants (ORDUP holds, RITU-MV horizons,
    // COMPE decisions crossing a handoff) are the ignored
    // `view_change_configs_sweep_clean` tier:
    // `cargo test -p esr-check --release --test model_check -- --ignored`.
    let vc = ModelCfg::view_change(RtMethod::Commu);
    ok &= model_sweep("Commu 1-update, view-change", &vc, budget);
    println!("== summary ==");
    if ok {
        println!("  verdict: CLEAN");
        ExitCode::SUCCESS
    } else {
        println!("  verdict: DEFECTS");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("esr-check: {e}");
            return ExitCode::from(2);
        }
    };

    if args.model {
        return run_model(args.model_budget);
    }

    let canaries_ok = if args.skip_canaries {
        println!("== canary self-test skipped ==");
        true
    } else {
        run_canaries()
    };

    let mut digest = Digest::new();
    digest.mix(args.seed);
    digest.mix(args.schedules);
    let findings = run_sweep(args.seed, args.schedules, &mut digest);

    println!("== summary ==");
    println!(
        "  canaries: {}; sweep findings: {findings}; digest: {:016x}",
        if canaries_ok { "all caught" } else { "MISSED" },
        digest.0
    );
    if canaries_ok && findings == 0 {
        println!("  verdict: CLEAN");
        ExitCode::SUCCESS
    } else {
        println!("  verdict: DEFECTS");
        ExitCode::FAILURE
    }
}
