//! The cooperative token scheduler (loom-style, built on our shims).
//!
//! Installed as the probe [`Gate`], it serializes every participating
//! thread onto one runnable thread at a time: each instrumented
//! operation first calls `reach`, which blocks until the scheduler
//! grants the thread the token. Every `reach` is a preemption point, so
//! the scheduling policy fully determines the interleaving — and with a
//! seeded policy the same seed replays the same schedule exactly.
//!
//! Threads are identified by their stable probe keys (thread names),
//! kept in a `BTreeMap` so every choice iterates candidates in a
//! deterministic order. No turn is granted until `expected` distinct
//! threads have registered, which pins the start state regardless of OS
//! spawn timing.
//!
//! A thread whose operation cannot complete calls `yield_blocked`: it
//! is parked in a *blocked* state the scheduler deprioritizes —
//! runnable threads are always preferred; when none exist the blocked
//! threads are polled round-robin (their operations are `try_` +
//! retry loops, so re-granting one lets it re-poll).
//!
//! Participating threads must stay inside instrumented operations until
//! [`TokenSched::shutdown`] — a participant that simply exits (or
//! blocks natively) while holding or awaiting the token would stall the
//! schedule; the workloads in this crate keep finished helper threads
//! parked on a stop channel instead. `shutdown` (idempotent; also
//! triggered by the step cap) releases every parked thread to free-run.
//!
//! This mutex/condvar core deliberately uses `std::sync` directly —
//! going through the instrumented `parking_lot` shim here would recurse
//! into the probe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};

use esr_sim::probe::Gate;
use esr_sim::DetRng;

/// A scheduling policy: how the explorer picks the next thread at each
/// preemption point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Run each thread for `quantum` consecutive operations, then rotate
    /// to the next registered thread in name order.
    RoundRobin {
        /// Operations per turn before rotating.
        quantum: u32,
    },
    /// At every operation, preempt to a uniformly random runnable thread
    /// with probability `p`.
    RandomWalk {
        /// Preemption probability per operation.
        p: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Runnable,
    Blocked,
}

#[derive(Debug)]
struct State {
    /// Registered participants (name → run state), name-ordered.
    threads: std::collections::BTreeMap<String, RunState>,
    /// Who holds the token (None until `expected` threads registered).
    active: Option<String>,
    rng: DetRng,
    policy: Policy,
    /// Operations left in the active thread's round-robin quantum.
    quantum_left: u32,
    /// Turns granted so far.
    steps: u64,
    shutdown: bool,
}

impl State {
    /// Picks the next token holder. Round-robin prefers runnable
    /// threads (in name order), polling blocked ones only when nothing
    /// is runnable; the random walk draws uniformly over *all*
    /// registered threads — without that, an always-runnable producer
    /// monopolizes the token and consumers only ever run after every
    /// send is already enqueued, hiding all producer/consumer
    /// interleavings (a blocked thread that wins merely re-polls and
    /// yields, which costs one step). `exclude` biases away from the
    /// caller but is overridden when it is the only thread.
    fn pick(&mut self, exclude: Option<&str>) {
        let uniform = matches!(self.policy, Policy::RandomWalk { .. });
        let runnable: Vec<&String> = self
            .threads
            .iter()
            .filter(|(n, s)| {
                (uniform || **s == RunState::Runnable) && Some(n.as_str()) != exclude
            })
            .map(|(n, _)| n)
            .collect();
        let pool: Vec<String> = if runnable.is_empty() {
            self.threads
                .keys()
                .filter(|n| Some(n.as_str()) != exclude)
                .cloned()
                .collect()
        } else {
            runnable.into_iter().cloned().collect()
        };
        let chosen = if pool.is_empty() {
            exclude.map(str::to_owned)
        } else {
            let i = match self.policy {
                Policy::RoundRobin { .. } => {
                    // Next name after the current active, cyclically.
                    match &self.active {
                        Some(cur) => pool
                            .iter()
                            .position(|n| n.as_str() > cur.as_str())
                            .unwrap_or(0),
                        None => 0,
                    }
                }
                Policy::RandomWalk { .. } => self.rng.below(pool.len() as u64) as usize,
            };
            Some(pool[i].clone())
        };
        if let Some(c) = &chosen {
            // A blocked thread that wins the token gets to retry.
            self.threads.insert(c.clone(), RunState::Runnable);
        }
        self.active = chosen;
        if let Policy::RoundRobin { quantum } = self.policy {
            self.quantum_left = quantum.max(1);
        }
    }

    /// Policy decision at the active thread's preemption point: `true`
    /// to preempt now.
    fn should_preempt(&mut self) -> bool {
        match self.policy {
            Policy::RoundRobin { .. } => {
                if self.quantum_left <= 1 {
                    true
                } else {
                    self.quantum_left -= 1;
                    false
                }
            }
            Policy::RandomWalk { p } => self.rng.chance(p),
        }
    }
}

/// The scheduler: a token passed between registered threads at
/// instrumented-operation granularity.
pub struct TokenSched {
    state: Mutex<State>,
    cv: Condvar,
    expected: usize,
    max_steps: u64,
    /// Set when `shutdown` was forced (watchdog timeout or step cap)
    /// rather than reached by normal completion.
    forced: AtomicBool,
}

impl TokenSched {
    /// A scheduler expecting `expected` participants, granting at most
    /// `max_steps` turns before forcing shutdown (runaway backstop).
    pub fn new(policy: Policy, seed: u64, expected: usize, max_steps: u64) -> Self {
        Self {
            state: Mutex::new(State {
                threads: std::collections::BTreeMap::new(),
                active: None,
                rng: DetRng::new(seed),
                policy,
                quantum_left: 0,
                steps: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            expected,
            max_steps,
            forced: AtomicBool::new(false),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Pre-registers a participant that has not reached the gate yet
    /// (the driver registers itself before spawning the workload so the
    /// expected-count gate can open deterministically).
    pub fn register(&self, name: &str) {
        let mut s = self.lock();
        s.threads.entry(name.to_owned()).or_insert(RunState::Runnable);
        self.cv.notify_all();
    }

    /// Releases every parked thread; the run continues uninstrumented
    /// contention-free (shims fall back to plain polling). Idempotent.
    pub fn shutdown(&self) {
        let mut s = self.lock();
        s.shutdown = true;
        self.cv.notify_all();
    }

    /// Like [`TokenSched::shutdown`] but marks the stop as forced
    /// (watchdog / step cap): [`TokenSched::was_forced`] reports it.
    pub fn force_shutdown(&self) {
        let mut s = self.lock();
        if !s.shutdown {
            s.shutdown = true;
            self.forced.store(true, Ordering::SeqCst);
        }
        self.cv.notify_all();
    }

    /// Did a watchdog or the step cap force the shutdown?
    pub fn was_forced(&self) -> bool {
        self.forced.load(Ordering::SeqCst)
    }

    /// Turns granted over the whole run.
    pub fn steps(&self) -> u64 {
        self.lock().steps
    }

    /// Common wait loop: parks until this thread holds the token (or
    /// shutdown), counting the grant as one step.
    fn await_token(&self, mut s: std::sync::MutexGuard<'_, State>, me: &str) {
        loop {
            if s.shutdown {
                return;
            }
            if s.active.as_deref() == Some(me) {
                s.steps += 1;
                if s.steps >= self.max_steps {
                    s.shutdown = true;
                    self.forced.store(true, Ordering::SeqCst);
                    self.cv.notify_all();
                }
                return;
            }
            s = match self.cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

impl Gate for TokenSched {
    fn reach(&self, thread: &str) {
        let mut s = self.lock();
        if s.shutdown {
            return;
        }
        s.threads.insert(thread.to_owned(), RunState::Runnable);
        if s.active.is_none() {
            // Start gate. Which thread registers last is OS-timing noise,
            // so the opening reach must not consume a policy decision —
            // otherwise the rng stream (and with it the whole schedule)
            // would depend on registration order. The opener just picks
            // the first holder and parks like everyone else.
            if s.threads.len() >= self.expected {
                s.pick(None);
            }
            self.cv.notify_all();
            self.await_token(s, thread);
            return;
        }
        self.cv.notify_all();
        if s.active.as_deref() == Some(thread) && s.should_preempt() {
            s.pick(Some(thread));
            self.cv.notify_all();
        }
        self.await_token(s, thread);
    }

    fn yield_blocked(&self, thread: &str) {
        let mut s = self.lock();
        if s.shutdown {
            return;
        }
        s.threads.insert(thread.to_owned(), RunState::Blocked);
        if s.active.as_deref() == Some(thread) {
            s.pick(Some(thread));
        }
        self.cv.notify_all();
        self.await_token(s, thread);
    }
}

impl std::fmt::Debug for TokenSched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenSched")
            .field("expected", &self.expected)
            .field("max_steps", &self.max_steps)
            .finish_non_exhaustive()
    }
}
