//! Replication-aware trace certification over `esr-obs` EventRing
//! dumps.
//!
//! A live esrd site records its protocol decisions as structured
//! events (the `Effect::Trace` grammar of `esr_runtime::ctrl`); this
//! module replays a set of per-site dumps against the per-method
//! visibility and convergence specs, turning any chaos or proc-cluster
//! run into a *checked* execution. The spec style follows Enea et
//! al.'s replication-aware linearizability — per-replica causal
//! histories checked against the method's visibility contract — and
//! Perrin et al.'s update consistency for the cross-site agreement
//! checks.
//!
//! ## Event grammar (component → message)
//!
//! * `apply` / `replay` — `et N applied[ v=T][ seq=S]` or
//!   `et N held/duplicate`
//! * `control` — `complete et N` | `vtnc -> time T` | `commit et N` |
//!   `abort et N`
//! * `ckpt` — `cut covered=N` | `restore covered=N view=V` |
//!   `install seq=N covered=K` | `truncate through=C retired=R`
//! * anything else (`boot`, `peer`) is ignored.
//!
//! A dump covers one *incarnation*: the ring dies with the process,
//! and a recovered site re-records its journal replays (`replay`
//! events) and snapshot-replayed control traffic at boot, so the
//! causal prefix a check needs is present after restarts too.
//!
//! ## Checks
//!
//! Per site (causal, in ring-sequence order):
//! 1. **apply-before-complete** (COMMU/RITU): an ET's completion
//!    notice implies every site applied it — so *this* site must have
//!    an apply for it earlier in its own history.
//! 2. **no double apply** (all): an ET never effectively applies twice
//!    in one incarnation (idempotency-guard violations).
//! 3. **VTNC monotonicity** (RITU-MV): certified horizons never
//!    regress.
//! 4. **VTNC visibility** (RITU-MV): when the horizon reaches `T`,
//!    this site has already installed a version `>= T` (the
//!    coordinator only certifies what every site reported installed).
//! 5. **ORDUP order**: sequenced applies appear in increasing global
//!    sequence order.
//! 6. **decision conflict** (COMPE): no ET both commits and aborts at
//!    one site.
//! 7. **no duplicate complete**: an ET's completion is announced at
//!    most once per incarnation — a coordinator handoff must absorb
//!    prior completions as evidence, not replay them as fresh events.
//! 8. **ckpt-seq-monotone**: installed snapshot sequence numbers
//!    strictly increase within an incarnation (a regressing chain
//!    would let truncation outrun its own cover).
//! 9. **ckpt-covered-monotone**: the covered frontier never regresses
//!    — among cuts (seeded by the restore base) and among installs,
//!    judged separately per kind, because installs happen on an async
//!    writer thread and may legitimately lag a newer cut's event.
//! 10. **ckpt-restore-first**: a restore event, if present, precedes
//!     every cut/install of its incarnation (you cannot cut a
//!     checkpoint before the state it summarizes exists).
//! 11. **ckpt-truncate-monotone**: journal retirement cuts never move
//!     backwards.
//!
//! Cross-site (only when every dump is loss-free, `dropped == 0`):
//! 12. **applied-set agreement** (non-COMPE): quiesced sites applied
//!     the same ET set.
//! 13. **completed-set agreement** (COMMU): quiesced sites saw the
//!     same completion notices.
//! 14. **outcome agreement** (COMPE): an ET's commit/abort outcome is
//!     consistent across sites.
//!
//! Ring overflow (`dropped > 0`) downgrades gracefully: history-prefix
//! checks that would false-positive on an evicted prefix are skipped
//! for that site, and cross-site checks are skipped entirely. An
//! incarnation that booted from a snapshot (`ckpt restore ...`)
//! downgrades the same way: the checkpoint compresses the covered
//! prefix out of the trace, so per-ET apply evidence for it is
//! legitimately absent.

use std::collections::{BTreeMap, BTreeSet};

use esr_runtime::state::RtMethod;

/// One site's EventRing dump, in ring-sequence (per-site causal)
/// order.
#[derive(Debug, Clone)]
pub struct SiteTrace {
    /// The dumping site.
    pub site: u64,
    /// Events evicted by the bounded ring before the dump.
    pub dropped: u64,
    /// `(component, message)` pairs in seq order.
    pub events: Vec<(String, String)>,
}

impl SiteTrace {
    /// Builds a trace from a raw `Frame::TraceOk` dump
    /// (`(seq, micros, component, message)` tuples), restoring seq
    /// order.
    pub fn from_dump(site: u64, dropped: u64, mut dump: Vec<(u64, u64, String, String)>) -> Self {
        dump.sort_by_key(|e| e.0);
        Self {
            site,
            dropped,
            events: dump.into_iter().map(|(_, _, c, m)| (c, m)).collect(),
        }
    }
}

/// One certification violation.
#[derive(Debug, Clone)]
pub struct CertFinding {
    /// The offending site (`None` for cross-site checks).
    pub site: Option<u64>,
    /// Which spec clause fired.
    pub check: &'static str,
    /// What the certifier saw.
    pub detail: String,
}

/// A parsed protocol event.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    Applied { et: u64, v: Option<u64>, seq: Option<u64> },
    Held,
    Complete { et: u64 },
    Vtnc { t: u64 },
    Decision { et: u64, commit: bool },
    CkptCut { covered: u64 },
    CkptRestore { covered: u64 },
    CkptInstall { seq: u64, covered: u64 },
    CkptTruncate { through: u64 },
}

/// Pulls `key=<u64>` out of a whitespace-separated tail.
fn field(tail: &str, key: &str) -> Option<u64> {
    tail.split_whitespace()
        .find_map(|tok| tok.strip_prefix(key)?.parse().ok())
}

fn parse_event(component: &str, message: &str) -> Option<Ev> {
    match component {
        "apply" | "replay" => {
            let rest = message.strip_prefix("et ")?;
            let (et_str, tail) = rest.split_once(' ')?;
            let et = et_str.parse().ok()?;
            if tail.starts_with("held/duplicate") {
                return Some(Ev::Held);
            }
            if !tail.starts_with("applied") {
                return None;
            }
            let mut v = None;
            let mut seq = None;
            for tok in tail.split_whitespace().skip(1) {
                if let Some(t) = tok.strip_prefix("v=") {
                    v = t.parse().ok();
                } else if let Some(s) = tok.strip_prefix("seq=") {
                    seq = s.parse().ok();
                }
            }
            Some(Ev::Applied { et, v, seq })
        }
        "control" => {
            if let Some(rest) = message.strip_prefix("complete et ") {
                return Some(Ev::Complete { et: rest.parse().ok()? });
            }
            if let Some(rest) = message.strip_prefix("vtnc -> time ") {
                return Some(Ev::Vtnc { t: rest.parse().ok()? });
            }
            if let Some(rest) = message.strip_prefix("commit et ") {
                return Some(Ev::Decision { et: rest.parse().ok()?, commit: true });
            }
            if let Some(rest) = message.strip_prefix("abort et ") {
                return Some(Ev::Decision { et: rest.parse().ok()?, commit: false });
            }
            None
        }
        "ckpt" => {
            if let Some(tail) = message.strip_prefix("cut ") {
                return Some(Ev::CkptCut { covered: field(tail, "covered=")? });
            }
            if let Some(tail) = message.strip_prefix("restore ") {
                return Some(Ev::CkptRestore { covered: field(tail, "covered=")? });
            }
            if let Some(tail) = message.strip_prefix("install ") {
                return Some(Ev::CkptInstall {
                    seq: field(tail, "seq=")?,
                    covered: field(tail, "covered=")?,
                });
            }
            if let Some(tail) = message.strip_prefix("truncate ") {
                return Some(Ev::CkptTruncate { through: field(tail, "through=")? });
            }
            // `catch-up: ...` and failure notes carry no invariant.
            None
        }
        _ => None,
    }
}

/// Per-site digest accumulated while replaying a trace.
#[derive(Debug, Default)]
struct SiteDigest {
    applied: BTreeSet<u64>,
    completed: BTreeSet<u64>,
    committed: BTreeSet<u64>,
    aborted: BTreeSet<u64>,
}

/// Certifies a set of quiescent-site dumps against `method`'s spec.
/// Returns every violation found (empty = certified).
pub fn certify(method: RtMethod, traces: &[SiteTrace]) -> Vec<CertFinding> {
    let mut findings = Vec::new();
    let mut digests: Vec<SiteDigest> = Vec::new();

    let mut any_restore = false;
    for trace in traces {
        let mut d = SiteDigest::default();
        // A snapshot-restored incarnation has no per-ET events for the
        // covered prefix — same downgrade as an overflowed ring.
        let restored = trace
            .events
            .iter()
            .any(|(c, m)| matches!(parse_event(c, m), Some(Ev::CkptRestore { .. })));
        any_restore |= restored;
        let lossless = trace.dropped == 0 && !restored;
        let mut max_installed: Option<u64> = None;
        let mut vtnc_last: Option<u64> = None;
        let mut last_seq: Option<u64> = None;
        let mut ckpt_seq_last: Option<u64> = None;
        let mut ckpt_covered_last: Option<u64> = None;
        let mut ckpt_install_covered_last: Option<u64> = None;
        let mut ckpt_truncate_last: Option<u64> = None;
        let mut ckpt_chain_started = false;
        for (component, message) in &trace.events {
            let Some(ev) = parse_event(component, message) else {
                continue;
            };
            match ev {
                Ev::Applied { et, v, seq } => {
                    if !d.applied.insert(et) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "no-double-apply",
                            detail: format!("et {et} effectively applied twice"),
                        });
                    }
                    if let Some(t) = v {
                        max_installed = Some(max_installed.map_or(t, |m| m.max(t)));
                    }
                    if let Some(s) = seq {
                        if last_seq.is_some_and(|p| p >= s) {
                            findings.push(CertFinding {
                                site: Some(trace.site),
                                check: "ordup-order",
                                detail: format!(
                                    "seq {s} applied after {:?}",
                                    last_seq
                                ),
                            });
                        }
                        last_seq = Some(s);
                    }
                }
                Ev::Held => {}
                Ev::Complete { et } => {
                    if !d.completed.insert(et) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "no-duplicate-complete",
                            detail: format!(
                                "et {et} completed twice in one incarnation"
                            ),
                        });
                    }
                    if lossless && !d.applied.contains(&et) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "apply-before-complete",
                            detail: format!(
                                "completion of et {et} arrived before its apply"
                            ),
                        });
                    }
                }
                Ev::Vtnc { t } => {
                    if vtnc_last.is_some_and(|p| p > t) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "vtnc-monotone",
                            detail: format!("horizon regressed {vtnc_last:?} -> {t}"),
                        });
                    }
                    vtnc_last = Some(t);
                    if lossless && max_installed.is_none_or(|m| m < t) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "vtnc-visibility",
                            detail: format!(
                                "horizon {t} certified but max installed version is {max_installed:?}"
                            ),
                        });
                    }
                }
                Ev::Decision { et, commit } => {
                    if commit {
                        d.committed.insert(et);
                    } else {
                        d.aborted.insert(et);
                    }
                }
                Ev::CkptCut { covered } => {
                    ckpt_chain_started = true;
                    if ckpt_covered_last.is_some_and(|p| p > covered) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "ckpt-covered-monotone",
                            detail: format!(
                                "cut covered frontier regressed {ckpt_covered_last:?} -> {covered}"
                            ),
                        });
                    }
                    ckpt_covered_last = Some(covered);
                }
                // Installs happen on the async writer thread, so an
                // install event may lag cuts taken after its own —
                // covered monotonicity is judged install-against-install
                // (seeded by the restore base), never against the cut
                // chain.
                Ev::CkptInstall { seq, covered } => {
                    ckpt_chain_started = true;
                    if ckpt_install_covered_last.is_some_and(|p| p > covered) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "ckpt-covered-monotone",
                            detail: format!(
                                "install covered frontier regressed \
                                 {ckpt_install_covered_last:?} -> {covered}"
                            ),
                        });
                    }
                    ckpt_install_covered_last = Some(covered);
                    if ckpt_seq_last.is_some_and(|p| p >= seq) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "ckpt-seq-monotone",
                            detail: format!(
                                "snapshot seq {seq} installed after {ckpt_seq_last:?}"
                            ),
                        });
                    }
                    ckpt_seq_last = Some(seq);
                }
                Ev::CkptRestore { covered } => {
                    if ckpt_chain_started {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "ckpt-restore-first",
                            detail: format!(
                                "restore (covered {covered}) after a cut/install \
                                 of the same incarnation"
                            ),
                        });
                    }
                    if ckpt_covered_last.is_some_and(|p| p > covered) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "ckpt-covered-monotone",
                            detail: format!(
                                "restore covered {covered} below {ckpt_covered_last:?}"
                            ),
                        });
                    }
                    ckpt_covered_last = Some(covered);
                    ckpt_install_covered_last = Some(covered);
                }
                Ev::CkptTruncate { through } => {
                    if ckpt_truncate_last.is_some_and(|p| p > through) {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "ckpt-truncate-monotone",
                            detail: format!(
                                "truncation cut moved backwards {ckpt_truncate_last:?} -> {through}"
                            ),
                        });
                    }
                    ckpt_truncate_last = Some(through);
                }
            }
        }
        if let Some(et) = d.committed.intersection(&d.aborted).next() {
            findings.push(CertFinding {
                site: Some(trace.site),
                check: "decision-conflict",
                detail: format!("et {et} both committed and aborted"),
            });
        }
        digests.push(d);
    }

    // Cross-site agreement only when no ring lost history (by
    // overflow or by snapshot compression).
    if traces.iter().all(|t| t.dropped == 0) && !any_restore && digests.len() > 1 {
        if method != RtMethod::Compe {
            agree(
                &mut findings,
                traces,
                &digests,
                "applied-set-agreement",
                |d| &d.applied,
            );
        }
        if method == RtMethod::Commu {
            agree(
                &mut findings,
                traces,
                &digests,
                "completed-set-agreement",
                |d| &d.completed,
            );
        }
        if method == RtMethod::Compe {
            let mut outcome: BTreeMap<u64, bool> = BTreeMap::new();
            for (trace, d) in traces.iter().zip(&digests) {
                for (&et, commit) in d
                    .committed
                    .iter()
                    .map(|et| (et, true))
                    .chain(d.aborted.iter().map(|et| (et, false)))
                {
                    if *outcome.entry(et).or_insert(commit) != commit {
                        findings.push(CertFinding {
                            site: Some(trace.site),
                            check: "outcome-agreement",
                            detail: format!("et {et} outcome disagrees across sites"),
                        });
                    }
                }
            }
        }
    }

    findings
}

fn agree(
    findings: &mut Vec<CertFinding>,
    traces: &[SiteTrace],
    digests: &[SiteDigest],
    check: &'static str,
    set: impl Fn(&SiteDigest) -> &BTreeSet<u64>,
) {
    let first = set(&digests[0]);
    for (trace, d) in traces.iter().zip(digests).skip(1) {
        if set(d) != first {
            findings.push(CertFinding {
                site: Some(trace.site),
                check,
                detail: format!(
                    "site {} set {:?} != site {} set {:?}",
                    trace.site,
                    set(d),
                    traces[0].site,
                    first
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(c: &str, m: &str) -> (String, String) {
        (c.to_string(), m.to_string())
    }

    fn site(site: u64, events: Vec<(String, String)>) -> SiteTrace {
        SiteTrace { site, dropped: 0, events }
    }

    #[test]
    fn clean_commu_run_certifies() {
        let traces = vec![
            site(0, vec![ev("apply", "et 1 applied"), ev("control", "complete et 1")]),
            site(1, vec![ev("apply", "et 1 applied"), ev("control", "complete et 1")]),
        ];
        assert!(certify(RtMethod::Commu, &traces).is_empty());
    }

    #[test]
    fn complete_before_apply_is_flagged() {
        let traces = vec![site(
            1,
            vec![ev("control", "complete et 1"), ev("apply", "et 1 applied")],
        )];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "apply-before-complete"));
    }

    #[test]
    fn duplicate_complete_in_one_incarnation_is_flagged() {
        let traces = vec![site(
            0,
            vec![
                ev("apply", "et 1 applied"),
                ev("control", "complete et 1"),
                ev("control", "complete et 1"),
            ],
        )];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "no-duplicate-complete"));
    }

    #[test]
    fn view_and_client_events_are_ignored() {
        let traces = vec![site(
            0,
            vec![
                ev("view", "install view 1, coordinator site 1"),
                ev("client", "duplicate submit client 7 seq 1 -> et 1"),
                ev("apply", "et 1 applied"),
                ev("control", "complete et 1"),
            ],
        )];
        assert!(certify(RtMethod::Commu, &traces).is_empty());
    }

    #[test]
    fn vtnc_ahead_of_install_is_flagged() {
        let traces = vec![site(
            2,
            vec![ev("control", "vtnc -> time 2"), ev("apply", "et 1 applied v=2")],
        )];
        let f = certify(RtMethod::RituMv, &traces);
        assert!(f.iter().any(|f| f.check == "vtnc-visibility"));
    }

    #[test]
    fn vtnc_regression_is_flagged() {
        let traces = vec![site(
            2,
            vec![
                ev("apply", "et 1 applied v=2"),
                ev("control", "vtnc -> time 2"),
                ev("control", "vtnc -> time 1"),
            ],
        )];
        let f = certify(RtMethod::RituMv, &traces);
        assert!(f.iter().any(|f| f.check == "vtnc-monotone"));
    }

    #[test]
    fn replayed_applies_satisfy_prefix_checks() {
        // A restarted incarnation: journal replay events precede the
        // snapshot-replayed completion.
        let traces = vec![site(
            1,
            vec![ev("replay", "et 1 applied"), ev("control", "complete et 1")],
        )];
        assert!(certify(RtMethod::Commu, &traces).is_empty());
    }

    #[test]
    fn applied_set_divergence_is_flagged() {
        let traces = vec![
            site(0, vec![ev("apply", "et 1 applied")]),
            site(1, vec![ev("apply", "et 1 applied"), ev("apply", "et 2 applied")]),
        ];
        let f = certify(RtMethod::Ritu, &traces);
        assert!(f.iter().any(|f| f.check == "applied-set-agreement"));
    }

    #[test]
    fn double_apply_is_flagged() {
        let traces = vec![site(1, vec![ev("apply", "et 1 applied"), ev("apply", "et 1 applied")])];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "no-double-apply"));
    }

    #[test]
    fn ordup_misorder_is_flagged() {
        let traces = vec![site(
            1,
            vec![
                ev("apply", "et 2 applied seq=1"),
                ev("apply", "et 1 applied seq=0"),
            ],
        )];
        let f = certify(RtMethod::Ordup, &traces);
        assert!(f.iter().any(|f| f.check == "ordup-order"));
    }

    #[test]
    fn conflicting_outcomes_are_flagged() {
        let traces = vec![
            site(0, vec![ev("control", "commit et 1")]),
            site(1, vec![ev("control", "abort et 1")]),
        ];
        let f = certify(RtMethod::Compe, &traces);
        assert!(f.iter().any(|f| f.check == "outcome-agreement"));
    }

    #[test]
    fn clean_checkpoint_chain_certifies() {
        let traces = vec![site(
            0,
            vec![
                ev("ckpt", "restore covered=2 view=0"),
                ev("replay", "et 3 applied"),
                ev("apply", "et 4 applied"),
                ev("ckpt", "cut covered=4"),
                ev("ckpt", "install seq=3 covered=4"),
                ev("ckpt", "truncate through=1 retired=2"),
                ev("ckpt", "cut covered=4"),
                ev("ckpt", "install seq=4 covered=4"),
                ev("ckpt", "truncate through=3 retired=2"),
                ev("ckpt", "catch-up: installed snapshot seq 4 (covered 4) from site 1"),
            ],
        )];
        assert!(certify(RtMethod::Commu, &traces).is_empty());
    }

    #[test]
    fn ckpt_seq_regression_is_flagged() {
        let traces = vec![site(
            0,
            vec![
                ev("ckpt", "install seq=5 covered=10"),
                ev("ckpt", "install seq=5 covered=11"),
            ],
        )];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "ckpt-seq-monotone"));
    }

    #[test]
    fn ckpt_covered_regression_is_flagged() {
        let traces = vec![site(
            0,
            vec![ev("ckpt", "cut covered=9"), ev("ckpt", "cut covered=4")],
        )];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "ckpt-covered-monotone"));
    }

    #[test]
    fn async_install_lagging_a_newer_cut_is_clean() {
        // The writer thread installs seq 1 (covered 4) after the byte
        // policy has already traced a newer cut — the legitimate
        // interleaving of an asynchronous install under load.
        let traces = vec![site(
            0,
            vec![
                ev("ckpt", "cut covered=4"),
                ev("ckpt", "cut covered=9"),
                ev("ckpt", "install seq=1 covered=4"),
                ev("ckpt", "install seq=2 covered=9"),
            ],
        )];
        assert!(certify(RtMethod::Commu, &traces).is_empty());
    }

    #[test]
    fn install_covered_regression_is_flagged() {
        let traces = vec![site(
            0,
            vec![
                ev("ckpt", "install seq=1 covered=9"),
                ev("ckpt", "install seq=2 covered=4"),
            ],
        )];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "ckpt-covered-monotone"));
    }

    #[test]
    fn restore_after_cut_is_flagged() {
        let traces = vec![site(
            0,
            vec![
                ev("ckpt", "cut covered=3"),
                ev("ckpt", "restore covered=3 view=0"),
            ],
        )];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "ckpt-restore-first"));
    }

    #[test]
    fn backwards_truncation_is_flagged() {
        let traces = vec![site(
            0,
            vec![
                ev("ckpt", "truncate through=8 retired=9"),
                ev("ckpt", "truncate through=2 retired=0"),
            ],
        )];
        let f = certify(RtMethod::Commu, &traces);
        assert!(f.iter().any(|f| f.check == "ckpt-truncate-monotone"));
    }

    #[test]
    fn restored_incarnations_downgrade_like_overflowed_rings() {
        // Site 0 booted from a snapshot covering et 1: no apply event
        // for it exists, yet its completion (and cross-site applied
        // sets) must not be flagged.
        let traces = vec![
            site(
                0,
                vec![
                    ev("ckpt", "restore covered=1 view=0"),
                    ev("control", "complete et 1"),
                ],
            ),
            site(1, vec![ev("apply", "et 1 applied"), ev("control", "complete et 1")]),
        ];
        assert!(certify(RtMethod::Commu, &traces).is_empty());
    }

    #[test]
    fn dropped_rings_downgrade_prefix_checks() {
        let traces = vec![SiteTrace {
            site: 1,
            dropped: 7,
            events: vec![ev("control", "complete et 1")],
        }];
        assert!(certify(RtMethod::Commu, &traces).is_empty());
    }
}
