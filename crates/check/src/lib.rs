//! `esr-check`: concurrency analysis for the ESR thread runtime.
//!
//! Three layers, composed by the `esr-check` binary:
//!
//! 1. **Trace detectors** ([`race`]) — FastTrack-style happens-before
//!    data-race detection and lock-order-inversion analysis over the
//!    synchronization traces the instrumented shims record.
//! 2. **Schedule explorer** ([`sched`], [`explore`]) — a loom-style
//!    cooperative token scheduler installed as the probe gate, driving
//!    the real [`esr_runtime::Cluster`] through hundreds of distinct,
//!    seed-deterministic interleavings.
//! 3. **ESR safety oracles** ([`oracles`]) — per-run judgments of the
//!    method-specific ESR guarantees (ORDUP order conformance, COMMU
//!    commutativity closure, RITU monotonicity, VTNC horizon safety,
//!    COMPE resolution, epsilon accounting, replica convergence).
//!
//! [`canary`] holds the seeded-defect self-tests that gate the clean
//! sweep: the checker first proves it *can* catch each defect class,
//! then certifies the unmutated runtime clean across the requested
//! schedule budget.
//!
//! The probe hub is process-global, so explorations must not overlap;
//! the binary runs them sequentially and tests serialize on a mutex.

pub mod canary;
pub mod explore;
pub mod oracles;
pub mod race;
pub mod sched;
