//! `esr-check`: concurrency analysis for the ESR thread runtime.
//!
//! Three layers, composed by the `esr-check` binary:
//!
//! 1. **Trace detectors** ([`race`]) — FastTrack-style happens-before
//!    data-race detection and lock-order-inversion analysis over the
//!    synchronization traces the instrumented shims record.
//! 2. **Schedule explorer** ([`sched`], [`explore`]) — a loom-style
//!    cooperative token scheduler installed as the probe gate, driving
//!    the real [`esr_runtime::Cluster`] through hundreds of distinct,
//!    seed-deterministic interleavings.
//! 3. **ESR safety oracles** ([`oracles`]) — per-run judgments of the
//!    method-specific ESR guarantees (ORDUP order conformance, COMMU
//!    commutativity closure, RITU monotonicity, VTNC horizon safety,
//!    COMPE resolution, epsilon accounting, replica convergence).
//!
//! [`canary`] holds the seeded-defect self-tests that gate the clean
//! sweep: the checker first proves it *can* catch each defect class,
//! then certifies the unmutated runtime clean across the requested
//! schedule budget.
//!
//! Two further layers target the control plane (`esr-check --model`):
//!
//! 4. **Exhaustive model checker** ([`model`]) — a stateless
//!    sleep-set DFS over every delivery/crash/duplication interleaving
//!    of a 3-site world running the pure [`esr_runtime::ctrl`] step
//!    functions, with frame-aware fault injection and per-method
//!    terminal oracles plus recovery idempotence. Its own seeded
//!    canaries live in [`model::canary`].
//! 5. **Trace certifier** ([`certify`]) — replication-aware
//!    certification of `esr-obs` event-ring dumps from live `esrd`
//!    sites: per-site apply/complete/VTNC/decision causality and
//!    cross-site agreement, degrading gracefully on ring overflow.
//!
//! The probe hub is process-global, so explorations must not overlap;
//! the binary runs them sequentially and tests serialize on a mutex.

pub mod canary;
pub mod certify;
pub mod explore;
pub mod model;
pub mod oracles;
pub mod race;
pub mod sched;
