//! Trace analysis: FastTrack-style happens-before race detection and
//! lock-order-inversion detection over a recorded [`SyncEvent`] trace.
//!
//! The detector replays the trace in recorded order, maintaining one
//! vector clock per thread and joining clocks across every
//! synchronization edge the shims report:
//!
//! * **channels** — each send captures the sender's clock keyed by
//!   `(channel, message number)`; the matching receive joins it. The
//!   message number travels *with* the message, so the pairing is exact
//!   under any interleaving.
//! * **locks** — each release joins the holder's clock into the lock's
//!   clock; each acquire joins the lock's clock into the acquirer's.
//! * **atomics** — every access joins through the cell's clock in trace
//!   order (SeqCst in the shims, so trace order is modification order).
//!
//! Annotated memory accesses ([`SyncOp::MemRead`] / [`SyncOp::MemWrite`])
//! are then checked FastTrack-style: a write must happen-after every
//! prior access of the location; a read must happen-after the last
//! write. Unordered pairs are data races.
//!
//! Lock-order inversion is a separate pass over the same trace: every
//! acquisition made while other locks are held contributes `held → new`
//! edges tagged with the *other* locks held at that moment (the guard
//! set); two opposite edges from different threads whose guard sets are
//! disjoint (no common gate lock) are a potential deadlock.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use esr_sim::probe::{SyncEvent, SyncOp};
use esr_sim::vclock::{Epoch, VectorClock};

/// The kind of defect a [`Finding`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// Two unordered accesses to one location, at least one a write.
    DataRace,
    /// Opposite lock-acquisition orders with no common gate lock.
    LockInversion,
}

/// One defect found in a trace.
#[derive(Debug, Clone)]
pub struct Finding {
    /// What class of defect this is.
    pub kind: FindingKind,
    /// Human-readable description with thread names and trace positions.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.detail)
    }
}

/// Last-access bookkeeping for one annotated memory location.
#[derive(Debug, Default)]
struct LocState {
    /// Epoch of the last write (thread index + clock), if any.
    last_write: Option<(usize, Epoch, u64)>,
    /// Per-thread clock of reads since the last write, with the trace
    /// seq of each thread's latest read.
    reads: BTreeMap<usize, (u64, u64)>,
}

/// FastTrack-style happens-before race detector.
#[derive(Debug, Default)]
pub struct RaceDetector {
    /// Thread key → dense index, in first-appearance order.
    threads: BTreeMap<Arc<str>, usize>,
    names: Vec<Arc<str>>,
    clocks: Vec<VectorClock>,
    /// (channel, message) → sender clock snapshot.
    in_flight: BTreeMap<(u64, u64), VectorClock>,
    /// Lock id → accumulated release clock.
    lock_clocks: BTreeMap<u64, VectorClock>,
    /// Atomic cell id → accumulated access clock.
    cell_clocks: BTreeMap<u64, VectorClock>,
    /// Annotated memory locations.
    locs: BTreeMap<u64, LocState>,
    findings: Vec<Finding>,
    /// Locations already reported (one finding per location).
    reported: BTreeSet<u64>,
}

impl RaceDetector {
    /// A fresh detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Analyzes a full trace and returns the findings.
    pub fn analyze(events: &[SyncEvent]) -> Vec<Finding> {
        let mut d = Self::new();
        for e in events {
            d.step(e);
        }
        d.findings
    }

    fn thread_index(&mut self, key: &Arc<str>) -> usize {
        if let Some(&i) = self.threads.get(key) {
            return i;
        }
        let i = self.names.len();
        self.threads.insert(Arc::clone(key), i);
        self.names.push(Arc::clone(key));
        let mut vc = VectorClock::new();
        // Each thread is born at clock 1 in its own component.
        vc.set(i, 1);
        self.clocks.push(vc);
        i
    }

    /// Advances the thread's own component — called after operations
    /// that publish its clock (sends, releases, atomic writes), so later
    /// operations are distinguishable from the published prefix.
    fn bump(&mut self, t: usize) {
        let c = self.clocks[t].get(t);
        self.clocks[t].set(t, c + 1);
    }

    fn step(&mut self, e: &SyncEvent) {
        let t = self.thread_index(&e.thread);
        match e.op {
            SyncOp::ChanSend { chan, msg } => {
                self.in_flight
                    .insert((chan, msg), self.clocks[t].clone());
                self.bump(t);
            }
            SyncOp::ChanRecv { chan, msg } => {
                // msg == 0: the message predates recording; no edge.
                if let Some(vc) = self.in_flight.remove(&(chan, msg)) {
                    self.clocks[t].join(&vc);
                }
            }
            SyncOp::LockAcquire { lock } | SyncOp::RwReadAcquire { lock } => {
                if let Some(vc) = self.lock_clocks.get(&lock) {
                    self.clocks[t].join(vc);
                }
            }
            SyncOp::LockRelease { lock } | SyncOp::RwReadRelease { lock } => {
                let vc = self.clocks[t].clone();
                self.lock_clocks
                    .entry(lock)
                    .and_modify(|l| l.join(&vc))
                    .or_insert(vc);
                self.bump(t);
            }
            SyncOp::AtomicLoad { cell } | SyncOp::AtomicStore { cell } | SyncOp::AtomicRmw { cell } => {
                // SeqCst accesses synchronize in trace order: join both
                // ways through the cell's clock.
                if let Some(vc) = self.cell_clocks.get(&cell) {
                    self.clocks[t].join(vc);
                }
                let vc = self.clocks[t].clone();
                self.cell_clocks
                    .entry(cell)
                    .and_modify(|c| c.join(&vc))
                    .or_insert(vc);
                self.bump(t);
            }
            SyncOp::MemRead { loc } => self.check_read(t, loc, e.seq),
            SyncOp::MemWrite { loc } => self.check_write(t, loc, e.seq),
        }
    }

    fn report(&mut self, loc: u64, detail: String) {
        if self.reported.insert(loc) {
            self.findings.push(Finding {
                kind: FindingKind::DataRace,
                detail,
            });
        }
    }

    fn check_read(&mut self, t: usize, loc: u64, seq: u64) {
        let clock = self.clocks[t].clone();
        let my_clock = clock.get(t);
        let state = self.locs.entry(loc).or_default();
        let mut race: Option<String> = None;
        if let Some((wt, we, wseq)) = &state.last_write {
            if *wt != t && !we.before(&clock) {
                race = Some(format!(
                    "location {loc}: write by '{}' (trace #{wseq}) unordered with \
                     read by '{}' (trace #{seq})",
                    self.names[*wt], self.names[t],
                ));
            }
        }
        state.reads.insert(t, (my_clock, seq));
        if let Some(detail) = race {
            self.report(loc, detail);
        }
    }

    fn check_write(&mut self, t: usize, loc: u64, seq: u64) {
        let clock = self.clocks[t].clone();
        let state = self.locs.entry(loc).or_default();
        let mut race: Option<String> = None;
        if let Some((wt, we, wseq)) = &state.last_write {
            if *wt != t && !we.before(&clock) {
                race = Some(format!(
                    "location {loc}: write by '{}' (trace #{wseq}) unordered with \
                     write by '{}' (trace #{seq})",
                    self.names[*wt], self.names[t],
                ));
            }
        }
        if race.is_none() {
            for (&rt, &(rc, rseq)) in &state.reads {
                if rt != t && !clock.covers(rt, rc) {
                    race = Some(format!(
                        "location {loc}: read by '{}' (trace #{rseq}) unordered with \
                         write by '{}' (trace #{seq})",
                        self.names[rt], self.names[t],
                    ));
                    break;
                }
            }
        }
        state.last_write = Some((
            t,
            Epoch {
                thread: t,
                clock: clock.get(t),
            },
            seq,
        ));
        state.reads.clear();
        if let Some(detail) = race {
            self.report(loc, detail);
        }
    }
}

/// Witnesses for one ordered lock pair: the guard set held at the
/// acquisition, and the acquiring thread.
type EdgeWitnesses = Vec<(BTreeSet<u64>, Arc<str>)>;

/// Lock-order-inversion detector: builds the acquired-while-holding
/// graph and reports opposite-order pairs with disjoint guard sets.
#[derive(Debug, Default)]
pub struct LockOrderDetector {
    /// Per-thread stack of currently held lock ids.
    held: BTreeMap<Arc<str>, Vec<u64>>,
    /// (first, then) → witnesses.
    edges: BTreeMap<(u64, u64), EdgeWitnesses>,
}

impl LockOrderDetector {
    /// Analyzes a full trace and returns inversion findings.
    pub fn analyze(events: &[SyncEvent]) -> Vec<Finding> {
        let mut d = Self::default();
        for e in events {
            d.step(e);
        }
        d.findings()
    }

    fn step(&mut self, e: &SyncEvent) {
        match e.op {
            SyncOp::LockAcquire { lock } | SyncOp::RwReadAcquire { lock } => {
                let held = self.held.entry(Arc::clone(&e.thread)).or_default();
                let snapshot: Vec<u64> = held.clone();
                for &h in &snapshot {
                    if h == lock {
                        continue; // re-entrant patterns: no self edge
                    }
                    let guards: BTreeSet<u64> = snapshot
                        .iter()
                        .copied()
                        .filter(|&g| g != h && g != lock)
                        .collect();
                    self.edges
                        .entry((h, lock))
                        .or_default()
                        .push((guards, Arc::clone(&e.thread)));
                }
                held.push(lock);
            }
            SyncOp::LockRelease { lock } | SyncOp::RwReadRelease { lock } => {
                if let Some(held) = self.held.get_mut(&e.thread) {
                    if let Some(pos) = held.iter().rposition(|&l| l == lock) {
                        held.remove(pos);
                    }
                }
            }
            _ => {}
        }
    }

    fn findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
        for (&(a, b), ab_wit) in &self.edges {
            if a >= b {
                continue; // canonical orientation; the (b, a) entry pairs with us
            }
            let Some(ba_wit) = self.edges.get(&(b, a)) else {
                continue;
            };
            let inversion = ab_wit.iter().any(|(g1, t1)| {
                ba_wit
                    .iter()
                    .any(|(g2, t2)| t1 != t2 && g1.intersection(g2).next().is_none())
            });
            if inversion && seen.insert((a, b)) {
                out.push(Finding {
                    kind: FindingKind::LockInversion,
                    detail: format!(
                        "locks {a} and {b} acquired in opposite orders by \
                         different threads with no common gate lock"
                    ),
                });
            }
        }
        out
    }
}
