//! Terminal-state safety oracles for the control-plane model.
//!
//! Judged at every terminal state the explorer reaches (all work
//! submitted and decided, every durable queue drained), twice: once
//! as-is, and once more after crash-recovering every site — including
//! the acting coordinator — and draining again, the
//! recovery-idempotence pass. The convergence oracle follows Perrin et
//! al.'s update consistency: once delivery quiesces, every replica
//! must equal the reference produced by one sequential application of
//! the workload.
//!
//! Since views made the coordinator role movable, three more oracles
//! guard the handoff itself: at most one site may hold the coordinator
//! role for its installed view (`split-brain`), a site's durable view
//! register may only advance (`view-monotonicity`), and no incarnation
//! may announce the same completion twice (`duplicate-complete` —
//! completions crossing a handoff must be absorbed as evidence, not
//! replayed as fresh events).

use std::collections::BTreeSet;

use esr_core::ids::{ObjectId, SiteId};
use esr_core::value::Value;
use esr_replica::compe::CompeEvent;
use esr_runtime::state::SiteState;
use std::collections::BTreeMap;

use super::{ModelCfg, World};

/// One oracle violation.
#[derive(Debug, Clone)]
pub struct ModelFinding {
    /// Which oracle fired.
    pub oracle: &'static str,
    /// What it saw.
    pub detail: String,
}

fn finding(oracle: &'static str, detail: String) -> ModelFinding {
    ModelFinding { oracle, detail }
}

/// The reference snapshot: one sequential, fault-free application of
/// the workload (and decisions) to a single fresh site.
pub fn reference_snapshot(cfg: &ModelCfg) -> BTreeMap<ObjectId, Value> {
    let mut s = SiteState::new(cfg.method, SiteId(1_000));
    for m in &cfg.workload {
        s.deliver(m.clone());
    }
    for &(et, commit) in &cfg.decisions {
        if commit {
            s.commit(et);
        } else {
            s.abort(et);
        }
    }
    s.snapshot()
}

/// Full terminal judgment: safety oracles, then the
/// recovery-idempotence pass: crash + recover every site — the acting
/// coordinator included — drain, re-judge. The pass is staggered
/// (coordinator first, then the followers) because completion counts
/// and decisions are volatile by design: the rebooted coordinator
/// relearns them from follower re-announcements, and the rebooted
/// followers from the refreshed coordinator's snapshot. Crashing every
/// site at once would genuinely erase the decisions.
pub fn check_terminal(cfg: &ModelCfg, world: &mut World<'_>) -> Vec<ModelFinding> {
    let mut findings = check_safety(cfg, world, "");
    let coordinator = world
        .nodes
        .iter()
        .position(|n| n.core.coord.is_some())
        .unwrap_or(0);
    world.crash_recover(coordinator);
    if !world.drain() {
        findings.push(finding(
            "recovery-drain",
            "cluster failed to quiesce after coordinator recovery".into(),
        ));
        return findings;
    }
    for site in 0..cfg.sites {
        if site != coordinator {
            world.crash_recover(site);
        }
    }
    if !world.drain() {
        findings.push(finding(
            "recovery-drain",
            "cluster failed to quiesce after terminal-state recovery".into(),
        ));
        return findings;
    }
    findings.extend(check_safety(cfg, world, "post-recovery "));
    findings
}

/// The safety oracles at a quiescent state.
pub fn check_safety(cfg: &ModelCfg, world: &World<'_>, phase: &str) -> Vec<ModelFinding> {
    let mut findings = Vec::new();
    let reference = reference_snapshot(cfg);

    for (i, node) in world.nodes.iter().enumerate() {
        // Perrin-style update consistency: quiesced replicas converge
        // to the sequential reference.
        let snap = node.core.state.snapshot();
        if snap != reference {
            findings.push(finding(
                "convergence",
                format!("{phase}site {i} snapshot {snap:?} != reference {reference:?}"),
            ));
        }
        // Nothing may be left held back, locked, or at risk once the
        // control plane has quiesced.
        if !node.core.state.settled() {
            findings.push(finding(
                "settled",
                format!("{phase}site {i} not settled at quiescence"),
            ));
        }
        let audit = node.core.state.audit();
        // ORDUP: application order must follow the global sequence.
        let seqs: Vec<u64> = audit.ordup_order.iter().map(|(_, s)| s.0).collect();
        if seqs.windows(2).any(|w| w[0] >= w[1]) {
            findings.push(finding(
                "ordup-order",
                format!("{phase}site {i} applied out of sequence: {seqs:?}"),
            ));
        }
        // RITU-MV: no VTNC advance may ever exceed the locally
        // installed contiguous prefix.
        if audit.vtnc_violations > 0 {
            findings.push(finding(
                "vtnc-safety",
                format!(
                    "{phase}site {i} saw {} VTNC horizon violations",
                    audit.vtnc_violations
                ),
            ));
        }
        // COMPE: one outcome per ET at each site.
        let committed: BTreeSet<_> = audit
            .compe_events
            .iter()
            .filter(|(_, e)| matches!(e, CompeEvent::Committed))
            .map(|(et, _)| *et)
            .collect();
        let compensated: BTreeSet<_> = audit
            .compe_events
            .iter()
            .filter(|(_, e)| matches!(e, CompeEvent::Compensated))
            .map(|(et, _)| *et)
            .collect();
        if let Some(et) = committed.intersection(&compensated).next() {
            findings.push(finding(
                "compe-conflict",
                format!("{phase}site {i} both committed and compensated {et}"),
            ));
        }
        // View changes: the coordinator role belongs to exactly the
        // site its installed view elects — a node holding a CoordCore
        // anywhere else (or an elected node without one) is the
        // split-brain double-coordinator failure mode.
        let elected = esr_runtime::ctrl::coordinator_of(node.core.view, cfg.sites);
        let holds_role = node.core.coord.is_some();
        if holds_role != (elected == SiteId(i as u64)) {
            findings.push(finding(
                "split-brain",
                format!(
                    "{phase}site {i} at view {} {} the coordinator role, \
                     but that view elects site {}",
                    node.core.view,
                    if holds_role { "holds" } else { "lacks" },
                    elected.raw()
                ),
            ));
        }
        // The durable view register only advances; a regression would
        // let a demoted coordinator resurrect an old incarnation.
        if node.view_history.windows(2).any(|w| w[0] >= w[1]) {
            findings.push(finding(
                "view-monotonicity",
                format!(
                    "{phase}site {i} recorded a non-increasing view sequence {:?}",
                    node.view_history
                ),
            ));
        }
        // A completion is announced at most once per incarnation: a
        // handoff must absorb prior completions as evidence, never
        // replay them as fresh `complete` events.
        let mut announced = BTreeSet::new();
        for (component, message) in &node.trace {
            if *component == "control"
                && message.starts_with("complete et ")
                && !announced.insert(message.clone())
            {
                findings.push(finding(
                    "duplicate-complete",
                    format!("{phase}site {i} traced \"{message}\" twice in one incarnation"),
                ));
            }
        }
    }

    // RITU-MV liveness floor: with every install report delivered, the
    // coordinator must have certified the full dense prefix.
    if cfg.method == esr_runtime::state::RtMethod::RituMv {
        let expected = cfg
            .workload
            .iter()
            .filter_map(esr_runtime::ctrl::max_version)
            .map(|v| v.time)
            .max();
        // The role may have moved: read the horizon from the acting
        // coordinator — the highest-view node holding a CoordCore (a
        // split-brain pair is flagged by its own oracle above).
        let horizon = world
            .nodes
            .iter()
            .filter(|n| n.core.coord.is_some())
            .max_by_key(|n| n.core.view)
            .and_then(|n| n.core.coord.as_ref().and_then(|c| c.vtnc_horizon()))
            .map(|v| v.time);
        if horizon < expected {
            findings.push(finding(
                "vtnc-horizon",
                format!("{phase}coordinator horizon {horizon:?} < expected {expected:?}"),
            ));
        }
    }

    findings
}
