//! `esr-model`: exhaustive model checking of the esrd control plane.
//!
//! The model executes the *same* pure state machine the daemon runs —
//! [`esr_runtime::ctrl::NodeCore`] — against in-memory durable queues,
//! and explores every distinguishable interleaving of message
//! delivery, client activity, duplication, and crash/recovery for a
//! small bounded configuration (3 sites, a handful of updates).
//!
//! ## Fidelity map (model ↔ esrd)
//!
//! | world piece            | real counterpart                          |
//! |------------------------|-------------------------------------------|
//! | `queues[(i,j)]`        | durable FileQueue link i→j (FIFO, at-least-once) |
//! | `ModelNode::journal`   | the site's on-disk [`ApplyJournal`]        |
//! | `Tx::Deliver`          | peer envelope dispatch + batched ack       |
//! | `Tx::Dup`              | an ack-timeout retransmit (head redelivered, order preserved) |
//! | `CrashPoint::*`        | `kill -9` between effect executions        |
//! | crash + recover        | `Daemon::start` boot: epoch bump, journal replay, re-announce, Hello |
//!
//! Crash injection follows the configuration's [`CrashPolicy`]: the
//! standard sweeps probe every durable boundary but never kill a site
//! holding the coordinator role, while the view-change sweeps
//! (`max_suspects > 0`, which enables [`Tx::Suspect`] — the model's
//! time-free stand-in for `SUSPECT_AFTER` missed heartbeats) probe
//! `AfterAck` volatile loss at the non-role-holders, keeping the
//! election × delivery interleaving space exhaustively checkable.
//! Either way, *every* explored terminal state additionally gets a
//! staggered full-cluster crash/recover from the recovery-idempotence
//! oracle — coordinator first, then the followers — so coordinator
//! amnesia is always covered. The durable per-site view
//! (`Effect::RecordView`) is modelled as a register that survives
//! crashes, exactly like `site-<i>.view`.
//!
//! A crash is atomic crash+recover. That is sound for safety because
//! the links are sender-side durable: a site that stays down is
//! indistinguishable from one whose inbound deliveries are delayed —
//! and delivery delay is already explored by the scheduler.
//!
//! [`ApplyJournal`]: esr_runtime::recovery::ApplyJournal

pub mod canary;
pub mod explore;
pub mod oracles;

use std::collections::VecDeque;

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_replica::mset::MSet;
use esr_replica::wire::Frame;
use esr_runtime::ctrl::{CtrlCanary, Effect, NodeCore, NodeEvent};
use esr_runtime::state::{RtMethod, SiteState};

/// Where the explorer may spend its crash budget. The standard sweeps
/// probe every durable boundary but never kill the (fixed) view-0
/// coordinator; the view-change sweeps let the coordinator role move,
/// so the policy is expressed against the *role*, not site 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPolicy {
    /// May a site currently holding the coordinator role crash
    /// in-schedule? (Independent of this, *every* explored terminal
    /// state gets a staggered full-cluster crash/recover pass from the
    /// recovery-idempotence oracle, coordinator included — so
    /// coordinator amnesia is always covered there.)
    pub role_holders: bool,
    /// Probe only `CrashPoint::AfterAck` (pure volatile loss), skipping
    /// the `Durable(k)` journal-boundary truncations. The
    /// crash-enriched view-change sweeps set this: durable-boundary
    /// crashes are method-plane behaviour already exhausted by the
    /// standard sweeps, while the failover-specific hazards —
    /// completion evidence lost with a consumed frame, elections
    /// interleaving with amnesia — live at `AfterAck`.
    pub afterack_only: bool,
}

/// A bounded model configuration: the cluster shape, the client
/// workload, and the fault budgets the explorer may spend.
#[derive(Debug, Clone)]
pub struct ModelCfg {
    /// Replica control method in force.
    pub method: RtMethod,
    /// Number of sites (site 0 coordinates view 0).
    pub sites: usize,
    /// Update MSets, submitted in index order at `mset.origin`.
    pub workload: Vec<MSet>,
    /// COMPE decisions `(et, commit)`, issued in index order at the
    /// ET's origin site once its submit has executed.
    pub decisions: Vec<(EtId, bool)>,
    /// Max crash/recover injections per execution.
    pub max_crashes: usize,
    /// Max duplicate deliveries per execution.
    pub max_dups: usize,
    /// Max coordinator-suspicion injections per execution (each one
    /// feeds `SuspectCoordinator` to a site, kicking off a view
    /// change).
    pub max_suspects: usize,
    /// Restrict suspicion to one site. `None` lets any non-coordinator
    /// fire, which squares the election interleaving space; the
    /// view-change sweeps pin the suspicion to a *non-candidate*
    /// follower (site 2 for the 0→1 change) so every explored election
    /// also covers the candidate learning of the change via
    /// `StartViewChange` rather than initiating it. Which follower
    /// fires first is the one symmetry the sweep gives up; the
    /// client-table proptests and the process-level failover battery
    /// drive elections from arbitrary (and multiple) sites.
    pub suspect_site: Option<u64>,
    /// Where the crash budget may be spent.
    pub crash_policy: CrashPolicy,
    /// Seeded control-plane defect, `None` for the real protocol.
    pub canary: Option<CtrlCanary>,
}

impl ModelCfg {
    /// The standard bounded configuration for `method`: 3 sites, two
    /// updates from different origins (plus decisions for COMPE), one
    /// crash and one duplication in the budget.
    pub fn standard(method: RtMethod) -> Self {
        let workload = standard_workload(method);
        let decisions = match method {
            RtMethod::Compe => vec![(EtId(1), true), (EtId(2), false)],
            _ => Vec::new(),
        };
        Self {
            method,
            sites: 3,
            workload,
            decisions,
            max_crashes: 1,
            max_dups: 1,
            max_suspects: 0,
            suspect_site: None,
            crash_policy: CrashPolicy {
                role_holders: false,
                afterack_only: false,
            },
            canary: None,
        }
    }

    /// The bounded view-change configuration for `method`: 1 update
    /// racing one suspicion (pinned to follower site 2 — see
    /// [`ModelCfg::suspect_site`]), no duplication, no in-schedule
    /// crash — the failover sweep of DESIGN.md §15. Crashes are left
    /// out of the schedule because elections interleave so richly that
    /// adding them triples an already minutes-long search, while the
    /// crash coverage lives elsewhere: every terminal state gets the
    /// staggered full-cluster recovery pass, the durable-boundary
    /// truncations are the standard sweeps' territory, and the ignored
    /// full tier re-runs this config crash-enriched (one `AfterAck`
    /// volatile loss at a non-role-holder, per the preset
    /// `crash_policy`, which is inert until a caller restores a crash
    /// budget).
    pub fn view_change(method: RtMethod) -> Self {
        let mut cfg = Self::standard(method);
        cfg.workload.truncate(1);
        cfg.decisions.truncate(1);
        cfg.max_crashes = 0;
        cfg.max_dups = 0;
        cfg.max_suspects = 1;
        cfg.suspect_site = Some(2);
        cfg.crash_policy = CrashPolicy {
            role_holders: false,
            afterack_only: true,
        };
        cfg
    }
}

/// Two-update workload: origins 1 and 2, object 1, shaped per method
/// (sequenced for ORDUP, dense timestamped writes for RITU/RITU-MV,
/// exactly-compensatable increments for COMPE).
fn standard_workload(method: RtMethod) -> Vec<MSet> {
    let x = ObjectId(1);
    (0..2u64)
        .map(|i| {
            let et = EtId(i + 1);
            let origin = SiteId(i + 1);
            match method {
                RtMethod::Ordup => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(1 + i as i64))])
                        .sequenced(SeqNo(i))
                }
                RtMethod::Commu | RtMethod::Compe => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(1 + i as i64))])
                }
                RtMethod::Ritu | RtMethod::RituMv => {
                    let ts = VersionTs::new(i + 1, ClientId(origin.raw()));
                    MSet::new(
                        et,
                        origin,
                        vec![ObjectOp::new(
                            x,
                            Operation::TimestampedWrite(ts, esr_core::value::Value::Int(10 + i as i64)),
                        )],
                    )
                }
            }
        })
        .collect()
}

/// Where a crash interrupts a step's effect execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash after the first `k` durable effects (journal appends /
    /// link enqueues) executed, before the inbound envelope was acked:
    /// the frame stays queued and is redelivered to the next
    /// incarnation. `Durable(1)` on an update delivery is exactly the
    /// journal-write boundary (journal durable, `Applied` report lost).
    Durable(u8),
    /// Crash after the full step and its ack: the frame is consumed,
    /// and only volatile state (un-journalled protocol memory) is lost.
    AfterAck,
}

/// One schedulable transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tx {
    /// Submit workload item `idx` at its origin (client plane).
    Submit {
        /// Workload index.
        idx: u8,
        /// Crash injection, if any (`Durable` leaves the submit
        /// pending: an unacked client retries).
        crash: Option<CrashPoint>,
    },
    /// Issue decision `idx` at its ET's origin site (client plane).
    Decide {
        /// Decision index.
        idx: u8,
    },
    /// Deliver the head frame of queue `from → to`.
    Deliver {
        /// Sending site.
        from: u8,
        /// Receiving site.
        to: u8,
        /// Crash injection, if any.
        crash: Option<CrashPoint>,
    },
    /// Deliver a *copy* of the head of `from → to` without retiring it
    /// (an ack-timeout retransmit: the entry is delivered again later,
    /// FIFO order preserved).
    Dup {
        /// Sending site.
        from: u8,
        /// Receiving site.
        to: u8,
    },
    /// Site `site` suspects the current coordinator and starts a view
    /// change (the time-free stand-in for `SUSPECT_AFTER` missed
    /// heartbeat ticks).
    Suspect {
        /// The suspecting site.
        site: u8,
    },
}

impl Tx {
    /// The node whose state this transition mutates.
    pub fn target(&self, cfg: &ModelCfg) -> u8 {
        match *self {
            Tx::Submit { idx, .. } => cfg.workload[idx as usize].origin.raw() as u8,
            Tx::Decide { idx } => decision_site(cfg, idx),
            Tx::Deliver { to, .. } => to,
            Tx::Dup { to, .. } => to,
            Tx::Suspect { site } => site,
        }
    }

    fn is_crash(&self) -> bool {
        matches!(
            self,
            Tx::Submit { crash: Some(_), .. } | Tx::Deliver { crash: Some(_), .. }
        )
    }

    /// Two transitions are independent iff executing them in either
    /// order from the same state yields the same state and neither
    /// disables the other. Transitions targeting different nodes only
    /// touch disjoint state (their node + their node's outbound queue
    /// backs; a deliver additionally *pops* its own inbound head, which
    /// no differently-targeted transition can touch). Shared fault
    /// budgets make any two crash (or dup) transitions dependent, and
    /// the client's in-order counters serialize same-kind client
    /// transitions (only one is enabled at a time anyway).
    pub fn independent(&self, other: &Tx, cfg: &ModelCfg) -> bool {
        if self.is_crash() && other.is_crash() {
            return false;
        }
        if matches!(self, Tx::Dup { .. }) && matches!(other, Tx::Dup { .. }) {
            return false;
        }
        // Suspicions share a budget too.
        if matches!(self, Tx::Suspect { .. }) && matches!(other, Tx::Suspect { .. }) {
            return false;
        }
        self.target(cfg) != other.target(cfg)
    }
}

/// The site a decision lands on (the decided ET's origin — the client
/// talks to its own site; a non-coordinator forwards to site 0).
fn decision_site(cfg: &ModelCfg, idx: u8) -> u8 {
    let (et, _) = cfg.decisions[idx as usize];
    cfg.workload
        .iter()
        .find(|m| m.et == et)
        .map(|m| m.origin.raw() as u8)
        .unwrap_or(0)
}

/// One modelled site: the pure core plus its durable journal and boot
/// epoch.
pub struct ModelNode {
    /// The shared-with-the-daemon protocol state machine.
    pub core: NodeCore,
    /// The durable write-ahead journal (survives crashes).
    pub journal: Vec<MSet>,
    /// Boot count, bumped on every recovery.
    pub epoch: u64,
    /// The durably recorded view — the model's `site-<i>.view` file:
    /// written by `Effect::RecordView`, survives crashes, fed back to
    /// `NodeCore::recover`.
    pub durable_view: u64,
    /// Views this incarnation booted into / installed, in order (the
    /// view-monotonicity oracle's evidence; reset on crash like the
    /// trace).
    pub view_history: Vec<u64>,
    /// This incarnation's trace events (cleared on crash, like the
    /// real per-process EventRing) — certifier food.
    pub trace: Vec<(&'static str, String)>,
    /// The newest checkpoint cut emitted by `Effect::Checkpoint`
    /// (durable: survives crashes, like the daemon's installed
    /// snapshot container). Properties compare restore-from-it +
    /// journal-suffix against a full journal replay.
    pub ckpt: Option<Box<esr_runtime::CkptPayload>>,
}

/// The full modelled cluster state.
pub struct World<'a> {
    cfg: &'a ModelCfg,
    /// Per-site state.
    pub nodes: Vec<ModelNode>,
    /// Durable FIFO links, `queues[from][to]`.
    pub queues: Vec<Vec<VecDeque<Frame>>>,
    next_submit: usize,
    next_decision: usize,
    crashes_left: usize,
    dups_left: usize,
    suspects_left: usize,
}

fn fresh_state(method: RtMethod, site: SiteId) -> SiteState {
    let mut s = SiteState::new(method, site);
    s.enable_audit();
    s
}

impl<'a> World<'a> {
    /// The initial world: fresh cores, empty journals, and each site's
    /// boot Hello already queued to the coordinator (links send their
    /// handshake on first connect; Hellos to non-coordinators carry no
    /// protocol effect and are elided).
    pub fn new(cfg: &'a ModelCfg) -> Self {
        let nodes = (0..cfg.sites)
            .map(|i| {
                let site = SiteId(i as u64);
                ModelNode {
                    core: NodeCore::fresh(
                        fresh_state(cfg.method, site),
                        cfg.method,
                        site,
                        cfg.sites,
                        cfg.canary,
                    ),
                    journal: Vec::new(),
                    epoch: 1,
                    durable_view: 0,
                    view_history: vec![0],
                    trace: Vec::new(),
                    ckpt: None,
                }
            })
            .collect();
        let mut queues: Vec<Vec<VecDeque<Frame>>> = (0..cfg.sites)
            .map(|_| (0..cfg.sites).map(|_| VecDeque::new()).collect())
            .collect();
        for (i, from) in queues.iter_mut().enumerate().skip(1) {
            from[0].push_back(Frame::Hello {
                site: SiteId(i as u64),
                epoch: 1,
            });
        }
        Self {
            cfg,
            nodes,
            queues,
            next_submit: 0,
            next_decision: 0,
            crashes_left: cfg.max_crashes,
            dups_left: cfg.max_dups,
            suspects_left: cfg.max_suspects,
        }
    }

    /// All work delivered and the client done — the state the oracles
    /// judge. (Leftover fault budget does not keep a state live.)
    pub fn is_terminal(&self) -> bool {
        self.next_submit == self.cfg.workload.len()
            && self.next_decision == self.cfg.decisions.len()
            && self.queues.iter().flatten().all(|q| q.is_empty())
    }

    /// The enabled transitions, in a deterministic order. Crash
    /// variants appear only while the crash budget lasts and only for
    /// non-coordinator targets, and are *frame-aware*: a step with a
    /// journal write (submit, update delivery) is crash-probed at
    /// every durable boundary — `Durable(0)` (nothing durable),
    /// `Durable(1)` (first durable effect only; for an update delivery
    /// exactly the journal-write boundary), and `AfterAck` — while a
    /// control-frame delivery, whose step makes no durable writes, is
    /// probed only at `AfterAck` (pure volatile loss; crashing
    /// *before* such a step is indistinguishable from delaying it,
    /// which the scheduler already explores). Duplication is likewise
    /// probed only where redelivery reaches protocol logic: updates
    /// (journal dedup) and decisions (coordinator/peer dedup);
    /// completion-plane frames are re-sent wholesale in every
    /// `ControlSnapshot`, which recovery schedules already exercise.
    pub fn enabled(&self) -> Vec<Tx> {
        let mut txs = Vec::new();
        let policy = self.cfg.crash_policy;
        let durable_crash_points: &[CrashPoint] = if policy.afterack_only {
            &[CrashPoint::AfterAck]
        } else {
            &[
                CrashPoint::Durable(0),
                CrashPoint::Durable(1),
                CrashPoint::AfterAck,
            ]
        };
        // The policy is judged against the role *now*: after a view
        // change, the old coordinator becomes crashable and the new
        // one stops being so.
        let crashable =
            |site: u64| policy.role_holders || self.nodes[site as usize].core.coord.is_none();
        if self.next_submit < self.cfg.workload.len() {
            let idx = self.next_submit as u8;
            txs.push(Tx::Submit { idx, crash: None });
            let origin = self.cfg.workload[self.next_submit].origin.raw();
            if self.crashes_left > 0 && crashable(origin) {
                for &cp in durable_crash_points {
                    txs.push(Tx::Submit {
                        idx,
                        crash: Some(cp),
                    });
                }
            }
        }
        if self.next_decision < self.cfg.decisions.len() {
            let (et, _) = self.cfg.decisions[self.next_decision];
            let submitted = self.cfg.workload[..self.next_submit]
                .iter()
                .any(|m| m.et == et);
            if submitted {
                txs.push(Tx::Decide {
                    idx: self.next_decision as u8,
                });
            }
        }
        for from in 0..self.cfg.sites {
            for to in 0..self.cfg.sites {
                let Some(head) = self.queues[from][to].front() else {
                    continue;
                };
                let journals = matches!(head, Frame::MSet(_));
                let (f, t) = (from as u8, to as u8);
                txs.push(Tx::Deliver {
                    from: f,
                    to: t,
                    crash: None,
                });
                if self.crashes_left > 0 && crashable(to as u64) {
                    if journals {
                        for &cp in durable_crash_points {
                            txs.push(Tx::Deliver {
                                from: f,
                                to: t,
                                crash: Some(cp),
                            });
                        }
                    } else {
                        txs.push(Tx::Deliver {
                            from: f,
                            to: t,
                            crash: Some(CrashPoint::AfterAck),
                        });
                    }
                }
                if self.dups_left > 0 && (journals || matches!(head, Frame::Decision { .. })) {
                    txs.push(Tx::Dup { from: f, to: t });
                }
            }
        }
        if self.suspects_left > 0 {
            for (i, node) in self.nodes.iter().enumerate() {
                // A site holding the coordinator role has nothing to
                // suspect; every other (configured) site may fire.
                let pinned_elsewhere = self
                    .cfg
                    .suspect_site
                    .is_some_and(|s| s != i as u64);
                if node.core.coord.is_none() && !pinned_elsewhere {
                    txs.push(Tx::Suspect { site: i as u8 });
                }
            }
        }
        txs
    }

    /// Executes one transition.
    pub fn execute(&mut self, tx: Tx) {
        match tx {
            Tx::Submit { idx, crash } => {
                let mset = self.cfg.workload[idx as usize].clone();
                let site = mset.origin.raw() as usize;
                let effects = self.nodes[site].core.step(NodeEvent::ClientSubmit(mset));
                match crash {
                    None => {
                        self.apply_effects(site, effects, usize::MAX);
                        self.next_submit += 1;
                    }
                    Some(CrashPoint::AfterAck) => {
                        self.apply_effects(site, effects, usize::MAX);
                        self.next_submit += 1;
                        self.crash_recover(site);
                    }
                    Some(CrashPoint::Durable(k)) => {
                        // Unacked submit: the client will retry, so the
                        // workload item stays pending.
                        self.apply_effects(site, effects, k as usize);
                        self.crash_recover(site);
                    }
                }
            }
            Tx::Decide { idx } => {
                let (et, commit) = self.cfg.decisions[idx as usize];
                let site = decision_site(self.cfg, idx) as usize;
                let effects = self.nodes[site]
                    .core
                    .step(NodeEvent::ClientDecision { et, commit });
                self.apply_effects(site, effects, usize::MAX);
                self.next_decision += 1;
            }
            Tx::Deliver { from, to, crash } => {
                let (from, to) = (from as usize, to as usize);
                match crash {
                    None | Some(CrashPoint::AfterAck) => {
                        let Some(frame) = self.queues[from][to].pop_front() else {
                            return;
                        };
                        let effects = self.nodes[to].core.step(NodeEvent::PeerFrame(frame));
                        self.apply_effects(to, effects, usize::MAX);
                        if crash.is_some() {
                            self.crash_recover(to);
                        }
                    }
                    Some(CrashPoint::Durable(k)) => {
                        // Crash mid-step: no ack was written, so the
                        // frame stays queued and the sender retransmits
                        // it to the next incarnation.
                        let Some(frame) = self.queues[from][to].front().cloned() else {
                            return;
                        };
                        let effects = self.nodes[to].core.step(NodeEvent::PeerFrame(frame));
                        self.apply_effects(to, effects, k as usize);
                        self.crash_recover(to);
                    }
                }
            }
            Tx::Dup { from, to } => {
                let (from, to) = (from as usize, to as usize);
                let Some(frame) = self.queues[from][to].front().cloned() else {
                    return;
                };
                let effects = self.nodes[to].core.step(NodeEvent::PeerFrame(frame));
                self.apply_effects(to, effects, usize::MAX);
                self.dups_left -= 1;
            }
            Tx::Suspect { site } => {
                let site = site as usize;
                let effects = self.nodes[site].core.step(NodeEvent::SuspectCoordinator);
                self.apply_effects(site, effects, usize::MAX);
                self.suspects_left -= 1;
            }
        }
        if tx.is_crash() {
            self.crashes_left -= 1;
        }
    }

    /// Executes a step's effects in order, making at most
    /// `durable_budget` durable effects (journal appends + link
    /// enqueues) before stopping — the crash-truncation primitive.
    fn apply_effects(&mut self, site: usize, effects: Vec<Effect>, durable_budget: usize) {
        let mut durable = 0;
        for effect in effects {
            match effect {
                Effect::Journal(mset) => {
                    if durable == durable_budget {
                        return;
                    }
                    self.nodes[site].journal.push(mset);
                    durable += 1;
                }
                Effect::Send { to, frame } => {
                    if durable == durable_budget {
                        return;
                    }
                    self.queues[site][to.raw() as usize].push_back(frame);
                    durable += 1;
                }
                Effect::RecordView(view) => {
                    // The durable view register survives crashes, like
                    // the daemon's atomic `site-<i>.view` write. It is
                    // itself a durable effect for crash truncation —
                    // ordered before the sends of the same step.
                    if durable == durable_budget {
                        return;
                    }
                    self.nodes[site].durable_view = view;
                    self.nodes[site].view_history.push(view);
                    durable += 1;
                }
                Effect::Checkpoint(payload) => {
                    // The model keeps the newest cut in memory; the
                    // snapshot-equivalence property (restore + suffix
                    // ≡ full replay) is checked directly over it.
                    self.nodes[site].ckpt = Some(payload);
                }
                Effect::Trace { component, message } => {
                    self.nodes[site].trace.push((component, message));
                }
                // Tracing spans are non-durable observability records;
                // the model has no span ring and no clock to stamp
                // them with, so they are discarded — by contract they
                // carry no protocol meaning.
                Effect::Span(_) => {}
            }
        }
    }

    /// Atomic crash + recovery of `site`: volatile state is wiped, the
    /// boot epoch bumps, the journal replays through the daemon's own
    /// pure recovery path (re-announcing recovered applies to the
    /// durable view's coordinator), and the reconnecting link's Hello
    /// goes out — to the coordinator of the site's durable view, or to
    /// every peer when the recovering site *is* that coordinator (each
    /// follower answers a coordinator Hello by re-announcing its
    /// applies, rebuilding the lost in-memory evidence).
    pub fn crash_recover(&mut self, site: usize) {
        let cfg = self.cfg;
        let node = &mut self.nodes[site];
        node.epoch += 1;
        node.trace.clear();
        let view = node.durable_view;
        let (core, effects) = NodeCore::recover(
            fresh_state(cfg.method, SiteId(site as u64)),
            cfg.method,
            SiteId(site as u64),
            cfg.sites,
            cfg.canary,
            view,
            node.journal.clone(),
        );
        node.core = core;
        node.view_history = vec![view];
        let epoch = node.epoch;
        self.apply_effects(site, effects, usize::MAX);
        let coordinator = esr_runtime::ctrl::coordinator_of(view, cfg.sites);
        let hello = Frame::Hello {
            site: SiteId(site as u64),
            epoch,
        };
        if coordinator.raw() as usize == site {
            for to in 0..cfg.sites {
                if to != site {
                    self.queues[site][to].push_back(hello.clone());
                }
            }
        } else {
            self.queues[site][coordinator.raw() as usize].push_back(hello);
        }
    }

    /// The client-plane transitions in program order (all submits,
    /// then all decisions) — the fault-free reference schedule used
    /// with [`World::drain`] between steps.
    pub fn client_schedule(&self) -> Vec<Tx> {
        let submits = (0..self.cfg.workload.len()).map(|i| Tx::Submit {
            idx: i as u8,
            crash: None,
        });
        let decides = (0..self.cfg.decisions.len()).map(|i| Tx::Decide { idx: i as u8 });
        submits.chain(decides).collect()
    }

    /// Drains every queue with a deterministic round-robin delivery
    /// until quiescent (no faults injected). Used by the
    /// recovery-idempotence oracle pass. Returns `false` if the
    /// cluster failed to drain within a generous bound (a livelock —
    /// itself a finding).
    pub fn drain(&mut self) -> bool {
        for _ in 0..10_000 {
            let mut delivered = false;
            for from in 0..self.cfg.sites {
                for to in 0..self.cfg.sites {
                    if !self.queues[from][to].is_empty() {
                        self.execute(Tx::Deliver {
                            from: from as u8,
                            to: to as u8,
                            crash: None,
                        });
                        delivered = true;
                    }
                }
            }
            if !delivered {
                return true;
            }
        }
        false
    }
}
