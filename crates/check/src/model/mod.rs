//! `esr-model`: exhaustive model checking of the esrd control plane.
//!
//! The model executes the *same* pure state machine the daemon runs —
//! [`esr_runtime::ctrl::NodeCore`] — against in-memory durable queues,
//! and explores every distinguishable interleaving of message
//! delivery, client activity, duplication, and crash/recovery for a
//! small bounded configuration (3 sites, a handful of updates).
//!
//! ## Fidelity map (model ↔ esrd)
//!
//! | world piece            | real counterpart                          |
//! |------------------------|-------------------------------------------|
//! | `queues[(i,j)]`        | durable FileQueue link i→j (FIFO, at-least-once) |
//! | `ModelNode::journal`   | the site's on-disk [`ApplyJournal`]        |
//! | `Tx::Deliver`          | peer envelope dispatch + batched ack       |
//! | `Tx::Dup`              | an ack-timeout retransmit (head redelivered, order preserved) |
//! | `CrashPoint::*`        | `kill -9` between effect executions        |
//! | crash + recover        | `Daemon::start` boot: epoch bump, journal replay, re-announce, Hello |
//!
//! Crashes are restricted to non-coordinator sites: coordinator fault
//! tolerance is an explicit non-goal of this layer (DESIGN.md §11) and
//! the live harnesses never kill site 0.
//!
//! A crash is atomic crash+recover. That is sound for safety because
//! the links are sender-side durable: a site that stays down is
//! indistinguishable from one whose inbound deliveries are delayed —
//! and delivery delay is already explored by the scheduler.
//!
//! [`ApplyJournal`]: esr_runtime::recovery::ApplyJournal

pub mod canary;
pub mod explore;
pub mod oracles;

use std::collections::VecDeque;

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_replica::mset::MSet;
use esr_replica::wire::Frame;
use esr_runtime::ctrl::{CtrlCanary, Effect, NodeCore, NodeEvent};
use esr_runtime::state::{RtMethod, SiteState};

/// A bounded model configuration: the cluster shape, the client
/// workload, and the fault budgets the explorer may spend.
#[derive(Debug, Clone)]
pub struct ModelCfg {
    /// Replica control method in force.
    pub method: RtMethod,
    /// Number of sites (site 0 is the coordinator).
    pub sites: usize,
    /// Update MSets, submitted in index order at `mset.origin`.
    pub workload: Vec<MSet>,
    /// COMPE decisions `(et, commit)`, issued in index order at the
    /// ET's origin site once its submit has executed.
    pub decisions: Vec<(EtId, bool)>,
    /// Max crash/recover injections per execution.
    pub max_crashes: usize,
    /// Max duplicate deliveries per execution.
    pub max_dups: usize,
    /// Seeded control-plane defect, `None` for the real protocol.
    pub canary: Option<CtrlCanary>,
}

impl ModelCfg {
    /// The standard bounded configuration for `method`: 3 sites, two
    /// updates from different origins (plus decisions for COMPE), one
    /// crash and one duplication in the budget.
    pub fn standard(method: RtMethod) -> Self {
        let workload = standard_workload(method);
        let decisions = match method {
            RtMethod::Compe => vec![(EtId(1), true), (EtId(2), false)],
            _ => Vec::new(),
        };
        Self {
            method,
            sites: 3,
            workload,
            decisions,
            max_crashes: 1,
            max_dups: 1,
            canary: None,
        }
    }
}

/// Two-update workload: origins 1 and 2, object 1, shaped per method
/// (sequenced for ORDUP, dense timestamped writes for RITU/RITU-MV,
/// exactly-compensatable increments for COMPE).
fn standard_workload(method: RtMethod) -> Vec<MSet> {
    let x = ObjectId(1);
    (0..2u64)
        .map(|i| {
            let et = EtId(i + 1);
            let origin = SiteId(i + 1);
            match method {
                RtMethod::Ordup => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(1 + i as i64))])
                        .sequenced(SeqNo(i))
                }
                RtMethod::Commu | RtMethod::Compe => {
                    MSet::new(et, origin, vec![ObjectOp::new(x, Operation::Incr(1 + i as i64))])
                }
                RtMethod::Ritu | RtMethod::RituMv => {
                    let ts = VersionTs::new(i + 1, ClientId(origin.raw()));
                    MSet::new(
                        et,
                        origin,
                        vec![ObjectOp::new(
                            x,
                            Operation::TimestampedWrite(ts, esr_core::value::Value::Int(10 + i as i64)),
                        )],
                    )
                }
            }
        })
        .collect()
}

/// Where a crash interrupts a step's effect execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Crash after the first `k` durable effects (journal appends /
    /// link enqueues) executed, before the inbound envelope was acked:
    /// the frame stays queued and is redelivered to the next
    /// incarnation. `Durable(1)` on an update delivery is exactly the
    /// journal-write boundary (journal durable, `Applied` report lost).
    Durable(u8),
    /// Crash after the full step and its ack: the frame is consumed,
    /// and only volatile state (un-journalled protocol memory) is lost.
    AfterAck,
}

/// One schedulable transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tx {
    /// Submit workload item `idx` at its origin (client plane).
    Submit {
        /// Workload index.
        idx: u8,
        /// Crash injection, if any (`Durable` leaves the submit
        /// pending: an unacked client retries).
        crash: Option<CrashPoint>,
    },
    /// Issue decision `idx` at its ET's origin site (client plane).
    Decide {
        /// Decision index.
        idx: u8,
    },
    /// Deliver the head frame of queue `from → to`.
    Deliver {
        /// Sending site.
        from: u8,
        /// Receiving site.
        to: u8,
        /// Crash injection, if any.
        crash: Option<CrashPoint>,
    },
    /// Deliver a *copy* of the head of `from → to` without retiring it
    /// (an ack-timeout retransmit: the entry is delivered again later,
    /// FIFO order preserved).
    Dup {
        /// Sending site.
        from: u8,
        /// Receiving site.
        to: u8,
    },
}

impl Tx {
    /// The node whose state this transition mutates.
    pub fn target(&self, cfg: &ModelCfg) -> u8 {
        match *self {
            Tx::Submit { idx, .. } => cfg.workload[idx as usize].origin.raw() as u8,
            Tx::Decide { idx } => decision_site(cfg, idx),
            Tx::Deliver { to, .. } => to,
            Tx::Dup { to, .. } => to,
        }
    }

    fn is_crash(&self) -> bool {
        matches!(
            self,
            Tx::Submit { crash: Some(_), .. } | Tx::Deliver { crash: Some(_), .. }
        )
    }

    /// Two transitions are independent iff executing them in either
    /// order from the same state yields the same state and neither
    /// disables the other. Transitions targeting different nodes only
    /// touch disjoint state (their node + their node's outbound queue
    /// backs; a deliver additionally *pops* its own inbound head, which
    /// no differently-targeted transition can touch). Shared fault
    /// budgets make any two crash (or dup) transitions dependent, and
    /// the client's in-order counters serialize same-kind client
    /// transitions (only one is enabled at a time anyway).
    pub fn independent(&self, other: &Tx, cfg: &ModelCfg) -> bool {
        if self.is_crash() && other.is_crash() {
            return false;
        }
        if matches!(self, Tx::Dup { .. }) && matches!(other, Tx::Dup { .. }) {
            return false;
        }
        self.target(cfg) != other.target(cfg)
    }
}

/// The site a decision lands on (the decided ET's origin — the client
/// talks to its own site; a non-coordinator forwards to site 0).
fn decision_site(cfg: &ModelCfg, idx: u8) -> u8 {
    let (et, _) = cfg.decisions[idx as usize];
    cfg.workload
        .iter()
        .find(|m| m.et == et)
        .map(|m| m.origin.raw() as u8)
        .unwrap_or(0)
}

/// One modelled site: the pure core plus its durable journal and boot
/// epoch.
pub struct ModelNode {
    /// The shared-with-the-daemon protocol state machine.
    pub core: NodeCore,
    /// The durable write-ahead journal (survives crashes).
    pub journal: Vec<MSet>,
    /// Boot count, bumped on every recovery.
    pub epoch: u64,
    /// This incarnation's trace events (cleared on crash, like the
    /// real per-process EventRing) — certifier food.
    pub trace: Vec<(&'static str, String)>,
}

/// The full modelled cluster state.
pub struct World<'a> {
    cfg: &'a ModelCfg,
    /// Per-site state.
    pub nodes: Vec<ModelNode>,
    /// Durable FIFO links, `queues[from][to]`.
    pub queues: Vec<Vec<VecDeque<Frame>>>,
    next_submit: usize,
    next_decision: usize,
    crashes_left: usize,
    dups_left: usize,
}

fn fresh_state(method: RtMethod, site: SiteId) -> SiteState {
    let mut s = SiteState::new(method, site);
    s.enable_audit();
    s
}

impl<'a> World<'a> {
    /// The initial world: fresh cores, empty journals, and each site's
    /// boot Hello already queued to the coordinator (links send their
    /// handshake on first connect; Hellos to non-coordinators carry no
    /// protocol effect and are elided).
    pub fn new(cfg: &'a ModelCfg) -> Self {
        let nodes = (0..cfg.sites)
            .map(|i| {
                let site = SiteId(i as u64);
                ModelNode {
                    core: NodeCore::fresh(
                        fresh_state(cfg.method, site),
                        cfg.method,
                        site,
                        cfg.sites,
                        cfg.canary,
                    ),
                    journal: Vec::new(),
                    epoch: 1,
                    trace: Vec::new(),
                }
            })
            .collect();
        let mut queues: Vec<Vec<VecDeque<Frame>>> = (0..cfg.sites)
            .map(|_| (0..cfg.sites).map(|_| VecDeque::new()).collect())
            .collect();
        for (i, from) in queues.iter_mut().enumerate().skip(1) {
            from[0].push_back(Frame::Hello {
                site: SiteId(i as u64),
                epoch: 1,
            });
        }
        Self {
            cfg,
            nodes,
            queues,
            next_submit: 0,
            next_decision: 0,
            crashes_left: cfg.max_crashes,
            dups_left: cfg.max_dups,
        }
    }

    /// All work delivered and the client done — the state the oracles
    /// judge. (Leftover fault budget does not keep a state live.)
    pub fn is_terminal(&self) -> bool {
        self.next_submit == self.cfg.workload.len()
            && self.next_decision == self.cfg.decisions.len()
            && self.queues.iter().flatten().all(|q| q.is_empty())
    }

    /// The enabled transitions, in a deterministic order. Crash
    /// variants appear only while the crash budget lasts and only for
    /// non-coordinator targets, and are *frame-aware*: a step with a
    /// journal write (submit, update delivery) is crash-probed at
    /// every durable boundary — `Durable(0)` (nothing durable),
    /// `Durable(1)` (first durable effect only; for an update delivery
    /// exactly the journal-write boundary), and `AfterAck` — while a
    /// control-frame delivery, whose step makes no durable writes, is
    /// probed only at `AfterAck` (pure volatile loss; crashing
    /// *before* such a step is indistinguishable from delaying it,
    /// which the scheduler already explores). Duplication is likewise
    /// probed only where redelivery reaches protocol logic: updates
    /// (journal dedup) and decisions (coordinator/peer dedup);
    /// completion-plane frames are re-sent wholesale in every
    /// `ControlSnapshot`, which recovery schedules already exercise.
    pub fn enabled(&self) -> Vec<Tx> {
        let mut txs = Vec::new();
        let durable_crash_points = [
            CrashPoint::Durable(0),
            CrashPoint::Durable(1),
            CrashPoint::AfterAck,
        ];
        if self.next_submit < self.cfg.workload.len() {
            let idx = self.next_submit as u8;
            txs.push(Tx::Submit { idx, crash: None });
            let origin = self.cfg.workload[self.next_submit].origin.raw();
            if self.crashes_left > 0 && origin != 0 {
                for cp in durable_crash_points {
                    txs.push(Tx::Submit {
                        idx,
                        crash: Some(cp),
                    });
                }
            }
        }
        if self.next_decision < self.cfg.decisions.len() {
            let (et, _) = self.cfg.decisions[self.next_decision];
            let submitted = self.cfg.workload[..self.next_submit]
                .iter()
                .any(|m| m.et == et);
            if submitted {
                txs.push(Tx::Decide {
                    idx: self.next_decision as u8,
                });
            }
        }
        for from in 0..self.cfg.sites {
            for to in 0..self.cfg.sites {
                let Some(head) = self.queues[from][to].front() else {
                    continue;
                };
                let journals = matches!(head, Frame::MSet(_));
                let (f, t) = (from as u8, to as u8);
                txs.push(Tx::Deliver {
                    from: f,
                    to: t,
                    crash: None,
                });
                if self.crashes_left > 0 && to != 0 {
                    if journals {
                        for cp in durable_crash_points {
                            txs.push(Tx::Deliver {
                                from: f,
                                to: t,
                                crash: Some(cp),
                            });
                        }
                    } else {
                        txs.push(Tx::Deliver {
                            from: f,
                            to: t,
                            crash: Some(CrashPoint::AfterAck),
                        });
                    }
                }
                if self.dups_left > 0 && (journals || matches!(head, Frame::Decision { .. })) {
                    txs.push(Tx::Dup { from: f, to: t });
                }
            }
        }
        txs
    }

    /// Executes one transition.
    pub fn execute(&mut self, tx: Tx) {
        match tx {
            Tx::Submit { idx, crash } => {
                let mset = self.cfg.workload[idx as usize].clone();
                let site = mset.origin.raw() as usize;
                let effects = self.nodes[site].core.step(NodeEvent::ClientSubmit(mset));
                match crash {
                    None => {
                        self.apply_effects(site, effects, usize::MAX);
                        self.next_submit += 1;
                    }
                    Some(CrashPoint::AfterAck) => {
                        self.apply_effects(site, effects, usize::MAX);
                        self.next_submit += 1;
                        self.crash_recover(site);
                    }
                    Some(CrashPoint::Durable(k)) => {
                        // Unacked submit: the client will retry, so the
                        // workload item stays pending.
                        self.apply_effects(site, effects, k as usize);
                        self.crash_recover(site);
                    }
                }
            }
            Tx::Decide { idx } => {
                let (et, commit) = self.cfg.decisions[idx as usize];
                let site = decision_site(self.cfg, idx) as usize;
                let effects = self.nodes[site]
                    .core
                    .step(NodeEvent::ClientDecision { et, commit });
                self.apply_effects(site, effects, usize::MAX);
                self.next_decision += 1;
            }
            Tx::Deliver { from, to, crash } => {
                let (from, to) = (from as usize, to as usize);
                match crash {
                    None | Some(CrashPoint::AfterAck) => {
                        let Some(frame) = self.queues[from][to].pop_front() else {
                            return;
                        };
                        let effects = self.nodes[to].core.step(NodeEvent::PeerFrame(frame));
                        self.apply_effects(to, effects, usize::MAX);
                        if crash.is_some() {
                            self.crash_recover(to);
                        }
                    }
                    Some(CrashPoint::Durable(k)) => {
                        // Crash mid-step: no ack was written, so the
                        // frame stays queued and the sender retransmits
                        // it to the next incarnation.
                        let Some(frame) = self.queues[from][to].front().cloned() else {
                            return;
                        };
                        let effects = self.nodes[to].core.step(NodeEvent::PeerFrame(frame));
                        self.apply_effects(to, effects, k as usize);
                        self.crash_recover(to);
                    }
                }
            }
            Tx::Dup { from, to } => {
                let (from, to) = (from as usize, to as usize);
                let Some(frame) = self.queues[from][to].front().cloned() else {
                    return;
                };
                let effects = self.nodes[to].core.step(NodeEvent::PeerFrame(frame));
                self.apply_effects(to, effects, usize::MAX);
                self.dups_left -= 1;
            }
        }
        if tx.is_crash() {
            self.crashes_left -= 1;
        }
    }

    /// Executes a step's effects in order, making at most
    /// `durable_budget` durable effects (journal appends + link
    /// enqueues) before stopping — the crash-truncation primitive.
    fn apply_effects(&mut self, site: usize, effects: Vec<Effect>, durable_budget: usize) {
        let mut durable = 0;
        for effect in effects {
            match effect {
                Effect::Journal(mset) => {
                    if durable == durable_budget {
                        return;
                    }
                    self.nodes[site].journal.push(mset);
                    durable += 1;
                }
                Effect::Send { to, frame } => {
                    if durable == durable_budget {
                        return;
                    }
                    self.queues[site][to.raw() as usize].push_back(frame);
                    durable += 1;
                }
                Effect::Trace { component, message } => {
                    self.nodes[site].trace.push((component, message));
                }
            }
        }
    }

    /// Atomic crash + recovery of `site`: volatile state is wiped, the
    /// boot epoch bumps, the journal replays through the daemon's own
    /// pure recovery path (re-announcing recovered applies), and the
    /// reconnecting link's Hello goes out to the coordinator.
    pub fn crash_recover(&mut self, site: usize) {
        let cfg = self.cfg;
        let node = &mut self.nodes[site];
        node.epoch += 1;
        node.trace.clear();
        let (core, effects) = NodeCore::recover(
            fresh_state(cfg.method, SiteId(site as u64)),
            cfg.method,
            SiteId(site as u64),
            cfg.sites,
            cfg.canary,
            node.journal.clone(),
        );
        node.core = core;
        let epoch = node.epoch;
        self.apply_effects(site, effects, usize::MAX);
        if site != 0 {
            self.queues[site][0].push_back(Frame::Hello {
                site: SiteId(site as u64),
                epoch,
            });
        }
    }

    /// The client-plane transitions in program order (all submits,
    /// then all decisions) — the fault-free reference schedule used
    /// with [`World::drain`] between steps.
    pub fn client_schedule(&self) -> Vec<Tx> {
        let submits = (0..self.cfg.workload.len()).map(|i| Tx::Submit {
            idx: i as u8,
            crash: None,
        });
        let decides = (0..self.cfg.decisions.len()).map(|i| Tx::Decide { idx: i as u8 });
        submits.chain(decides).collect()
    }

    /// Drains every queue with a deterministic round-robin delivery
    /// until quiescent (no faults injected). Used by the
    /// recovery-idempotence oracle pass. Returns `false` if the
    /// cluster failed to drain within a generous bound (a livelock —
    /// itself a finding).
    pub fn drain(&mut self) -> bool {
        for _ in 0..10_000 {
            let mut delivered = false;
            for from in 0..self.cfg.sites {
                for to in 0..self.cfg.sites {
                    if !self.queues[from][to].is_empty() {
                        self.execute(Tx::Deliver {
                            from: from as u8,
                            to: to as u8,
                            crash: None,
                        });
                        delivered = true;
                    }
                }
            }
            if !delivered {
                return true;
            }
        }
        false
    }
}
