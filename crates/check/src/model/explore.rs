//! Stateless sleep-set DFS over the model's transition system.
//!
//! The explorer enumerates schedules by depth-first search with
//! *replay*: a search node is identified by its transition prefix, and
//! the world is rebuilt from scratch for each visit (no `Clone` on
//! protocol state, no hashing of states). Reduction uses classic
//! sleep sets (Godefroid): after exploring transition `t` at a node,
//! `t` is added to the sleep set of its later siblings and stays
//! asleep while independent transitions execute — pruning the
//! commuted reorderings of independent steps without ever pruning a
//! distinguishable trace. Two transitions are independent iff they
//! target different nodes and don't share a fault budget
//! ([`Tx::independent`]).
//!
//! Every terminal state (work done, queues drained) is judged by the
//! safety oracles plus the recovery-idempotence pass
//! ([`super::oracles::check_terminal`]); the first failure aborts the
//! sweep with the offending schedule.

use super::oracles::{self, ModelFinding};
use super::{ModelCfg, Tx, World};

/// Statistics from a completed (clean) sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Distinct terminal states judged.
    pub executions: u64,
    /// Search-tree nodes visited (each costs one prefix replay).
    pub states: u64,
    /// Nodes whose entire enabled set was asleep (pruned subtrees).
    pub sleep_pruned: u64,
    /// Longest schedule executed.
    pub max_depth: usize,
}

/// A failed execution: the schedule that produced it and what the
/// oracles saw.
#[derive(Debug, Clone)]
pub struct ModelFailure {
    /// The transition sequence from the initial state.
    pub schedule: Vec<Tx>,
    /// The oracle findings at (or after) the terminal state.
    pub findings: Vec<ModelFinding>,
}

/// Outcome of a sweep.
pub enum Sweep {
    /// Every explored execution satisfied every oracle.
    Clean(SweepStats),
    /// Some execution failed an oracle.
    Failed(Box<ModelFailure>),
    /// The state budget ran out before the sweep finished.
    BudgetExceeded(SweepStats),
}

/// Exhaustively explores `cfg` within a budget of `max_states` search
/// nodes.
pub fn explore(cfg: &ModelCfg, max_states: u64) -> Sweep {
    let mut stats = SweepStats::default();
    let mut prefix = Vec::new();
    match dfs(cfg, &mut prefix, &[], &mut stats, max_states) {
        Ok(true) => Sweep::Clean(stats),
        Ok(false) => Sweep::BudgetExceeded(stats),
        Err(failure) => Sweep::Failed(failure),
    }
}

/// Rebuilds the world at `prefix`.
fn replay<'a>(cfg: &'a ModelCfg, prefix: &[Tx]) -> World<'a> {
    let mut world = World::new(cfg);
    for tx in prefix {
        world.execute(*tx);
    }
    world
}

/// Returns `Ok(true)` if the subtree was fully explored, `Ok(false)`
/// on budget exhaustion, `Err` on the first oracle failure.
fn dfs(
    cfg: &ModelCfg,
    prefix: &mut Vec<Tx>,
    sleep: &[Tx],
    stats: &mut SweepStats,
    max_states: u64,
) -> Result<bool, Box<ModelFailure>> {
    if stats.states >= max_states {
        return Ok(false);
    }
    stats.states += 1;
    let mut world = replay(cfg, prefix);
    let enabled = world.enabled();
    if enabled.is_empty() {
        debug_assert!(world.is_terminal(), "stuck non-terminal state");
        stats.executions += 1;
        stats.max_depth = stats.max_depth.max(prefix.len());
        let findings = oracles::check_terminal(cfg, &mut world);
        if !findings.is_empty() {
            return Err(Box::new(ModelFailure {
                schedule: prefix.clone(),
                findings,
            }));
        }
        return Ok(true);
    }
    let explorable = enabled.iter().any(|t| !sleep.contains(t));
    if !explorable {
        stats.sleep_pruned += 1;
        return Ok(true);
    }
    let mut complete = true;
    let mut done: Vec<Tx> = Vec::new();
    for t in enabled {
        if sleep.contains(&t) {
            continue;
        }
        // Sleeping siblings stay asleep under `t` only while
        // independent of it.
        let child_sleep: Vec<Tx> = sleep
            .iter()
            .chain(done.iter())
            .filter(|s| s.independent(&t, cfg))
            .copied()
            .collect();
        prefix.push(t);
        let sub = dfs(cfg, prefix, &child_sleep, stats, max_states)?;
        prefix.pop();
        complete &= sub;
        if !complete {
            return Ok(false);
        }
        done.push(t);
    }
    Ok(complete)
}
