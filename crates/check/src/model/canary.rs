//! Seeded control-plane defects the explorer must catch before a
//! clean sweep counts (the PR-2 canary discipline applied to
//! `esr-model`).
//!
//! Each case arms one [`CtrlCanary`] variant inside the *same*
//! `NodeCore` the daemon runs, then asserts the explorer finds at
//! least one execution where an oracle fires. A canary that survives
//! the sweep means the checker has a blind spot — the sweep result is
//! then meaningless and the binary fails.

use esr_core::ids::EtId;
use esr_runtime::ctrl::CtrlCanary;
use esr_runtime::state::RtMethod;

use super::explore::{explore, ModelFailure, Sweep};
use super::ModelCfg;

/// One seeded-defect self-test.
pub struct CtrlCanaryCase {
    /// Stable name, printed by the binary.
    pub name: &'static str,
    /// The defect to arm.
    pub canary: CtrlCanary,
    /// The method whose control plane the defect corrupts.
    pub method: RtMethod,
    /// The oracle expected to fire (a failure via any oracle still
    /// counts as caught, but the expected one documents the defect's
    /// signature).
    pub oracle: &'static str,
    /// Does the defect only manifest across a coordinator handoff?
    /// When set, the hunt configuration grants one `Suspect` budget so
    /// the explorer can drive a view change.
    pub needs_view_change: bool,
}

/// The seven control-plane defect classes: the original five, plus
/// the two failover defects a view-change protocol can smuggle in —
/// a demoted coordinator that keeps acting, and a handoff that
/// swallows in-flight completions.
pub const CTRL_CANARIES: [CtrlCanaryCase; 7] = [
    CtrlCanaryCase {
        name: "lost-completion-after-crash",
        canary: CtrlCanary::LostCompletionOnRestart,
        method: RtMethod::Commu,
        oracle: "settled",
        needs_view_change: false,
    },
    CtrlCanaryCase {
        name: "double-applied-journal-suffix",
        canary: CtrlCanary::DoubleReplayedSuffix,
        method: RtMethod::Commu,
        oracle: "convergence",
        needs_view_change: false,
    },
    CtrlCanaryCase {
        name: "stale-vtnc-cert",
        canary: CtrlCanary::StaleVtncCert,
        method: RtMethod::RituMv,
        oracle: "vtnc-safety",
        needs_view_change: false,
    },
    CtrlCanaryCase {
        name: "non-idempotent-compe-decision-replay",
        canary: CtrlCanary::DecisionReplayReapplies,
        method: RtMethod::Compe,
        oracle: "convergence",
        needs_view_change: false,
    },
    CtrlCanaryCase {
        name: "reordered-hello-epoch",
        canary: CtrlCanary::HelloEpochPinned,
        method: RtMethod::Commu,
        oracle: "settled",
        needs_view_change: false,
    },
    CtrlCanaryCase {
        name: "split-brain-double-coordinator",
        canary: CtrlCanary::SplitBrainCoordinator,
        method: RtMethod::Commu,
        oracle: "split-brain",
        needs_view_change: true,
    },
    CtrlCanaryCase {
        name: "completion-lost-in-handoff",
        canary: CtrlCanary::HandoffDropsCompletions,
        method: RtMethod::Commu,
        oracle: "settled",
        needs_view_change: true,
    },
];

/// The (smaller) configuration a canary hunt runs on: one update is
/// enough to manifest every seeded defect, which keeps each hunt well
/// inside the exhaustive budget.
pub fn canary_cfg(case: &CtrlCanaryCase) -> ModelCfg {
    // The failover defects need an election to manifest, so their
    // hunts run on the exact view-change sweep configuration; the
    // others use the standard configuration cut to one update.
    let mut cfg = if case.needs_view_change {
        ModelCfg::view_change(case.method)
    } else {
        let mut cfg = ModelCfg::standard(case.method);
        cfg.workload.truncate(1);
        cfg.decisions.truncate(1);
        cfg
    };
    cfg.decisions.retain(|(et, _)| *et == EtId(1));
    cfg.canary = Some(case.canary);
    cfg
}

/// Hunts for the defect: explores the canary configuration and
/// returns the first failing execution, or `None` if the sweep came
/// back clean (the canary escaped — a checker bug).
pub fn expose(case: &CtrlCanaryCase, max_states: u64) -> Option<Box<ModelFailure>> {
    let cfg = canary_cfg(case);
    match explore(&cfg, max_states) {
        Sweep::Failed(failure) => Some(failure),
        Sweep::Clean(_) | Sweep::BudgetExceeded(_) => None,
    }
}
