//! ESR safety oracles and the workloads that generate their evidence.
//!
//! Each explored run executes a fixed per-method workload against a
//! [`Cluster::checked`] cluster, collects *evidence* (final snapshots,
//! per-site audit logs, per-query epsilon accounting), and the oracle
//! pass judges it:
//!
//! * **ORDUP** — every site applied the same ETs in strictly increasing,
//!   identical global sequence order (order conformance).
//! * **COMMU** — sites may apply in different orders, but the applied ET
//!   multisets and the final states must be identical (commutativity
//!   closure: any order converges).
//! * **RITU** — per object, the winning install versions at each site
//!   are strictly increasing (timestamp monotonicity of the LWW store).
//! * **VTNC** — the certified horizon at each site only ever advanced
//!   through versions already installed locally, and targets are
//!   monotone (horizon safety).
//! * **COMPE** — every optimistically applied MSet was eventually
//!   resolved (committed or compensated); no unresolved risk survives
//!   quiesce.
//! * **epsilon** — no admitted query imported more inconsistency than
//!   its declared [`EpsilonSpec`] allows.
//! * **convergence** — after quiesce, all replicas expose identical
//!   state (the overarching ESR guarantee every method promises).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crossbeam::channel;

use esr_core::divergence::EpsilonSpec;
use esr_core::ids::{ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::compe::CompeEvent;
use esr_runtime::{Cluster, RtCanary, RtMethod, SiteAudit};

/// Sites per explored cluster.
pub const SITES: usize = 3;

const X: ObjectId = ObjectId(0);
const Y: ObjectId = ObjectId(1);

/// One oracle violation.
#[derive(Debug, Clone)]
pub struct OracleFinding {
    /// Which oracle fired.
    pub oracle: &'static str,
    /// What it saw.
    pub detail: String,
}

impl fmt::Display for OracleFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.oracle, self.detail)
    }
}

/// One query's declared budget and observed accounting.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Site queried.
    pub site: u64,
    /// Budget the client declared.
    pub spec: EpsilonSpec,
    /// Inconsistency the site charged.
    pub charged: u64,
    /// Whether the query was admitted.
    pub admitted: bool,
}

/// Everything one explored run produces for the oracle pass.
#[derive(Debug)]
pub struct RunEvidence {
    /// Method under test.
    pub method: RtMethod,
    /// Final snapshot per site (post-quiesce).
    pub snapshots: Vec<BTreeMap<ObjectId, Value>>,
    /// Audit log per site.
    pub audits: Vec<SiteAudit>,
    /// Query accounting records.
    pub queries: Vec<QueryRecord>,
    /// Update ETs submitted.
    pub submitted: usize,
}

/// Number of threads participating in the scheduled run for `method`
/// (driver + sites + tracker + load helpers) — the scheduler's
/// expected-registration count.
pub fn expected_threads(method: RtMethod) -> usize {
    let tracker = usize::from(matches!(
        method,
        RtMethod::Commu | RtMethod::Ritu | RtMethod::RituMv
    ));
    let helpers = if uses_load_helpers(method) { 2 } else { 0 };
    1 + SITES + tracker + helpers
}

fn uses_load_helpers(method: RtMethod) -> bool {
    matches!(method, RtMethod::Ordup | RtMethod::Commu)
}

fn record_query(
    cluster: &Cluster,
    site: SiteId,
    read_set: &[ObjectId],
    spec: EpsilonSpec,
    out: &mut Vec<QueryRecord>,
) {
    let o = cluster.query(site, read_set, spec);
    out.push(QueryRecord {
        site: site.raw(),
        spec,
        charged: o.charged,
        admitted: o.admitted,
    });
}

/// The per-method workload, run inside a scheduled (or recorded)
/// section. Returns the oracle evidence plus a teardown closure that
/// joins the helper threads and drops the cluster — the caller must run
/// it only after the scheduler gate is released.
pub fn run_workload(method: RtMethod, canary: RtCanary) -> (RunEvidence, Box<dyn FnOnce()>) {
    let cluster = Arc::new(Cluster::checked(method, SITES, canary));
    let mut queries: Vec<QueryRecord> = Vec::new();
    let mut helpers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut stop_txs: Vec<channel::Sender<()>> = Vec::new();
    let submitted;

    if uses_load_helpers(method) {
        // Two concurrent submitters: under ORDUP this is what makes the
        // global sequencer *matter* — the explorer can preempt between
        // a submitter's sequence grab and its sends, so MSets arrive at
        // sites out of sequence order and only the hold-back restores
        // it. The helpers park on a stop channel after their last send:
        // a scheduled thread must stay inside instrumented operations
        // until the gate is released (an exited participant would stall
        // the token).
        let (done_tx, done_rx) = channel::unbounded::<u64>();
        for w in 0..2u64 {
            let c = Arc::clone(&cluster);
            let done = done_tx.clone();
            let (stop_tx, stop_rx) = channel::unbounded::<()>();
            stop_txs.push(stop_tx);
            let handle = std::thread::Builder::new()
                .name(format!("esr-load-{w}"))
                .spawn(move || {
                    for k in 0..3u64 {
                        let ops = match method {
                            RtMethod::Ordup => match (w + k) % 3 {
                                0 => vec![ObjectOp::new(X, Operation::Incr(3))],
                                1 => vec![ObjectOp::new(X, Operation::MulBy(2))],
                                _ => vec![
                                    ObjectOp::new(X, Operation::Decr(1)),
                                    ObjectOp::new(Y, Operation::Incr(1)),
                                ],
                            },
                            _ => vec![ObjectOp::new(X, Operation::Incr(1))],
                        };
                        c.submit_update(SiteId(w), ops);
                    }
                    let _ = done.send(w);
                    let _ = stop_rx.recv(); // park until teardown
                })
                .unwrap_or_else(|e| panic!("spawn load helper: {e}"));
            helpers.push(handle);
        }
        // Mid-flight query: evidence for the epsilon-accounting oracle
        // (a strict query must not be admitted with a nonzero charge).
        record_query(&cluster, SiteId(2), &[X], EpsilonSpec::STRICT, &mut queries);
        for _ in 0..2 {
            let _ = done_rx.recv();
        }
        submitted = 6;
    } else {
        match method {
            RtMethod::Ritu | RtMethod::RituMv => {
                for i in 1..=6i64 {
                    let obj = if i % 2 == 0 { Y } else { X };
                    cluster.submit_blind_write(SiteId(i as u64 % SITES as u64), obj, Value::Int(i));
                }
                record_query(&cluster, SiteId(1), &[X, Y], EpsilonSpec::bounded(1), &mut queries);
                submitted = 6;
            }
            RtMethod::Compe => {
                let mut ets = Vec::new();
                for i in 0..4i64 {
                    let ops = vec![ObjectOp::new(X, Operation::Incr(i + 1))];
                    ets.push(cluster.submit_update(SiteId(i as u64 % SITES as u64), ops));
                }
                record_query(&cluster, SiteId(0), &[X], EpsilonSpec::STRICT, &mut queries);
                cluster.commit(ets[0]);
                cluster.abort(ets[1]);
                cluster.commit(ets[2]);
                cluster.abort(ets[3]);
                submitted = 4;
            }
            RtMethod::Ordup | RtMethod::Commu => unreachable!("helper path"),
        }
    }

    cluster.quiesce();
    // Post-quiesce strict query: with the system settled this must be
    // admitted with zero charge under every method.
    record_query(&cluster, SiteId(0), &[X], EpsilonSpec::STRICT, &mut queries);

    let snapshots = (0..SITES)
        .map(|i| cluster.snapshot_of(SiteId(i as u64)))
        .collect();
    let audits = (0..SITES)
        .map(|i| cluster.audit_of(SiteId(i as u64)))
        .collect();

    let evidence = RunEvidence {
        method,
        snapshots,
        audits,
        queries,
        submitted,
    };
    let teardown = Box::new(move || {
        drop(stop_txs); // unparks the helpers
        for h in helpers {
            let _ = h.join();
        }
        drop(cluster);
    });
    (evidence, teardown)
}

/// Judges one run's evidence with every applicable oracle.
pub fn check(e: &RunEvidence) -> Vec<OracleFinding> {
    let mut out = Vec::new();
    convergence_oracle(e, &mut out);
    epsilon_oracle(e, &mut out);
    match e.method {
        RtMethod::Ordup => ordup_oracle(e, &mut out),
        RtMethod::Commu => commu_oracle(e, &mut out),
        RtMethod::Ritu => ritu_oracle(e, &mut out),
        RtMethod::RituMv => vtnc_oracle(e, &mut out),
        RtMethod::Compe => compe_oracle(e, &mut out),
    }
    out
}

fn convergence_oracle(e: &RunEvidence, out: &mut Vec<OracleFinding>) {
    for (i, s) in e.snapshots.iter().enumerate().skip(1) {
        if s != &e.snapshots[0] {
            out.push(OracleFinding {
                oracle: "convergence",
                detail: format!(
                    "site {i} diverged after quiesce: {:?} vs site 0 {:?}",
                    s, e.snapshots[0]
                ),
            });
        }
    }
}

fn epsilon_oracle(e: &RunEvidence, out: &mut Vec<OracleFinding>) {
    for q in &e.queries {
        if q.admitted && q.charged > q.spec.limit {
            out.push(OracleFinding {
                oracle: "epsilon",
                detail: format!(
                    "site {} admitted a query charged {} against a declared budget of {}",
                    q.site, q.charged, q.spec.limit
                ),
            });
        }
    }
}

fn ordup_oracle(e: &RunEvidence, out: &mut Vec<OracleFinding>) {
    for (i, a) in e.audits.iter().enumerate() {
        let seqs: Vec<u64> = a.ordup_order.iter().map(|(_, s)| s.raw()).collect();
        if !seqs.windows(2).all(|w| w[0] < w[1]) {
            out.push(OracleFinding {
                oracle: "ordup-order",
                detail: format!("site {i} applied out of global sequence order: {seqs:?}"),
            });
        }
        if a.ordup_order.len() != e.submitted {
            out.push(OracleFinding {
                oracle: "ordup-order",
                detail: format!(
                    "site {i} applied {} of {} submitted updates",
                    a.ordup_order.len(),
                    e.submitted
                ),
            });
        }
        if a.ordup_order != e.audits[0].ordup_order {
            out.push(OracleFinding {
                oracle: "ordup-order",
                detail: format!(
                    "site {i} application order differs from site 0: {:?} vs {:?}",
                    a.ordup_order, e.audits[0].ordup_order
                ),
            });
        }
    }
}

fn commu_oracle(e: &RunEvidence, out: &mut Vec<OracleFinding>) {
    let mut reference: Vec<_> = e.audits[0].commu_order.clone();
    reference.sort_unstable();
    for (i, a) in e.audits.iter().enumerate() {
        let mut ets = a.commu_order.clone();
        ets.sort_unstable();
        if ets != reference || ets.len() != e.submitted {
            out.push(OracleFinding {
                oracle: "commu-closure",
                detail: format!(
                    "site {i} applied ET multiset {ets:?}, expected the same {} ETs at every site",
                    e.submitted
                ),
            });
        }
    }
}

fn ritu_oracle(e: &RunEvidence, out: &mut Vec<OracleFinding>) {
    for (i, a) in e.audits.iter().enumerate() {
        let mut last: BTreeMap<ObjectId, esr_core::ids::VersionTs> = BTreeMap::new();
        for &(obj, ts) in &a.ritu_installs {
            if let Some(prev) = last.get(&obj) {
                if ts <= *prev {
                    out.push(OracleFinding {
                        oracle: "ritu-monotone",
                        detail: format!(
                            "site {i} installed {obj:?} at version {ts:?} after {prev:?} \
                             (winning installs must be strictly increasing)"
                        ),
                    });
                }
            }
            last.insert(obj, ts);
        }
    }
}

fn vtnc_oracle(e: &RunEvidence, out: &mut Vec<OracleFinding>) {
    for (i, a) in e.audits.iter().enumerate() {
        if a.vtnc_violations > 0 {
            out.push(OracleFinding {
                oracle: "vtnc-safety",
                detail: format!(
                    "site {i} saw {} VTNC advance(s) past its locally installed prefix",
                    a.vtnc_violations
                ),
            });
        }
        if !a.vtnc_targets.windows(2).all(|w| w[0] <= w[1]) {
            out.push(OracleFinding {
                oracle: "vtnc-safety",
                detail: format!(
                    "site {i} received non-monotone VTNC targets: {:?}",
                    a.vtnc_targets
                ),
            });
        }
    }
}

fn compe_oracle(e: &RunEvidence, out: &mut Vec<OracleFinding>) {
    for (i, a) in e.audits.iter().enumerate() {
        let mut unresolved: BTreeMap<esr_core::ids::EtId, ()> = BTreeMap::new();
        for &(et, ev) in &a.compe_events {
            match ev {
                CompeEvent::Applied => {
                    unresolved.insert(et, ());
                }
                CompeEvent::Committed | CompeEvent::Compensated => {
                    unresolved.remove(&et);
                }
                CompeEvent::Suppressed => {}
            }
        }
        if !unresolved.is_empty() {
            out.push(OracleFinding {
                oracle: "compe-resolution",
                detail: format!(
                    "site {i} still has unresolved optimistic applies after quiesce: {:?}",
                    unresolved.keys().collect::<Vec<_>>()
                ),
            });
        }
    }
}
