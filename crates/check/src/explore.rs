//! Bounded schedule exploration: run one workload under many distinct,
//! deterministic interleavings.
//!
//! Each exploration installs a fresh [`TokenSched`] as the probe gate,
//! runs the workload closure on the driver thread, shuts the scheduler
//! down, drains the trace, and only then runs the workload's teardown
//! (dropping a `Cluster` joins its threads — doing that while the gate
//! still serializes turns would deadlock, because a joined thread needs
//! the token to finish its final receive).
//!
//! A watchdog thread (plain `std` primitives — deliberately outside the
//! instrumented shims) force-releases the gate if a schedule wedges, so
//! a scheduling bug degrades into a flagged timeout instead of a hung
//! checker.

use std::sync::Arc;
use std::time::Duration;

use esr_sim::probe;
use esr_sim::probe::SyncEvent;

use crate::sched::{Policy, TokenSched};

/// Hard per-run wall-clock limit before the watchdog frees the gate.
pub const WATCHDOG_TIMEOUT: Duration = Duration::from_secs(30);

/// Runaway backstop: maximum scheduler turns per run.
pub const MAX_STEPS: u64 = 2_000_000;

/// One schedule to explore: a policy plus the seed driving it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleSpec {
    /// Seed for the policy's random choices.
    pub seed: u64,
    /// The scheduling policy.
    pub policy: Policy,
}

/// A deterministic matrix of `n` distinct schedules derived from `seed`:
/// the first few are fixed round-robin quanta (the systematic part),
/// the rest seeded random walks with varying preemption pressure (the
/// bounded-preemption enumeration part).
pub fn schedule_matrix(seed: u64, n: u64) -> Vec<ScheduleSpec> {
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        let s = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            | 1;
        let policy = match i % 4 {
            0 => Policy::RoundRobin {
                quantum: 1 + (i / 4 % 7) as u32,
            },
            1 => Policy::RandomWalk { p: 0.75 },
            2 => Policy::RandomWalk { p: 0.25 },
            _ => Policy::RandomWalk { p: 0.05 },
        };
        out.push(ScheduleSpec { seed: s, policy });
    }
    out
}

/// The result of one explored run.
#[derive(Debug)]
pub struct Explored<T> {
    /// Whatever the workload returned.
    pub value: T,
    /// The recorded synchronization trace.
    pub trace: Vec<SyncEvent>,
    /// True when the watchdog or the step cap had to free the gate —
    /// the schedule wedged or ran away, itself a finding.
    pub forced_stop: bool,
    /// Scheduler turns granted.
    pub steps: u64,
}

/// Runs `workload` under one controlled schedule.
///
/// `expected` is the number of participating threads (driver included);
/// no turn is granted until all of them have registered, which makes
/// the interleaving a pure function of `spec`. The workload returns its
/// evidence plus a teardown closure; the teardown (joining cluster and
/// helper threads) runs after the gate is released.
///
/// The probe is process-global: callers must not run two explorations
/// concurrently (the CLI is single-threaded; tests serialize on a
/// mutex).
pub fn run_scheduled<T>(
    spec: ScheduleSpec,
    expected: usize,
    workload: impl FnOnce() -> (T, Box<dyn FnOnce()>),
) -> Explored<T> {
    let sched = Arc::new(TokenSched::new(
        spec.policy,
        spec.seed,
        expected,
        MAX_STEPS,
    ));
    // The driver joins via its own first instrumented operation like
    // every other participant (`expected` counts it). Pre-registering it
    // would let the gate open while the driver is still in free code,
    // making its first reach a pass-through or a parked grant depending
    // on OS timing — a policy-decision leak that changes the schedule.
    probe::set_thread_key("driver");

    // Watchdog on plain std primitives; signalled (not joined) from the
    // driver so a wedged schedule cannot also wedge the watchdog.
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let wsched = Arc::clone(&sched);
    let watchdog = std::thread::Builder::new()
        .name("esr-check-watchdog".into())
        .spawn(move || {
            if done_rx.recv_timeout(WATCHDOG_TIMEOUT).is_err() {
                wsched.force_shutdown();
            }
        })
        .unwrap_or_else(|e| panic!("spawn watchdog: {e}"));

    probe::start_scheduled(Arc::clone(&sched) as Arc<dyn probe::Gate>);
    let (value, teardown) = workload();
    sched.shutdown();
    let trace = probe::stop();
    teardown();

    let _ = done_tx.send(());
    let _ = watchdog.join();

    Explored {
        value,
        trace,
        forced_stop: sched.was_forced(),
        steps: sched.steps(),
    }
}

/// Runs `workload` in plain record mode (no gate): events are logged
/// but threads run free. Used by the hand-built canary harnesses whose
/// verdicts do not depend on the interleaving.
pub fn run_recorded<T>(workload: impl FnOnce() -> T) -> (T, Vec<SyncEvent>) {
    probe::start_recording();
    let value = workload();
    let trace = probe::stop();
    (value, trace)
}
