//! Seeded defect canaries: known-bad (and matching known-good) setups
//! the checker must classify correctly before its clean-sweep verdict
//! means anything.
//!
//! Two layers:
//!
//! * **shim-level** — hand-driven thread harnesses exercising the
//!   instrumented primitives directly: an unsynchronized write pair
//!   (data race), its mutex-fixed control, an opposite-order lock pair
//!   (inversion), and its gate-locked control. These validate the trace
//!   detectors themselves with exact expected verdicts.
//! * **runtime-level** — [`RtCanary`] faults injected into the real
//!   [`Cluster`] and driven through the schedule explorer: a disabled
//!   ORDUP sequencer (order violation), an ignored epsilon budget
//!   (bound breach), and an eagerly certified VTNC horizon. Each must
//!   be flagged by the oracles in at least one explored schedule.
//!
//! The inversion harness runs its two threads *sequentially* — the
//! detector is order-based, not occurrence-based, so it flags the
//! hazard without the harness having to risk a real deadlock.

use esr_runtime::{RtCanary, RtMethod};
use esr_sim::probe;

use crate::explore::{run_recorded, run_scheduled, schedule_matrix};
use crate::oracles::{self, OracleFinding};
use crate::race::{Finding, FindingKind, LockOrderDetector, RaceDetector};

/// Locations for the hand-built harnesses, outside the cluster's
/// `SITE_STATE_LOC` namespace.
const CANARY_LOC: u64 = 1 << 40;

/// One self-test verdict.
#[derive(Debug)]
pub struct SelfTest {
    /// Which canary ran.
    pub name: &'static str,
    /// Did the checker classify it correctly?
    pub pass: bool,
    /// What the detectors reported.
    pub detail: String,
}

fn spawn_named(name: &str, f: impl FnOnce() + Send + 'static) -> std::thread::JoinHandle<()> {
    std::thread::Builder::new()
        .name(name.to_owned())
        .spawn(f)
        .unwrap_or_else(|e| panic!("spawn canary thread: {e}"))
}

/// Two threads write one location with no synchronization edge between
/// them: the race detector must flag it.
fn race_canary() -> Vec<Finding> {
    let ((), trace) = run_recorded(|| {
        let a = spawn_named("canary-a", || probe::mem_write(CANARY_LOC));
        let b = spawn_named("canary-b", || probe::mem_write(CANARY_LOC));
        let _ = a.join();
        let _ = b.join();
    });
    RaceDetector::analyze(&trace)
}

/// The fixed control: the same write pair, each guarded by one shim
/// mutex whose release → acquire edge orders them. Zero findings
/// expected.
fn race_control() -> Vec<Finding> {
    let ((), trace) = run_recorded(|| {
        let m = std::sync::Arc::new(parking_lot::Mutex::new(()));
        let handles: Vec<_> = ["canary-a", "canary-b"]
            .into_iter()
            .map(|n| {
                let m = std::sync::Arc::clone(&m);
                spawn_named(n, move || {
                    let g = m.lock();
                    probe::mem_write(CANARY_LOC + 1);
                    drop(g);
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
    });
    RaceDetector::analyze(&trace)
}

/// Opposite-order acquisitions of two locks from two threads (run
/// sequentially — the hazard is the order, not the timing): the
/// lock-order detector must flag it.
fn inversion_canary() -> Vec<Finding> {
    let ((), trace) = run_recorded(|| {
        let a = std::sync::Arc::new(parking_lot::Mutex::new(()));
        let b = std::sync::Arc::new(parking_lot::Mutex::new(()));
        let (a1, b1) = (std::sync::Arc::clone(&a), std::sync::Arc::clone(&b));
        let t1 = spawn_named("canary-ab", move || {
            let ga = a1.lock();
            let gb = b1.lock();
            drop(gb);
            drop(ga);
        });
        let _ = t1.join();
        let t2 = spawn_named("canary-ba", move || {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        });
        let _ = t2.join();
    });
    LockOrderDetector::analyze(&trace)
}

/// The gated control: the same opposite-order pair, but both threads
/// hold a common gate lock across the nested acquisitions — no deadlock
/// is possible, and no finding is expected.
fn inversion_control() -> Vec<Finding> {
    let ((), trace) = run_recorded(|| {
        let gate = std::sync::Arc::new(parking_lot::Mutex::new(()));
        let a = std::sync::Arc::new(parking_lot::Mutex::new(()));
        let b = std::sync::Arc::new(parking_lot::Mutex::new(()));
        let (gate1, a1, b1) = (
            std::sync::Arc::clone(&gate),
            std::sync::Arc::clone(&a),
            std::sync::Arc::clone(&b),
        );
        let t1 = spawn_named("canary-ab", move || {
            let gg = gate1.lock();
            let ga = a1.lock();
            let gb = b1.lock();
            drop(gb);
            drop(ga);
            drop(gg);
        });
        let _ = t1.join();
        let t2 = spawn_named("canary-ba", move || {
            let gg = gate.lock();
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
            drop(gg);
        });
        let _ = t2.join();
    });
    LockOrderDetector::analyze(&trace)
}

fn classify(
    name: &'static str,
    findings: &[Finding],
    expect_kind: Option<FindingKind>,
) -> SelfTest {
    let (pass, detail) = match expect_kind {
        Some(kind) => {
            let hit = findings.iter().any(|f| f.kind == kind);
            let detail = if hit {
                findings
                    .iter()
                    .find(|f| f.kind == kind)
                    .map(ToString::to_string)
                    .unwrap_or_default()
            } else {
                format!("expected a {kind:?} finding, got {findings:?}")
            };
            (hit, detail)
        }
        None => (
            findings.is_empty(),
            if findings.is_empty() {
                "clean, as expected".to_owned()
            } else {
                format!("expected no findings, got {findings:?}")
            },
        ),
    };
    SelfTest { name, pass, detail }
}

/// Runs the four shim-level self-tests.
pub fn shim_self_tests() -> Vec<SelfTest> {
    vec![
        classify("data-race canary", &race_canary(), Some(FindingKind::DataRace)),
        classify("data-race control", &race_control(), None),
        classify(
            "lock-inversion canary",
            &inversion_canary(),
            Some(FindingKind::LockInversion),
        ),
        classify("lock-inversion control", &inversion_control(), None),
    ]
}

/// One runtime canary: the fault, the workload method that exposes it,
/// and the oracle expected to fire.
#[derive(Debug, Clone, Copy)]
pub struct RtCanaryCase {
    /// Display name.
    pub name: &'static str,
    /// Fault injected into the cluster.
    pub canary: RtCanary,
    /// Workload method it targets.
    pub method: RtMethod,
    /// Oracle family expected to flag it.
    pub oracle: &'static str,
}

/// The runtime canary matrix.
pub const RT_CANARIES: [RtCanaryCase; 3] = [
    RtCanaryCase {
        name: "ordup sequencer disabled",
        canary: RtCanary::OrdupSequencerDisabled,
        method: RtMethod::Ordup,
        oracle: "ordup-order",
    },
    RtCanaryCase {
        name: "epsilon budget ignored",
        canary: RtCanary::EpsilonIgnored,
        method: RtMethod::Commu,
        oracle: "epsilon",
    },
    RtCanaryCase {
        name: "eager VTNC certification",
        canary: RtCanary::VtncEagerCertify,
        method: RtMethod::RituMv,
        oracle: "vtnc-safety",
    },
];

/// Explores `schedules` interleavings of `case`'s workload with the
/// fault injected, returning the findings of the first schedule whose
/// oracles fire (plus how many schedules it took). `None` means no
/// schedule exposed the fault — a self-test failure.
pub fn expose(case: &RtCanaryCase, seed: u64, schedules: u64) -> Option<(u64, Vec<OracleFinding>)> {
    for (i, spec) in schedule_matrix(seed, schedules).into_iter().enumerate() {
        let explored = run_scheduled(spec, oracles::expected_threads(case.method), || {
            oracles::run_workload(case.method, case.canary)
        });
        let findings: Vec<OracleFinding> = oracles::check(&explored.value)
            .into_iter()
            .filter(|f| f.oracle == case.oracle)
            .collect();
        if !findings.is_empty() {
            return Some((i as u64 + 1, findings));
        }
    }
    None
}
