//! `esr-model` end-to-end: the five control-plane canaries must be
//! caught, the unmutated protocol must sweep clean for every method,
//! and the traces the model emits must certify.

use esr_check::certify::{certify, SiteTrace};
use esr_check::model::canary::{canary_cfg, expose, CTRL_CANARIES};
use esr_check::model::explore::{explore, Sweep};
use esr_check::model::{ModelCfg, World};
use esr_runtime::state::RtMethod;

const METHODS: [RtMethod; 5] = [
    RtMethod::Ordup,
    RtMethod::Commu,
    RtMethod::Ritu,
    RtMethod::RituMv,
    RtMethod::Compe,
];

/// Search-node budget for one sweep. The standard 3-site config stays
/// well inside this (see the printed stats); hitting it is a failure.
const BUDGET: u64 = 40_000_000;

#[test]
fn ctrl_canaries_are_caught() {
    for case in &CTRL_CANARIES {
        let failure = expose(case, BUDGET).unwrap_or_else(|| {
            panic!("canary {} escaped the exhaustive sweep", case.name)
        });
        assert!(
            failure.findings.iter().any(|f| f.oracle == case.oracle),
            "canary {} caught, but not by `{}`: {:?}",
            case.name,
            case.oracle,
            failure.findings
        );
        println!(
            "canary {}: caught by `{}` after schedule of {} transitions",
            case.name,
            case.oracle,
            failure.schedule.len()
        );
    }
}

#[test]
fn canary_free_configs_sweep_clean_at_canary_size() {
    // The exact configurations the canary hunts use must be clean when
    // no defect is armed — otherwise "caught" proves nothing.
    for case in &CTRL_CANARIES {
        let mut cfg = canary_cfg(case);
        cfg.canary = None;
        match explore(&cfg, BUDGET) {
            Sweep::Clean(stats) => println!(
                "{:?} canary-size sweep clean: {} executions, {} states",
                case.method, stats.executions, stats.states
            ),
            Sweep::Failed(failure) => panic!(
                "{:?} canary-size sweep failed: {:?}\nschedule: {:?}",
                case.method, failure.findings, failure.schedule
            ),
            Sweep::BudgetExceeded(stats) => {
                panic!("{:?} canary-size sweep blew budget: {stats:?}", case.method)
            }
        }
    }
}

/// The full two-update sweeps, split into single-fault passes (one
/// crash XOR one dup per execution; the crash×dup cross-product is
/// exhausted at canary size above). ~5 minutes in release, so CI runs
/// this through `esr-check --model`; locally:
/// `cargo test -p esr-check --release --test model_check -- --ignored`.
#[test]
#[ignore = "full sweep; run in release via esr-check --model or -- --ignored"]
fn standard_configs_sweep_clean() {
    for method in METHODS {
        for (crashes, dups) in [(1, 0), (0, 1)] {
            let mut cfg = ModelCfg::standard(method);
            cfg.max_crashes = crashes;
            cfg.max_dups = dups;
            match explore(&cfg, BUDGET) {
                Sweep::Clean(stats) => println!(
                    "{method:?} ({crashes} crash, {dups} dup) sweep clean: \
                     {} executions, {} states, {} pruned, depth {}",
                    stats.executions, stats.states, stats.sleep_pruned, stats.max_depth
                ),
                Sweep::Failed(failure) => panic!(
                    "{method:?} ({crashes} crash, {dups} dup) sweep failed: {:?}\nschedule: {:?}",
                    failure.findings, failure.schedule
                ),
                Sweep::BudgetExceeded(stats) => {
                    panic!("{method:?} ({crashes} crash, {dups} dup) sweep blew budget: {stats:?}")
                }
            }
        }
    }
}

#[test]
fn model_traces_certify() {
    // A fault-free run of the standard workload, traced by the model's
    // per-site rings, must pass the trace certifier for every method.
    for method in METHODS {
        let cfg = ModelCfg::standard(method);
        let mut world = World::new(&cfg);
        for tx in world.client_schedule() {
            world.execute(tx);
            assert!(world.drain(), "{method:?}: failed to drain");
        }
        let traces: Vec<SiteTrace> = world
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| SiteTrace {
                site: i as u64,
                dropped: 0,
                events: n
                    .trace
                    .iter()
                    .map(|(c, m)| ((*c).to_string(), m.clone()))
                    .collect(),
            })
            .collect();
        let findings = certify(method, &traces);
        assert!(findings.is_empty(), "{method:?}: {findings:?}");
    }
}
