//! `esr-model` end-to-end: the seven control-plane canaries must be
//! caught, the unmutated protocol must sweep clean for every method,
//! and the traces the model emits must certify.

use esr_check::certify::{certify, SiteTrace};
use esr_check::model::canary::{canary_cfg, expose, CTRL_CANARIES};
use esr_check::model::explore::{explore, Sweep};
use esr_check::model::{ModelCfg, World};
use esr_runtime::state::RtMethod;

const METHODS: [RtMethod; 5] = [
    RtMethod::Ordup,
    RtMethod::Commu,
    RtMethod::Ritu,
    RtMethod::RituMv,
    RtMethod::Compe,
];

/// Search-node budget for one sweep. The standard 3-site config stays
/// well inside this (see the printed stats); hitting it is a failure.
const BUDGET: u64 = 40_000_000;

/// Bounded budget for the view-change configs' disarmed sweeps: large
/// enough to cover (with margin) the search prefix within which the
/// armed hunts catch both view-change canaries, small enough to keep
/// the debug-profile run under a minute.
const VC_BOUNDED_BUDGET: u64 = 500_000;

/// Budget for the crash-enriched COMMU view-change sweep in the
/// ignored tier: the crash-free space is ~9.8M states and restoring
/// one volatile-loss crash was measured past 30M, so give it ample
/// headroom.
const VC_ENRICHED_BUDGET: u64 = 150_000_000;

#[test]
fn ctrl_canaries_are_caught() {
    for case in &CTRL_CANARIES {
        let failure = expose(case, BUDGET).unwrap_or_else(|| {
            panic!("canary {} escaped the exhaustive sweep", case.name)
        });
        assert!(
            failure.findings.iter().any(|f| f.oracle == case.oracle),
            "canary {} caught, but not by `{}`: {:?}",
            case.name,
            case.oracle,
            failure.findings
        );
        println!(
            "canary {}: caught by `{}` after schedule of {} transitions",
            case.name,
            case.oracle,
            failure.schedule.len()
        );
    }
}

#[test]
fn canary_free_configs_sweep_clean_at_canary_size() {
    // The exact configurations the canary hunts use must be clean when
    // no defect is armed — otherwise "caught" proves nothing. The
    // view-change canaries share one disarmed config —
    // `ModelCfg::view_change(Commu)` — whose exhaustive clean sweep is
    // multi-minute release work done by the CI model lane (`esr-check
    // --model` sweeps that exact config); here it gets a bounded pass
    // (no violation within the budget) so the debug-profile test suite
    // stays fast, while the five method-plane configs must still sweep
    // clean outright.
    for case in &CTRL_CANARIES {
        let mut cfg = canary_cfg(case);
        cfg.canary = None;
        let budget = if case.needs_view_change {
            VC_BOUNDED_BUDGET
        } else {
            BUDGET
        };
        match explore(&cfg, budget) {
            Sweep::Clean(stats) => println!(
                "{} canary-size sweep clean: {} executions, {} states",
                case.name, stats.executions, stats.states
            ),
            Sweep::Failed(failure) => panic!(
                "{} canary-size sweep failed: {:?}\nschedule: {:?}",
                case.name, failure.findings, failure.schedule
            ),
            Sweep::BudgetExceeded(stats) if case.needs_view_change => println!(
                "{} canary-size sweep clean within bounded budget: \
                 {} executions, {} states (exhausted by the CI model lane)",
                case.name, stats.executions, stats.states
            ),
            Sweep::BudgetExceeded(stats) => {
                panic!("{} canary-size sweep blew budget: {stats:?}", case.name)
            }
        }
    }
}

/// The full two-update sweeps, split into single-fault passes (one
/// crash XOR one dup per execution; the crash×dup cross-product is
/// exhausted at canary size above). ~5 minutes in release, so CI runs
/// this through `esr-check --model`; locally:
/// `cargo test -p esr-check --release --test model_check -- --ignored`.
#[test]
#[ignore = "full sweep; run in release via esr-check --model or -- --ignored"]
fn standard_configs_sweep_clean() {
    for method in METHODS {
        for (crashes, dups) in [(1, 0), (0, 1)] {
            let mut cfg = ModelCfg::standard(method);
            cfg.max_crashes = crashes;
            cfg.max_dups = dups;
            match explore(&cfg, BUDGET) {
                Sweep::Clean(stats) => println!(
                    "{method:?} ({crashes} crash, {dups} dup) sweep clean: \
                     {} executions, {} states, {} pruned, depth {}",
                    stats.executions, stats.states, stats.sleep_pruned, stats.max_depth
                ),
                Sweep::Failed(failure) => panic!(
                    "{method:?} ({crashes} crash, {dups} dup) sweep failed: {:?}\nschedule: {:?}",
                    failure.findings, failure.schedule
                ),
                Sweep::BudgetExceeded(stats) => {
                    panic!("{method:?} ({crashes} crash, {dups} dup) sweep blew budget: {stats:?}")
                }
            }
        }
    }
}

/// The per-method view-change sweeps: one update racing one pinned
/// suspicion, for every method — then once more for COMMU with the
/// crash budget restored (one `AfterAck` volatile loss at a
/// non-role-holder), so completion evidence consumed-then-lost *during*
/// an election is exhausted too. The CI model lane exhausts COMMU's
/// crash-free sweep (the canary-discipline config); this ignored tier
/// adds the method-plane evidence variants — ORDUP sequence holds,
/// RITU-MV horizons, COMPE decisions — crossing a handoff. A couple of
/// minutes per method plus tens of minutes for the crash-enriched pass,
/// in release:
/// `cargo test -p esr-check --release --test model_check -- --ignored`.
#[test]
#[ignore = "full sweep; run in release via -- --ignored"]
fn view_change_configs_sweep_clean() {
    let judge = |label: &str, cfg: &ModelCfg, budget: u64| match explore(cfg, budget) {
        Sweep::Clean(stats) => println!(
            "{label} view-change sweep clean: {} executions, {} states, \
             {} pruned, depth {}",
            stats.executions, stats.states, stats.sleep_pruned, stats.max_depth
        ),
        Sweep::Failed(failure) => panic!(
            "{label} view-change sweep failed: {:?}\nschedule: {:?}",
            failure.findings, failure.schedule
        ),
        Sweep::BudgetExceeded(stats) => {
            panic!("{label} view-change sweep blew budget: {stats:?}")
        }
    };
    for method in METHODS {
        judge(&format!("{method:?}"), &ModelCfg::view_change(method), BUDGET);
    }
    let mut enriched = ModelCfg::view_change(RtMethod::Commu);
    enriched.max_crashes = 1;
    judge("Commu crash-enriched", &enriched, VC_ENRICHED_BUDGET);
}

#[test]
fn model_traces_certify() {
    // A fault-free run of the standard workload, traced by the model's
    // per-site rings, must pass the trace certifier for every method.
    for method in METHODS {
        let cfg = ModelCfg::standard(method);
        let mut world = World::new(&cfg);
        for tx in world.client_schedule() {
            world.execute(tx);
            assert!(world.drain(), "{method:?}: failed to drain");
        }
        let traces: Vec<SiteTrace> = world
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| SiteTrace {
                site: i as u64,
                dropped: 0,
                events: n
                    .trace
                    .iter()
                    .map(|(c, m)| ((*c).to_string(), m.clone()))
                    .collect(),
            })
            .collect();
        let findings = certify(method, &traces);
        assert!(findings.is_empty(), "{method:?}: {findings:?}");
    }
}
