//! Detector unit tests over hand-built event traces (exact expected
//! verdicts), plus explorer regression tests against the live runtime.
//!
//! The probe hub is process-global, so every test that records or
//! schedules serializes on [`PROBE`].

use std::sync::{Arc, Mutex, OnceLock};

use esr_check::explore::{run_scheduled, schedule_matrix, ScheduleSpec};
use esr_check::oracles::{self};
use esr_check::race::{FindingKind, LockOrderDetector, RaceDetector};
use esr_check::sched::Policy;
use esr_runtime::{RtCanary, RtMethod};
use esr_sim::probe::{SyncEvent, SyncOp};

fn probe_lock() -> std::sync::MutexGuard<'static, ()> {
    static PROBE: OnceLock<Mutex<()>> = OnceLock::new();
    match PROBE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Builds a trace from `(thread, op)` pairs, assigning dense seqs.
fn trace(ops: &[(&str, SyncOp)]) -> Vec<SyncEvent> {
    ops.iter()
        .enumerate()
        .map(|(i, (t, op))| SyncEvent {
            seq: i as u64,
            thread: Arc::from(*t),
            op: *op,
        })
        .collect()
}

const LOC: u64 = 7;
const CHAN: u64 = 1;
const LOCK_A: u64 = 10;
const LOCK_B: u64 = 11;
const GATE: u64 = 12;

#[test]
fn known_race_two_unordered_writes() {
    let t = trace(&[
        ("a", SyncOp::MemWrite { loc: LOC }),
        ("b", SyncOp::MemWrite { loc: LOC }),
    ]);
    let f = RaceDetector::analyze(&t);
    assert_eq!(f.len(), 1, "exactly one finding: {f:?}");
    assert_eq!(f[0].kind, FindingKind::DataRace);
    assert!(f[0].detail.contains("location 7"), "{}", f[0].detail);
}

#[test]
fn known_race_read_vs_write() {
    // a writes, synchronizes to b (send/recv); b reads (fine), then c
    // writes with no edge from b's read: write-after-read race.
    let t = trace(&[
        ("a", SyncOp::MemWrite { loc: LOC }),
        ("a", SyncOp::ChanSend { chan: CHAN, msg: 1 }),
        ("b", SyncOp::ChanRecv { chan: CHAN, msg: 1 }),
        ("b", SyncOp::MemRead { loc: LOC }),
        ("c", SyncOp::MemWrite { loc: LOC }),
    ]);
    let f = RaceDetector::analyze(&t);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].kind, FindingKind::DataRace);
}

#[test]
fn race_free_message_passing() {
    // Classic happens-before chain: write → send → recv → write.
    let t = trace(&[
        ("a", SyncOp::MemWrite { loc: LOC }),
        ("a", SyncOp::ChanSend { chan: CHAN, msg: 1 }),
        ("b", SyncOp::ChanRecv { chan: CHAN, msg: 1 }),
        ("b", SyncOp::MemWrite { loc: LOC }),
        ("b", SyncOp::MemRead { loc: LOC }),
    ]);
    assert!(RaceDetector::analyze(&t).is_empty());
}

#[test]
fn race_free_barrier_pattern() {
    // Two workers write distinct data, then meet at a barrier built
    // from two channels (each sends to the coordinator, which replies
    // to both); after the barrier each may read the other's slot.
    let t = trace(&[
        ("w1", SyncOp::MemWrite { loc: 100 }),
        ("w2", SyncOp::MemWrite { loc: 200 }),
        ("w1", SyncOp::ChanSend { chan: 1, msg: 1 }),
        ("w2", SyncOp::ChanSend { chan: 2, msg: 1 }),
        ("co", SyncOp::ChanRecv { chan: 1, msg: 1 }),
        ("co", SyncOp::ChanRecv { chan: 2, msg: 1 }),
        ("co", SyncOp::ChanSend { chan: 3, msg: 1 }),
        ("co", SyncOp::ChanSend { chan: 4, msg: 1 }),
        ("w1", SyncOp::ChanRecv { chan: 3, msg: 1 }),
        ("w2", SyncOp::ChanRecv { chan: 4, msg: 1 }),
        ("w1", SyncOp::MemRead { loc: 200 }),
        ("w2", SyncOp::MemRead { loc: 100 }),
    ]);
    assert!(
        RaceDetector::analyze(&t).is_empty(),
        "barrier pattern must be race-free"
    );
}

#[test]
fn mutex_discipline_is_race_free() {
    let t = trace(&[
        ("a", SyncOp::LockAcquire { lock: LOCK_A }),
        ("a", SyncOp::MemWrite { loc: LOC }),
        ("a", SyncOp::LockRelease { lock: LOCK_A }),
        ("b", SyncOp::LockAcquire { lock: LOCK_A }),
        ("b", SyncOp::MemWrite { loc: LOC }),
        ("b", SyncOp::LockRelease { lock: LOCK_A }),
    ]);
    assert!(RaceDetector::analyze(&t).is_empty());
}

#[test]
fn atomic_sync_orders_accesses() {
    // Release/acquire through an atomic cell: a's write is visible.
    let t = trace(&[
        ("a", SyncOp::MemWrite { loc: LOC }),
        ("a", SyncOp::AtomicStore { cell: 5 }),
        ("b", SyncOp::AtomicLoad { cell: 5 }),
        ("b", SyncOp::MemRead { loc: LOC }),
    ]);
    assert!(RaceDetector::analyze(&t).is_empty());
}

#[test]
fn one_finding_per_location() {
    let t = trace(&[
        ("a", SyncOp::MemWrite { loc: LOC }),
        ("b", SyncOp::MemWrite { loc: LOC }),
        ("c", SyncOp::MemWrite { loc: LOC }),
        ("a", SyncOp::MemWrite { loc: 8 }),
        ("b", SyncOp::MemWrite { loc: 8 }),
    ]);
    let f = RaceDetector::analyze(&t);
    assert_eq!(f.len(), 2, "one finding per racy location: {f:?}");
}

#[test]
fn known_lock_inversion() {
    let t = trace(&[
        ("a", SyncOp::LockAcquire { lock: LOCK_A }),
        ("a", SyncOp::LockAcquire { lock: LOCK_B }),
        ("a", SyncOp::LockRelease { lock: LOCK_B }),
        ("a", SyncOp::LockRelease { lock: LOCK_A }),
        ("b", SyncOp::LockAcquire { lock: LOCK_B }),
        ("b", SyncOp::LockAcquire { lock: LOCK_A }),
        ("b", SyncOp::LockRelease { lock: LOCK_A }),
        ("b", SyncOp::LockRelease { lock: LOCK_B }),
    ]);
    let f = LockOrderDetector::analyze(&t);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].kind, FindingKind::LockInversion);
}

#[test]
fn gate_lock_suppresses_inversion() {
    // Same opposite orders, but both nestings happen under a common
    // gate lock — the deadlock is impossible and must not be reported.
    let t = trace(&[
        ("a", SyncOp::LockAcquire { lock: GATE }),
        ("a", SyncOp::LockAcquire { lock: LOCK_A }),
        ("a", SyncOp::LockAcquire { lock: LOCK_B }),
        ("a", SyncOp::LockRelease { lock: LOCK_B }),
        ("a", SyncOp::LockRelease { lock: LOCK_A }),
        ("a", SyncOp::LockRelease { lock: GATE }),
        ("b", SyncOp::LockAcquire { lock: GATE }),
        ("b", SyncOp::LockAcquire { lock: LOCK_B }),
        ("b", SyncOp::LockAcquire { lock: LOCK_A }),
        ("b", SyncOp::LockRelease { lock: LOCK_A }),
        ("b", SyncOp::LockRelease { lock: LOCK_B }),
        ("b", SyncOp::LockRelease { lock: GATE }),
    ]);
    assert!(LockOrderDetector::analyze(&t).is_empty());
}

#[test]
fn same_thread_opposite_orders_is_not_inversion() {
    let t = trace(&[
        ("a", SyncOp::LockAcquire { lock: LOCK_A }),
        ("a", SyncOp::LockAcquire { lock: LOCK_B }),
        ("a", SyncOp::LockRelease { lock: LOCK_B }),
        ("a", SyncOp::LockRelease { lock: LOCK_A }),
        ("a", SyncOp::LockAcquire { lock: LOCK_B }),
        ("a", SyncOp::LockAcquire { lock: LOCK_A }),
        ("a", SyncOp::LockRelease { lock: LOCK_A }),
        ("a", SyncOp::LockRelease { lock: LOCK_B }),
    ]);
    assert!(LockOrderDetector::analyze(&t).is_empty());
}

#[test]
fn unpaired_recv_creates_no_edge() {
    // msg 0 marks a message sent before recording started: the recv
    // must not be treated as synchronizing with anything.
    let t = trace(&[
        ("a", SyncOp::MemWrite { loc: LOC }),
        ("b", SyncOp::ChanRecv { chan: CHAN, msg: 0 }),
        ("b", SyncOp::MemWrite { loc: LOC }),
    ]);
    assert_eq!(RaceDetector::analyze(&t).len(), 1);
}

// ---- live explorer regressions ----

/// `Cluster::quiesce` must terminate under the explorer's most hostile
/// schedules. The watchdog (and step cap) turn a hang into
/// `forced_stop`; any forced stop here is a liveness regression.
#[test]
fn quiesce_terminates_under_worst_schedules() {
    let _g = probe_lock();
    // The adversarial corner: single-op quanta and near-always preempt.
    let hostile = [
        ScheduleSpec {
            seed: 0xDEAD_BEEF,
            policy: Policy::RoundRobin { quantum: 1 },
        },
        ScheduleSpec {
            seed: 0xDEAD_BEEF,
            policy: Policy::RandomWalk { p: 0.95 },
        },
        ScheduleSpec {
            seed: 0x5EED,
            policy: Policy::RandomWalk { p: 0.95 },
        },
    ];
    for m in [RtMethod::Ordup, RtMethod::Commu, RtMethod::RituMv] {
        for spec in hostile {
            let e = run_scheduled(spec, oracles::expected_threads(m), || {
                oracles::run_workload(m, RtCanary::None)
            });
            assert!(
                !e.forced_stop,
                "{m:?} under {spec:?} wedged after {} steps",
                e.steps
            );
            assert!(oracles::check(&e.value).is_empty());
        }
    }
}

/// Same seed ⇒ same schedule ⇒ same trace and step count, run to run.
#[test]
fn same_seed_replays_identical_schedule() {
    let _g = probe_lock();
    let spec = schedule_matrix(42, 3)[2];
    let run = || {
        let e = run_scheduled(spec, oracles::expected_threads(RtMethod::Commu), || {
            oracles::run_workload(RtMethod::Commu, RtCanary::None)
        });
        let ops: Vec<String> = e
            .trace
            .iter()
            .map(|ev| format!("{}:{:?}", ev.thread, ev.op))
            .collect();
        (e.steps, ops)
    };
    let (s1, t1) = run();
    let (s2, t2) = run();
    assert_eq!(s1, s2, "step counts must replay exactly");
    assert_eq!(t1, t2, "traces must replay exactly");
}

/// The seeded runtime canaries must stay detectable — if a refactor
/// silently breaks a fault-injection path, this is the tripwire.
#[test]
fn runtime_canaries_stay_detectable() {
    let _g = probe_lock();
    for case in &esr_check::canary::RT_CANARIES {
        assert!(
            esr_check::canary::expose(case, 0xC0FF_EE00, 48).is_some(),
            "canary '{}' no longer caught by oracle `{}`",
            case.name,
            case.oracle
        );
    }
}

/// The clean runtime must produce zero findings of any kind across a
/// spread of schedules for every method.
#[test]
fn clean_runtime_is_clean() {
    let _g = probe_lock();
    for m in [
        RtMethod::Ordup,
        RtMethod::Commu,
        RtMethod::Ritu,
        RtMethod::RituMv,
        RtMethod::Compe,
    ] {
        for spec in schedule_matrix(7, 6) {
            let e = run_scheduled(spec, oracles::expected_threads(m), || {
                oracles::run_workload(m, RtCanary::None)
            });
            assert!(!e.forced_stop, "{m:?} {spec:?} wedged");
            let oracle_findings = oracles::check(&e.value);
            assert!(oracle_findings.is_empty(), "{m:?} {spec:?}: {oracle_findings:?}");
            let races = RaceDetector::analyze(&e.trace);
            assert!(races.is_empty(), "{m:?} {spec:?}: {races:?}");
            let inversions = LockOrderDetector::analyze(&e.trace);
            assert!(inversions.is_empty(), "{m:?} {spec:?}: {inversions:?}");
        }
    }
}
