//! Snapshot-equivalence sweep: for every method, workload, and cut
//! point, a node restored from a checkpoint of the journal prefix plus
//! a replay of the journal suffix must be indistinguishable from a
//! node that replayed the full journal — same replica snapshot, same
//! journalled set, same per-origin frontier. This is the pure-core
//! statement of the daemon's restart path (`NodeCore::restore` vs
//! `NodeCore::recover`), checked exhaustively at every possible cut
//! rather than at the one cut a live run happens to take.
//!
//! Also swept: the *over-approximated* suffix (replaying the whole
//! journal on top of a restored image), which the daemon relies on
//! when a snapshot's `covered_through` is `None` after catch-up — the
//! journalled-set and per-ET idempotency guards must absorb the
//! already-covered prefix.

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::mset::MSet;
use esr_replica::wire::Frame;
use esr_runtime::ctrl::{Effect, NodeCore, NodeEvent};
use esr_runtime::state::{RtMethod, SiteState};
use esr_runtime::{decode_payload, encode_payload};

const SITES: usize = 3;
const SITE: SiteId = SiteId(1);

fn incr(et: u64, origin: u64, object: u64, by: i64) -> MSet {
    MSet::new(
        EtId(et),
        SiteId(origin),
        vec![ObjectOp::new(ObjectId(object), Operation::Incr(by))],
    )
}

fn tswrite(et: u64, origin: u64, object: u64, time: u64, value: i64) -> MSet {
    MSet::new(
        EtId(et),
        SiteId(origin),
        vec![ObjectOp::new(
            ObjectId(object),
            Operation::TimestampedWrite(VersionTs::new(time, ClientId(origin)), Value::Int(value)),
        )],
    )
}

/// A method's exercise script: the journal (delivered in order, entry
/// `i` carrying stable id `i + 1`) plus non-journalled control frames
/// delivered after a given number of journal entries.
struct Workload {
    method: RtMethod,
    journal: Vec<MSet>,
    /// `(after_entry, frame)` — delivered once `after_entry` journal
    /// entries have been accepted.
    control: Vec<(usize, Frame)>,
}

fn workloads() -> Vec<Workload> {
    vec![
        // ORDUP with holes: pairs delivered out of order so cuts land
        // while the hold-back buffer is non-empty.
        Workload {
            method: RtMethod::Ordup,
            journal: vec![
                incr(2, 0, 1, 1).sequenced(SeqNo(1)),
                incr(1, 0, 1, 10).sequenced(SeqNo(0)),
                incr(4, 2, 2, 100).sequenced(SeqNo(3)),
                incr(3, 2, 2, 1000).sequenced(SeqNo(2)),
                incr(5, 0, 1, 7).sequenced(SeqNo(4)),
            ],
            control: vec![],
        },
        // COMMU with a client-stamped request (exercises the client
        // table in the image) and completions pre- and mid-stream.
        Workload {
            method: RtMethod::Commu,
            journal: vec![
                incr(1, 0, 1, 1),
                incr(2, 2, 1, 2).from_client(ClientId(9), 1),
                incr(3, 0, 2, 3),
                incr(4, 2, 2, 4),
            ],
            control: vec![
                (2, Frame::Complete { et: EtId(1) }),
                (3, Frame::Complete { et: EtId(2) }),
            ],
        },
        // RITU overwrite: interleaved stale and fresh versions.
        Workload {
            method: RtMethod::Ritu,
            journal: vec![
                tswrite(1, 0, 1, 3, 30),
                tswrite(2, 2, 1, 1, 10),
                tswrite(3, 0, 2, 2, 20),
                tswrite(4, 2, 2, 5, 50),
            ],
            control: vec![],
        },
        // RITU-MV: versions plus a certified horizon advance.
        Workload {
            method: RtMethod::RituMv,
            journal: vec![
                tswrite(1, 0, 1, 1, 10),
                tswrite(2, 2, 1, 2, 20),
                tswrite(3, 0, 2, 3, 30),
                tswrite(4, 2, 1, 4, 40),
            ],
            control: vec![(2, Frame::Vtnc { ts: VersionTs::new(1, ClientId(0)) })],
        },
        // COMPE: optimistic applies with one commit and one abort
        // (compensation) decided mid-stream.
        Workload {
            method: RtMethod::Compe,
            journal: vec![
                incr(1, 0, 1, 5),
                incr(2, 2, 1, 50),
                incr(3, 0, 2, 500),
                incr(4, 2, 2, 5000),
            ],
            control: vec![
                (2, Frame::Decision { et: EtId(1), commit: true }),
                (2, Frame::Decision { et: EtId(2), commit: false }),
            ],
        },
    ]
}

fn fresh(method: RtMethod) -> NodeCore {
    NodeCore::fresh(SiteState::new(method, SITE), method, SITE, SITES, None)
}

/// Drives `core` through the first `upto` journal entries (stable ids
/// `1..=upto`) and every control frame scheduled at or before that
/// point.
fn drive(core: &mut NodeCore, w: &Workload, upto: usize) {
    for (i, m) in w.journal.iter().take(upto).enumerate() {
        core.step(NodeEvent::PeerFrame(Frame::MSet(m.clone())));
        for (after, f) in &w.control {
            if *after == i + 1 {
                core.step(NodeEvent::PeerFrame(f.clone()));
            }
        }
    }
}

fn cut_payload(core: &mut NodeCore, through: Option<u64>) -> esr_runtime::CkptPayload {
    let effects = core.step(NodeEvent::Checkpoint { through });
    let Some(payload) = effects.into_iter().find_map(|e| match e {
        Effect::Checkpoint(p) => Some(*p),
        _ => None,
    }) else {
        panic!("a checkpoint cut always yields a payload")
    };
    payload
}

#[test]
fn restore_plus_suffix_matches_full_replay_at_every_cut() {
    for w in workloads() {
        let n = w.journal.len();
        // The golden reference: a core that saw everything live.
        let mut live = fresh(w.method);
        drive(&mut live, &w, n);

        for cut in 0..=n {
            // Cut a checkpoint after `cut` entries (with the control
            // frames scheduled by then), round-trip it through the
            // wire codec, then restore and replay the suffix.
            let mut prefix_core = fresh(w.method);
            drive(&mut prefix_core, &w, cut);
            let payload = cut_payload(&mut prefix_core, Some(cut as u64));
            assert_eq!(payload.covered, cut as u64, "{:?} cut {cut}", w.method);
            let payload = decode_payload(&encode_payload(&payload))
                .unwrap_or_else(|| panic!("{:?} cut {cut}: image must round-trip", w.method));

            let suffix: Vec<MSet> = w.journal[cut..].to_vec();
            let (mut restored, _) =
                NodeCore::restore(w.method, SITE, SITES, None, 0, payload.clone(), suffix)
                    .expect("method matches");
            // Control frames past the cut are not journalled; the live
            // reference saw them, so re-deliver (idempotent, like the
            // coordinator's ControlSnapshot at rejoin).
            for (after, f) in &w.control {
                if *after > cut {
                    restored.step(NodeEvent::PeerFrame(f.clone()));
                }
            }

            assert_eq!(
                restored.state.snapshot(),
                live.state.snapshot(),
                "{:?} cut {cut}: restored snapshot diverged",
                w.method
            );
            assert_eq!(
                restored.journaled_count(),
                live.journaled_count(),
                "{:?} cut {cut}: journalled set diverged",
                w.method
            );
            assert_eq!(
                restored.frontier(),
                live.frontier(),
                "{:?} cut {cut}: per-origin frontier diverged",
                w.method
            );

            // Over-approximated suffix: replay the *whole* journal on
            // top of the image (the catch-up path, covered_through =
            // None). The journalled-set guard must absorb the prefix.
            let (mut over, _) = NodeCore::restore(
                w.method,
                SITE,
                SITES,
                None,
                0,
                payload,
                w.journal.clone(),
            )
            .expect("method matches");
            for (after, f) in &w.control {
                if *after > cut {
                    over.step(NodeEvent::PeerFrame(f.clone()));
                }
            }
            assert_eq!(
                over.state.snapshot(),
                live.state.snapshot(),
                "{:?} cut {cut}: over-approximated replay diverged",
                w.method
            );
            assert_eq!(over.journaled_count(), live.journaled_count());
        }
    }
}

#[test]
fn restored_client_table_still_dedups() {
    // The COMMU workload journals a client-stamped request before any
    // cut that includes it; the restored node must answer a retry from
    // the table instead of re-applying.
    let w = &workloads()[1];
    assert_eq!(w.method, RtMethod::Commu);
    let mut prefix_core = fresh(w.method);
    drive(&mut prefix_core, w, 2); // includes (client 9, seq 1) -> et 2
    let payload = cut_payload(&mut prefix_core, Some(2));
    let (restored, _) =
        NodeCore::restore(w.method, SITE, SITES, None, 0, payload, vec![]).expect("method matches");
    assert_eq!(restored.cached_et(ClientId(9), 1), Some(EtId(2)));
}
