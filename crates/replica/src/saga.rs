//! Sagas over backward replica control (§4.2).
//!
//! "In a system supporting Sagas, we can maintain the lock-counter value
//! throughout a saga, since during the saga each step may be
//! uncompensated for. By clearing the lock-counters only at the end of
//! the entire saga the query ETs have a conservative estimate (upper
//! bound) of the total potential inconsistency."
//!
//! A [`SagaCoordinator`] runs multi-step transactions over a COMPE
//! cluster: each step is an update ET applied optimistically at every
//! replica and held **pending** — its lock-counters stay raised — until
//! the whole saga commits (all steps confirmed, in order) or aborts
//! (completed steps compensated in reverse order, exactly the saga
//! recovery discipline).

use std::collections::BTreeMap;

use esr_core::ids::{EtId, SiteId};
use esr_core::op::ObjectOp;

use crate::cluster::{ClusterConfig, Method, SimCluster};

/// Identifier of a saga within one coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SagaId(pub u64);

/// Lifecycle of a saga.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SagaState {
    /// Steps may still be added.
    Active,
    /// All steps committed.
    Committed,
    /// All steps compensated.
    Aborted,
}

#[derive(Debug)]
struct SagaRecord {
    steps: Vec<EtId>,
    state: SagaState,
}

/// Coordinates sagas over a COMPE [`SimCluster`].
///
/// ```
/// use esr_core::ids::{ObjectId, SiteId};
/// use esr_core::op::{ObjectOp, Operation};
/// use esr_core::value::Value;
/// use esr_replica::cluster::{ClusterConfig, Method};
/// use esr_replica::saga::SagaCoordinator;
///
/// let mut co = SagaCoordinator::new(ClusterConfig::new(Method::Compe).with_sites(3));
/// let trip = co.begin();
/// co.step(trip, SiteId(0), vec![ObjectOp::new(ObjectId(0), Operation::Decr(1))]);
/// co.step(trip, SiteId(1), vec![ObjectOp::new(ObjectId(1), Operation::Decr(1))]);
/// co.abort(trip); // compensates both steps, in reverse order
/// co.cluster_mut().run_until_quiescent();
/// assert!(co.cluster().converged());
/// ```
#[derive(Debug)]
pub struct SagaCoordinator {
    cluster: SimCluster,
    sagas: BTreeMap<SagaId, SagaRecord>,
    next_id: u64,
}

impl SagaCoordinator {
    /// Builds a coordinator over a fresh COMPE cluster with the given
    /// shape. The cluster's automatic abort probability is forced to
    /// zero: saga outcomes are decided here, not by coin flip.
    pub fn new(mut config: ClusterConfig) -> Self {
        config.method = Method::Compe;
        config.abort_prob = 0.0;
        Self {
            cluster: SimCluster::new(config),
            sagas: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// The underlying cluster (for queries, time control, statistics).
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster.
    pub fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }

    /// Starts a new saga.
    pub fn begin(&mut self) -> SagaId {
        let id = SagaId(self.next_id);
        self.next_id += 1;
        self.sagas.insert(
            id,
            SagaRecord {
                steps: Vec::new(),
                state: SagaState::Active,
            },
        );
        id
    }

    /// The state of a saga.
    pub fn state(&self, saga: SagaId) -> Option<SagaState> {
        self.sagas.get(&saga).map(|s| s.state)
    }

    /// Number of steps executed so far.
    pub fn step_count(&self, saga: SagaId) -> usize {
        self.sagas.get(&saga).map_or(0, |s| s.steps.len())
    }

    /// Executes the next step of `saga`: an update ET originating at
    /// `origin`, applied optimistically at every replica and held
    /// pending until the saga ends.
    ///
    /// Panics if the saga is unknown or no longer active.
    #[expect(clippy::expect_used, reason = "an unknown saga id is a caller bug; the panic is the documented contract")]
    pub fn step(&mut self, saga: SagaId, origin: SiteId, ops: Vec<ObjectOp>) -> EtId {
        let record = self.sagas.get_mut(&saga).expect("unknown saga");
        assert_eq!(record.state, SagaState::Active, "saga already finished");
        let et = self.cluster.submit_update_pending(origin, ops);
        record.steps.push(et);
        et
    }

    /// Commits the saga: every step's outcome is confirmed, in execution
    /// order. Lock-counters release as the commit notices reach every
    /// replica.
    #[expect(clippy::expect_used, reason = "an unknown saga id is a caller bug; the panic is the documented contract")]
    pub fn commit(&mut self, saga: SagaId) {
        let steps = {
            let record = self.sagas.get_mut(&saga).expect("unknown saga");
            assert_eq!(record.state, SagaState::Active, "saga already finished");
            record.state = SagaState::Committed;
            record.steps.clone()
        };
        for et in steps {
            self.cluster.resolve(et, true);
        }
    }

    /// Aborts the saga: completed steps are compensated in **reverse**
    /// order — the saga recovery discipline.
    #[expect(clippy::expect_used, reason = "an unknown saga id is a caller bug; the panic is the documented contract")]
    pub fn abort(&mut self, saga: SagaId) {
        let steps = {
            let record = self.sagas.get_mut(&saga).expect("unknown saga");
            assert_eq!(record.state, SagaState::Active, "saga already finished");
            record.state = SagaState::Aborted;
            record.steps.clone()
        };
        for et in steps.into_iter().rev() {
            self.cluster.resolve(et, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::divergence::EpsilonSpec;
    use esr_core::ids::ObjectId;
    use esr_core::op::Operation;
    use esr_core::value::Value;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn coordinator() -> SagaCoordinator {
        SagaCoordinator::new(ClusterConfig::new(Method::Compe).with_sites(3).with_seed(5))
    }

    fn incr(obj: ObjectId, n: i64) -> Vec<ObjectOp> {
        vec![ObjectOp::new(obj, Operation::Incr(n))]
    }

    #[test]
    fn committed_saga_keeps_all_step_effects() {
        let mut co = coordinator();
        let saga = co.begin();
        co.step(saga, SiteId(0), incr(X, 10));
        co.step(saga, SiteId(1), incr(Y, 20));
        co.commit(saga);
        assert_eq!(co.state(saga), Some(SagaState::Committed));
        co.cluster_mut().run_until_quiescent();
        assert!(co.cluster().converged());
        let snap = co.cluster().snapshot_of(SiteId(2));
        assert_eq!(snap[&X], Value::Int(10));
        assert_eq!(snap[&Y], Value::Int(20));
    }

    #[test]
    fn aborted_saga_compensates_every_step_everywhere() {
        let mut co = coordinator();
        let saga = co.begin();
        co.step(saga, SiteId(0), incr(X, 10));
        co.step(saga, SiteId(1), incr(X, 5));
        co.step(saga, SiteId(2), incr(Y, 7));
        co.abort(saga);
        assert_eq!(co.state(saga), Some(SagaState::Aborted));
        co.cluster_mut().run_until_quiescent();
        assert!(co.cluster().converged());
        let snap = co.cluster().snapshot_of(SiteId(0));
        assert_eq!(snap.get(&X).cloned().unwrap_or_default(), Value::Int(0));
        assert_eq!(snap.get(&Y).cloned().unwrap_or_default(), Value::Int(0));
        assert!(co.cluster().stats().fast_compensations + co.cluster().stats().suffix_rollbacks > 0);
    }

    #[test]
    fn queries_carry_the_conservative_bound_until_saga_end() {
        let mut co = coordinator();
        let saga = co.begin();
        co.step(saga, SiteId(0), incr(X, 10));
        // Drain the MSet deliveries; the steps stay pending (no outcome
        // was broadcast), so the lock-counters are still raised.
        co.cluster_mut().run_until_quiescent();
        let out = co
            .cluster_mut()
            .try_query(SiteId(1), &[X], EpsilonSpec::UNBOUNDED);
        assert_eq!(
            out.charged, 1,
            "the in-flight saga step must be charged even after delivery"
        );
        // A strict query is refused while the saga is open…
        let strict = co
            .cluster_mut()
            .try_query(SiteId(1), &[X], EpsilonSpec::STRICT);
        assert!(!strict.admitted);
        // …and admitted after commit + quiescence.
        co.commit(saga);
        co.cluster_mut().run_until_quiescent();
        let strict = co
            .cluster_mut()
            .try_query(SiteId(1), &[X], EpsilonSpec::STRICT);
        assert!(strict.admitted);
        assert_eq!(strict.values[0], Value::Int(10));
    }

    #[test]
    fn interleaved_sagas_resolve_independently() {
        let mut co = coordinator();
        let a = co.begin();
        let b = co.begin();
        co.step(a, SiteId(0), incr(X, 1));
        co.step(b, SiteId(1), incr(X, 100));
        co.step(a, SiteId(2), incr(X, 2));
        co.abort(b);
        co.commit(a);
        co.cluster_mut().run_until_quiescent();
        assert!(co.cluster().converged());
        assert_eq!(
            co.cluster().snapshot_of(SiteId(1))[&X],
            Value::Int(3),
            "saga a's 1+2 survive, saga b's 100 is compensated"
        );
        assert_eq!(co.step_count(a), 2);
        assert_eq!(co.step_count(b), 1);
    }

    #[test]
    #[should_panic(expected = "saga already finished")]
    fn steps_after_commit_are_rejected() {
        let mut co = coordinator();
        let saga = co.begin();
        co.step(saga, SiteId(0), incr(X, 1));
        co.commit(saga);
        co.step(saga, SiteId(0), incr(X, 1));
    }

    #[test]
    fn empty_saga_commits_trivially() {
        let mut co = coordinator();
        let saga = co.begin();
        co.commit(saga);
        assert_eq!(co.state(saga), Some(SagaState::Committed));
        co.cluster_mut().run_until_quiescent();
        assert!(co.cluster().converged());
    }
}
