//! The epsilon-transaction interface (§1, §2.1).
//!
//! "A high-level interface called epsilon-transaction (ET) encapsulates
//! the ESR abstraction so users need not explicitly deal with the
//! theoretical conditions satisfying ESR." This module is that
//! interface: fluent builders for update and query ETs over a
//! [`SimCluster`], hiding MSets, sequence numbers, version stamps, and
//! inconsistency counters.
//!
//! ```
//! use esr_replica::api::Session;
//! use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
//! use esr_core::ids::{ObjectId, SiteId};
//!
//! let cluster = SimCluster::new(ClusterConfig::new(Method::Commu).with_sites(3));
//! let mut session = Session::new(cluster);
//!
//! // An update ET: two operations, one atomic MSet, asynchronous fan-out.
//! session.update(SiteId(0)).incr(ObjectId(0), 100).decr(ObjectId(1), 100).submit();
//!
//! // A query ET with an inconsistency budget of 2.
//! let report = session.query(SiteId(2)).read(ObjectId(0)).read(ObjectId(1)).epsilon(2).execute();
//! assert!(report.charged <= 2 || !report.admitted);
//!
//! // A strict (one-copy-serializable) query waits as needed.
//! let strict = session.query(SiteId(2)).read(ObjectId(0)).strict().wait();
//! assert_eq!(strict.charged, 0);
//! # let _ = strict;
//! ```

use esr_core::divergence::EpsilonSpec;
use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;

use crate::cluster::{QueryReport, SimCluster};
use crate::site::QueryOutcome;

/// A client session over a replicated cluster.
#[derive(Debug)]
pub struct Session {
    cluster: SimCluster,
}

impl Session {
    /// Wraps a cluster.
    pub fn new(cluster: SimCluster) -> Self {
        Self { cluster }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &SimCluster {
        &self.cluster
    }

    /// Mutable access to the underlying cluster (time control, stats).
    pub fn cluster_mut(&mut self) -> &mut SimCluster {
        &mut self.cluster
    }

    /// Consumes the session, returning the cluster.
    pub fn into_cluster(self) -> SimCluster {
        self.cluster
    }

    /// Starts building an update ET originating at `origin`.
    pub fn update(&mut self, origin: SiteId) -> UpdateBuilder<'_> {
        UpdateBuilder {
            session: self,
            origin,
            ops: Vec::new(),
        }
    }

    /// Starts building a query ET served at `site`.
    pub fn query(&mut self, site: SiteId) -> QueryBuilder<'_> {
        QueryBuilder {
            session: self,
            site,
            read_set: Vec::new(),
            epsilon: EpsilonSpec::UNBOUNDED,
        }
    }

    /// Stamps and submits a blind (read-independent) write — the RITU
    /// update shape.
    pub fn blind_write(
        &mut self,
        origin: SiteId,
        object: ObjectId,
        value: impl Into<Value>,
    ) -> EtId {
        self.cluster.submit_blind_write(origin, object, value.into())
    }

    /// Drains the system and returns whether all replicas agree.
    pub fn settle(&mut self) -> bool {
        self.cluster.run_until_quiescent();
        self.cluster.converged()
    }
}

/// Builder for one update ET.
#[derive(Debug)]
pub struct UpdateBuilder<'a> {
    session: &'a mut Session,
    origin: SiteId,
    ops: Vec<ObjectOp>,
}

impl UpdateBuilder<'_> {
    /// Adds an increment.
    pub fn incr(mut self, object: ObjectId, n: i64) -> Self {
        self.ops.push(ObjectOp::new(object, Operation::Incr(n)));
        self
    }

    /// Adds a decrement.
    pub fn decr(mut self, object: ObjectId, n: i64) -> Self {
        self.ops.push(ObjectOp::new(object, Operation::Decr(n)));
        self
    }

    /// Adds a multiplication.
    pub fn mul(mut self, object: ObjectId, k: i64) -> Self {
        self.ops.push(ObjectOp::new(object, Operation::MulBy(k)));
        self
    }

    /// Adds a plain overwrite.
    pub fn write(mut self, object: ObjectId, value: impl Into<Value>) -> Self {
        self.ops
            .push(ObjectOp::new(object, Operation::Write(value.into())));
        self
    }

    /// Adds an arbitrary operation.
    pub fn op(mut self, object: ObjectId, op: Operation) -> Self {
        self.ops.push(ObjectOp::new(object, op));
        self
    }

    /// Submits the update ET: one MSet, propagated asynchronously to
    /// every replica. Returns its identity.
    pub fn submit(self) -> EtId {
        self.session.cluster.submit_update(self.origin, self.ops)
    }

    /// Submits with a **pending** global outcome (COMPE clusters only):
    /// resolve later with [`SimCluster::resolve`].
    pub fn submit_pending(self) -> EtId {
        self.session
            .cluster
            .submit_update_pending(self.origin, self.ops)
    }
}

/// Builder for one query ET.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    session: &'a mut Session,
    site: SiteId,
    read_set: Vec<ObjectId>,
    epsilon: EpsilonSpec,
}

impl QueryBuilder<'_> {
    /// Adds an object to the read set.
    pub fn read(mut self, object: ObjectId) -> Self {
        self.read_set.push(object);
        self
    }

    /// Sets the inconsistency budget.
    pub fn epsilon(mut self, limit: u64) -> Self {
        self.epsilon = EpsilonSpec::bounded(limit);
        self
    }

    /// Demands strict one-copy serializability (epsilon = 0).
    pub fn strict(mut self) -> Self {
        self.epsilon = EpsilonSpec::STRICT;
        self
    }

    /// Executes once at the current instant; may be refused when the
    /// budget cannot absorb the visible inconsistency.
    pub fn execute(self) -> QueryOutcome {
        self.session
            .cluster
            .try_query(self.site, &self.read_set, self.epsilon)
    }

    /// Executes with the synchronous fallback: retries (advancing the
    /// simulation) until the budget admits the query.
    pub fn wait(self) -> QueryReport {
        self.session
            .cluster
            .query_with_retry(self.site, &self.read_set, self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, Method};

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn session(method: Method) -> Session {
        Session::new(SimCluster::new(
            ClusterConfig::new(method).with_sites(3).with_seed(2),
        ))
    }

    #[test]
    fn update_builder_composes_one_mset() {
        let mut s = session(Method::Commu);
        s.update(SiteId(0)).incr(X, 10).decr(Y, 4).submit();
        assert!(s.settle());
        let out = s.query(SiteId(1)).read(X).read(Y).strict().execute();
        assert_eq!(out.values, vec![Value::Int(10), Value::Int(-4)]);
    }

    #[test]
    fn bounded_query_reports_charge() {
        let mut s = session(Method::Commu);
        s.update(SiteId(0)).incr(X, 1).submit();
        let out = s.query(SiteId(1)).read(X).epsilon(5).execute();
        assert!(out.admitted);
        assert!(out.charged <= 5);
        // Strict refuses while the update is in flight.
        let strict = s.query(SiteId(1)).read(X).strict().execute();
        assert!(!strict.admitted);
    }

    #[test]
    fn strict_wait_serves_the_converged_value() {
        let mut s = session(Method::Commu);
        for i in 0..5 {
            s.update(SiteId(i % 3)).incr(X, 2).submit();
        }
        let report = s.query(SiteId(2)).read(X).strict().wait();
        assert_eq!(report.charged, 0);
        assert_eq!(report.values, vec![Value::Int(10)]);
    }

    #[test]
    fn blind_writes_through_the_session() {
        let mut s = session(Method::RituOverwrite);
        s.blind_write(SiteId(0), X, 5i64);
        s.blind_write(SiteId(1), X, 9i64);
        assert!(s.settle());
        let out = s.query(SiteId(2)).read(X).strict().execute();
        assert_eq!(out.values, vec![Value::Int(9)], "newest version wins");
    }

    #[test]
    fn pending_updates_resolve_through_cluster() {
        let mut s = session(Method::Compe);
        let et = s.update(SiteId(0)).incr(X, 7).submit_pending();
        s.cluster_mut().run_until_quiescent();
        s.cluster_mut().resolve(et, false);
        assert!(s.settle());
        let out = s.query(SiteId(1)).read(X).strict().execute();
        assert_eq!(out.values, vec![Value::ZERO], "aborted effect compensated");
    }

    #[test]
    fn into_cluster_round_trip() {
        let mut s = session(Method::Commu);
        s.update(SiteId(0)).write(X, 42i64).submit();
        let mut cluster = s.into_cluster();
        cluster.run_until_quiescent();
        assert_eq!(cluster.snapshot_of(SiteId(0))[&X], Value::Int(42));
    }
}
