//! Message sets (MSets).
//!
//! "At each site, an ET is represented by a *message set* or MSet. …
//! An update MSet is a set of replica maintenance operations which
//! propagates updates to object replicas" (§2.2). One update ET produces
//! one MSet, delivered asynchronously to every replica site; each method
//! attaches its own ordering information.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use esr_core::ids::{ClientId, EtId, LamportTs, ObjectId, SeqNo, SiteId};
use esr_core::op::ObjectOp;

/// Ordering information carried by an MSet, specific to the replica
/// control method in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderTag {
    /// No ordering constraint (COMMU, RITU — operations carry their own
    /// semantics).
    Unordered,
    /// A dense global sequence number from the ORDUP sequencer.
    Sequenced(SeqNo),
    /// A Lamport timestamp for distributed ORDUP ordering, plus a dense
    /// per-origin FIFO number so receivers can reconstruct each origin's
    /// send order over a reordering network.
    Lamport {
        /// Global (totally ordered) timestamp.
        ts: LamportTs,
        /// Dense per-origin sequence number, starting at 0.
        fifo: SeqNo,
    },
}

impl fmt::Display for OrderTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderTag::Unordered => write!(f, "-"),
            OrderTag::Sequenced(s) => write!(f, "{s}"),
            OrderTag::Lamport { ts, fifo } => write!(f, "{ts}/{fifo}"),
        }
    }
}

/// One update ET's replica-maintenance operations, as shipped to a site.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MSet {
    /// The update ET this MSet belongs to.
    pub et: EtId,
    /// The site where the update originated.
    pub origin: SiteId,
    /// The operations to apply.
    pub ops: Vec<ObjectOp>,
    /// Method-specific ordering information.
    pub order: OrderTag,
    /// The submitting client's identity and request sequence number,
    /// when the client wants exactly-once semantics: sites record
    /// `(client, seq) -> et` in their client tables so a retried submit
    /// (after a timeout or a coordinator failover) gets the cached
    /// reply instead of a double apply.
    #[serde(default)]
    pub client: Option<(ClientId, u64)>,
    /// Trace context: the client-submit wall stamp (UNIX micros),
    /// minted where the update was born and carried to every site so
    /// the tracing plane can charge client queueing delay against a
    /// single epoch. Purely observational — no protocol logic reads it.
    #[serde(default)]
    pub t0: Option<u64>,
}

impl MSet {
    /// Builds an unordered MSet.
    pub fn new(et: EtId, origin: SiteId, ops: Vec<ObjectOp>) -> Self {
        Self {
            et,
            origin,
            ops,
            order: OrderTag::Unordered,
            client: None,
            t0: None,
        }
    }

    /// Attaches the trace context: the client's submit wall stamp in
    /// UNIX micros (enables cross-site latency attribution).
    pub fn traced(mut self, t0: u64) -> Self {
        self.t0 = Some(t0);
        self
    }

    /// Attaches the submitting client's identity and request sequence
    /// number (enables exactly-once dedup at every site).
    pub fn from_client(mut self, client: ClientId, seq: u64) -> Self {
        self.client = Some((client, seq));
        self
    }

    /// Attaches a sequence number.
    pub fn sequenced(mut self, seq: SeqNo) -> Self {
        self.order = OrderTag::Sequenced(seq);
        self
    }

    /// Attaches a Lamport timestamp and per-origin FIFO number.
    pub fn lamport(mut self, ts: LamportTs, fifo: SeqNo) -> Self {
        self.order = OrderTag::Lamport { ts, fifo };
        self
    }

    /// The objects this MSet writes.
    pub fn write_set(&self) -> BTreeSet<ObjectId> {
        self.ops
            .iter()
            .filter(|o| o.op.is_write())
            .map(|o| o.object)
            .collect()
    }

    /// The objects this MSet writes, as a sorted deduplicated vector —
    /// one allocation, for the batch delivery path's bookkeeping.
    pub fn write_set_vec(&self) -> Vec<ObjectId> {
        let mut objs: Vec<ObjectId> = self
            .ops
            .iter()
            .filter(|o| o.op.is_write())
            .map(|o| o.object)
            .collect();
        objs.sort_unstable();
        objs.dedup();
        objs
    }

    /// Does this MSet write any object in `objects`?
    pub fn touches(&self, objects: &[ObjectId]) -> bool {
        self.ops
            .iter()
            .any(|o| o.op.is_write() && objects.contains(&o.object))
    }

    /// Approximate wire size in bytes, used by bandwidth-limited links
    /// to charge serialization delay: a fixed header plus a per-operation
    /// cost (timestamped writes carry a version and a value).
    pub fn wire_size(&self) -> u64 {
        use esr_core::op::Operation;
        let per_op: u64 = self
            .ops
            .iter()
            .map(|o| match &o.op {
                Operation::Read => 9,
                Operation::Incr(_) | Operation::Decr(_) | Operation::MulBy(_)
                | Operation::DivBy(_) | Operation::InsertElem(_) | Operation::RemoveElem(_) => 17,
                Operation::Write(v) => 9 + value_size(v),
                Operation::TimestampedWrite(_, v) => 25 + value_size(v),
            })
            .sum();
        24 + per_op
    }

    /// Do all writes of this MSet commute with all writes of `other`
    /// (same-object pairs only)?
    pub fn commutes_with(&self, other: &MSet) -> bool {
        self.ops.iter().filter(|a| a.op.is_write()).all(|a| {
            other
                .ops
                .iter()
                .filter(|b| b.op.is_write() && b.object == a.object)
                .all(|b| a.op.commutes_with(&b.op))
        })
    }
}

fn value_size(v: &esr_core::value::Value) -> u64 {
    use esr_core::value::Value;
    match v {
        Value::Int(_) => 8,
        Value::Text(s) => 4 + s.len() as u64,
        Value::Set(s) => 4 + 8 * s.len() as u64,
    }
}

impl fmt::Display for MSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MSet[{} from {} @{}:", self.et, self.origin, self.order)?;
        for op in &self.ops {
            write!(f, " {op}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::op::Operation;
    use esr_core::value::Value;

    fn mset(ops: Vec<ObjectOp>) -> MSet {
        MSet::new(EtId(1), SiteId(0), ops)
    }

    #[test]
    fn order_tags() {
        let m = mset(vec![]).sequenced(SeqNo(5));
        assert_eq!(m.order, OrderTag::Sequenced(SeqNo(5)));
        let m = mset(vec![]).lamport(LamportTs::new(3, SiteId(1)), SeqNo(0));
        assert!(matches!(m.order, OrderTag::Lamport { .. }));
        assert_eq!(mset(vec![]).order, OrderTag::Unordered);
    }

    #[test]
    fn write_set_ignores_reads() {
        let m = mset(vec![
            ObjectOp::new(ObjectId(0), Operation::Read),
            ObjectOp::new(ObjectId(1), Operation::Incr(1)),
            ObjectOp::new(ObjectId(2), Operation::Write(Value::Int(1))),
        ]);
        let ws = m.write_set();
        assert_eq!(ws.len(), 2);
        assert!(!ws.contains(&ObjectId(0)));
    }

    #[test]
    fn touches_checks_writes_only() {
        let m = mset(vec![
            ObjectOp::new(ObjectId(0), Operation::Read),
            ObjectOp::new(ObjectId(1), Operation::Incr(1)),
        ]);
        assert!(m.touches(&[ObjectId(1), ObjectId(9)]));
        assert!(!m.touches(&[ObjectId(0)]), "a read is not a touch");
        assert!(!m.touches(&[]));
    }

    #[test]
    fn commutes_with_pairs() {
        let a = mset(vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))]);
        let b = mset(vec![ObjectOp::new(ObjectId(0), Operation::Incr(9))]);
        let c = mset(vec![ObjectOp::new(ObjectId(0), Operation::MulBy(2))]);
        let d = mset(vec![ObjectOp::new(ObjectId(7), Operation::MulBy(2))]);
        assert!(a.commutes_with(&b));
        assert!(!a.commutes_with(&c));
        assert!(a.commutes_with(&d), "different objects commute");
    }

    #[test]
    fn wire_size_scales_with_ops() {
        let small = mset(vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))]);
        let big = mset(vec![
            ObjectOp::new(ObjectId(0), Operation::Incr(1)),
            ObjectOp::new(ObjectId(1), Operation::Write(Value::from("hello world"))),
        ]);
        assert!(big.wire_size() > small.wire_size());
        assert_eq!(small.wire_size(), 24 + 17);
        assert_eq!(mset(vec![]).wire_size(), 24);
    }

    #[test]
    fn display_includes_ops() {
        let m = mset(vec![ObjectOp::new(ObjectId(0), Operation::Incr(5))]).sequenced(SeqNo(2));
        let s = m.to_string();
        assert!(s.contains("Inc(5)[x0]"));
        assert!(s.contains("#2"));
    }
}
