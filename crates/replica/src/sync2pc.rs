//! Synchronous coherency-control baseline: write-all with two-phase
//! commit.
//!
//! The paper contrasts asynchronous replica control with "typical
//! coherency control methods \[that\] are synchronous, in the sense that
//! they require the atomic updating of some number of copies" and notes
//! that a commit agreement protocol "is a big handicap when network links
//! have very low bandwidth or moderately high latency" (§2.4). This
//! module supplies that comparator: every update is a distributed
//! transaction that
//!
//! 1. waits for the per-object write locks (conflicting updates
//!    serialize),
//! 2. sends PREPARE to every replica and waits for **all** votes,
//! 3. sends COMMIT to every replica; locks release when every replica
//!    has applied.
//!
//! All messages travel through the same simulated [`Network`], so a
//! partition stalls the protocol until the window heals — the blocking
//! behaviour experiment E10 measures. Message timelines are computed
//! directly from the deterministic delivery plans (no event loop is
//! needed because participants always vote yes).

use std::collections::BTreeMap;

use esr_core::ids::{ObjectId, SiteId};
use esr_core::op::ObjectOp;
use esr_core::value::Value;
use esr_net::transport::Network;
use esr_net::PartitionSchedule;
use esr_net::{LinkConfig, Topology};
use esr_sim::rng::DetRng;
use esr_sim::time::{Duration, VirtualTime};
use esr_storage::store::ObjectStore;

/// Timing of one 2PC update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TwoPcReport {
    /// When the transaction obtained its locks and began PREPARE.
    pub started: VirtualTime,
    /// When the coordinator had all votes (client-visible commit).
    pub decided: VirtualTime,
    /// When every replica had applied the COMMIT (locks released).
    pub completed: VirtualTime,
}

impl TwoPcReport {
    /// Client-perceived commit latency from submission.
    pub fn commit_latency(&self, submitted: VirtualTime) -> Duration {
        self.decided - submitted
    }
}

/// A replicated system under synchronous write-all / two-phase commit.
#[derive(Debug)]
pub struct TwoPcCluster {
    net: Network,
    sites: Vec<ObjectStore>,
    n: usize,
    /// When each object's write lock next becomes free.
    lock_free_at: BTreeMap<ObjectId, VirtualTime>,
    /// Commit latencies of all updates.
    latencies: Vec<Duration>,
    updates: u64,
}

impl TwoPcCluster {
    /// A cluster of `n` sites over the given link, with optional
    /// partitions.
    pub fn new(n: usize, link: LinkConfig, partitions: PartitionSchedule, seed: u64) -> Self {
        let net = Network::new(Topology::full_mesh(n, link), DetRng::new(seed))
            .with_partitions(partitions);
        Self {
            net,
            sites: (0..n).map(|_| ObjectStore::new()).collect(),
            n,
            lock_free_at: BTreeMap::new(),
            latencies: Vec::new(),
            updates: 0,
        }
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.n
    }

    /// Commit latencies recorded so far.
    pub fn latencies(&self) -> &[Duration] {
        &self.latencies
    }

    /// Updates committed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Runs one update transaction submitted at `origin` at time `at`.
    ///
    /// Returns the full timing report. The state of every replica is
    /// updated atomically (write-all): after this call all replicas agree
    /// on the new values.
    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    pub fn submit_update(
        &mut self,
        origin: SiteId,
        ops: &[ObjectOp],
        at: VirtualTime,
    ) -> TwoPcReport {
        // Phase 0: acquire write locks — wait for every touched object.
        let mut started = at;
        for op in ops {
            if op.op.is_write() {
                if let Some(&free) = self.lock_free_at.get(&op.object) {
                    started = started.max(free);
                }
            }
        }

        // Phase 1: PREPARE fan-out, wait for every vote.
        let mut decided = started;
        for site in 0..self.n as u64 {
            let site = SiteId(site);
            if site == origin {
                continue;
            }
            let prepare_at = self.net.plan_send(origin, site, started)[0].at;
            let vote_at = self.net.plan_send(site, origin, prepare_at)[0].at;
            decided = decided.max(vote_at);
        }

        // Phase 2: COMMIT fan-out; locks release when all have applied.
        let mut completed = decided;
        for site in 0..self.n as u64 {
            let site = SiteId(site);
            let apply_at = if site == origin {
                decided
            } else {
                self.net.plan_send(origin, site, decided)[0].at
            };
            completed = completed.max(apply_at);
            let store = &mut self.sites[site.raw() as usize];
            for op in ops {
                if op.op.is_write() {
                    store.apply(op).expect("2PC update applies cleanly");
                }
            }
        }
        for op in ops {
            if op.op.is_write() {
                self.lock_free_at.insert(op.object, completed);
            }
        }
        self.updates += 1;
        self.latencies.push(decided - at);
        TwoPcReport {
            started,
            decided,
            completed,
        }
    }

    /// Reads local committed state at a site (read-one): under write-all
    /// every committed update is present at every replica, so local reads
    /// are one-copy serializable.
    pub fn query(&self, site: SiteId, read_set: &[ObjectId]) -> Vec<Value> {
        let store = &self.sites[site.raw() as usize];
        read_set.iter().map(|&o| store.get(o)).collect()
    }

    /// True when every replica holds identical state (always, between
    /// updates — write-all is synchronous).
    pub fn converged(&self) -> bool {
        let first = self.sites[0].snapshot();
        self.sites.iter().all(|s| s.snapshot() == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::op::Operation;
    use esr_net::faults::PartitionWindow;
    use esr_net::latency::LatencyModel;

    const X: ObjectId = ObjectId(0);

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::from_millis(ms)
    }

    fn fixed_link(ms: u64) -> LinkConfig {
        LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(ms)))
    }

    #[test]
    fn commit_takes_two_round_trips() {
        let mut c = TwoPcCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        let ops = [ObjectOp::new(X, Operation::Incr(5))];
        let r = c.submit_update(SiteId(0), &ops, t(0));
        // PREPARE out (10) + vote back (10) = decided at 20ms.
        assert_eq!(r.decided, t(20));
        // COMMIT out (10) = completed at 30ms.
        assert_eq!(r.completed, t(30));
        assert!(c.converged());
        assert_eq!(c.query(SiteId(2), &[X]), vec![Value::Int(5)]);
    }

    #[test]
    fn conflicting_updates_serialize_on_locks() {
        let mut c = TwoPcCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        let ops = [ObjectOp::new(X, Operation::Incr(1))];
        let r1 = c.submit_update(SiteId(0), &ops, t(0));
        // Second conflicting update submitted concurrently: must wait for
        // r1's completion before starting.
        let r2 = c.submit_update(SiteId(1), &ops, t(0));
        assert_eq!(r2.started, r1.completed);
        assert!(r2.decided >= t(50));
        assert_eq!(c.query(SiteId(0), &[X]), vec![Value::Int(2)]);
    }

    #[test]
    fn disjoint_updates_run_concurrently() {
        let mut c = TwoPcCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        let r1 = c.submit_update(SiteId(0), &[ObjectOp::new(X, Operation::Incr(1))], t(0));
        let r2 = c.submit_update(
            SiteId(1),
            &[ObjectOp::new(ObjectId(1), Operation::Incr(1))],
            t(0),
        );
        assert_eq!(r1.started, t(0));
        assert_eq!(r2.started, t(0), "no lock conflict");
    }

    #[test]
    fn partition_blocks_commit_until_heal() {
        // Site 2 is unreachable until t=500ms: 2PC cannot decide before.
        let part = PartitionSchedule::new(vec![PartitionWindow::isolate(
            t(0),
            t(500),
            SiteId(2),
            [SiteId(0), SiteId(1)],
        )]);
        let mut c = TwoPcCluster::new(3, fixed_link(10), part, 1);
        let r = c.submit_update(SiteId(0), &[ObjectOp::new(X, Operation::Incr(1))], t(0));
        assert!(
            r.decided >= t(500),
            "2PC must block until the partition heals, decided at {}",
            r.decided
        );
        assert!(c.converged());
    }

    #[test]
    fn latency_grows_with_cluster_size_under_variable_links() {
        let run = |n: usize| {
            let link = LinkConfig::reliable(LatencyModel::Uniform(
                Duration::from_millis(1),
                Duration::from_millis(50),
            ));
            let mut c = TwoPcCluster::new(n, link, PartitionSchedule::none(), 7);
            let mut total = Duration::ZERO;
            for i in 0..50u64 {
                let r = c.submit_update(
                    SiteId(0),
                    &[ObjectOp::new(ObjectId(i), Operation::Incr(1))],
                    t(i * 1000),
                );
                total = total + r.commit_latency(t(i * 1000));
            }
            total.as_micros() / 50
        };
        let small = run(2);
        let large = run(12);
        assert!(
            large > small,
            "waiting for all of 12 sites ({large}us) must beat 2 sites ({small}us)"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut c = TwoPcCluster::new(2, fixed_link(5), PartitionSchedule::none(), 1);
        c.submit_update(SiteId(0), &[ObjectOp::new(X, Operation::Incr(1))], t(0));
        c.submit_update(SiteId(0), &[ObjectOp::new(X, Operation::Incr(1))], t(100));
        assert_eq!(c.updates(), 2);
        assert_eq!(c.latencies().len(), 2);
        assert_eq!(c.sites(), 2);
    }
}
