//! Wire codec for [`MSet`]s.
//!
//! The chaos runtime backs outbound delivery with durable
//! [`esr_storage::stable_queue::FileQueue`]s whose payloads are opaque
//! bytes, and each site keeps a durable apply journal of the MSets it has
//! applied. Both need a complete, self-describing MSet encoding — every
//! [`Operation`] and [`Value`] variant plus all three [`OrderTag`]
//! shapes — so a site restarted after a crash can reconstruct exactly
//! the updates it had seen.
//!
//! The format is a simple tagged binary layout (big-endian integers, no
//! compression): stable within this workspace, not a cross-version
//! interchange format. Decoding is total: any byte slice either yields
//! an MSet or a [`WireError`], never a panic — torn queue tails surface
//! as errors the recovery path can skip.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use esr_core::ids::{ClientId, EtId, LamportTs, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;

use crate::compe::CompeEvent;
use crate::mset::{MSet, OrderTag};
use crate::site::QueryOutcome;
use crate::span::{SpanRec, SpanStage};

/// Why a byte payload failed to decode as an MSet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure was complete.
    Truncated,
    /// An unknown tag byte for the given field.
    BadTag {
        /// Which field carried the tag ("order", "op", "value").
        field: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix exceeded the remaining payload (corrupt frame).
    BadLength,
    /// Embedded text was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag { field, tag } => write!(f, "unknown {field} tag {tag:#04x}"),
            WireError::BadLength => write!(f, "length prefix exceeds payload"),
            WireError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

const ORDER_UNORDERED: u8 = 0;
const ORDER_SEQUENCED: u8 = 1;
const ORDER_LAMPORT: u8 = 2;

const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_INCR: u8 = 2;
const OP_DECR: u8 = 3;
const OP_MULBY: u8 = 4;
const OP_DIVBY: u8 = 5;
const OP_INSERT: u8 = 6;
const OP_REMOVE: u8 = 7;
const OP_TSWRITE: u8 = 8;

const VAL_INT: u8 = 0;
const VAL_TEXT: u8 = 1;
const VAL_SET: u8 = 2;

/// Encodes an MSet into a self-contained byte payload.
pub fn encode_mset(mset: &MSet) -> Bytes {
    let mut b = BytesMut::with_capacity(32 + 16 * mset.ops.len());
    encode_mset_into(&mut b, mset);
    b.freeze()
}

pub(crate) fn encode_mset_into(b: &mut BytesMut, mset: &MSet) {
    b.put_u64(mset.et.raw());
    b.put_u64(mset.origin.raw());
    match mset.order {
        OrderTag::Unordered => b.put_u8(ORDER_UNORDERED),
        OrderTag::Sequenced(seq) => {
            b.put_u8(ORDER_SEQUENCED);
            b.put_u64(seq.raw());
        }
        OrderTag::Lamport { ts, fifo } => {
            b.put_u8(ORDER_LAMPORT);
            b.put_u64(ts.counter);
            b.put_u64(ts.site.raw());
            b.put_u64(fifo.raw());
        }
    }
    b.put_u32(mset.ops.len() as u32);
    for op in &mset.ops {
        b.put_u64(op.object.raw());
        encode_op(b, &op.op);
    }
    // Client identity for exactly-once dedup: a mandatory trailing
    // presence byte keeps decoding total under truncation.
    match mset.client {
        None => b.put_u8(0),
        Some((client, seq)) => {
            b.put_u8(1);
            b.put_u64(client.raw());
            b.put_u64(seq);
        }
    }
    // Trace context (client submit wall stamp), same trailing
    // presence-byte pattern.
    match mset.t0 {
        None => b.put_u8(0),
        Some(t0) => {
            b.put_u8(1);
            b.put_u64(t0);
        }
    }
}

pub(crate) fn encode_op(b: &mut BytesMut, op: &Operation) {
    match op {
        Operation::Read => b.put_u8(OP_READ),
        Operation::Write(v) => {
            b.put_u8(OP_WRITE);
            encode_value(b, v);
        }
        Operation::Incr(n) => {
            b.put_u8(OP_INCR);
            b.put_i64(*n);
        }
        Operation::Decr(n) => {
            b.put_u8(OP_DECR);
            b.put_i64(*n);
        }
        Operation::MulBy(k) => {
            b.put_u8(OP_MULBY);
            b.put_i64(*k);
        }
        Operation::DivBy(k) => {
            b.put_u8(OP_DIVBY);
            b.put_i64(*k);
        }
        Operation::InsertElem(e) => {
            b.put_u8(OP_INSERT);
            b.put_i64(*e);
        }
        Operation::RemoveElem(e) => {
            b.put_u8(OP_REMOVE);
            b.put_i64(*e);
        }
        Operation::TimestampedWrite(ts, v) => {
            b.put_u8(OP_TSWRITE);
            b.put_u64(ts.time);
            b.put_u64(ts.client.raw());
            encode_value(b, v);
        }
    }
}

pub(crate) fn encode_value(b: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(i) => {
            b.put_u8(VAL_INT);
            b.put_i64(*i);
        }
        Value::Text(s) => {
            b.put_u8(VAL_TEXT);
            b.put_u32(s.len() as u32);
            b.put_slice(s.as_bytes());
        }
        Value::Set(s) => {
            b.put_u8(VAL_SET);
            b.put_u32(s.len() as u32);
            for e in s {
                b.put_i64(*e);
            }
        }
    }
}

/// Decodes an MSet produced by [`encode_mset`].
///
/// Decoding walks a plain slice cursor over the payload — no refcounted
/// sub-buffers, and embedded text costs exactly one `String` allocation.
pub fn decode_mset(payload: &Bytes) -> Result<MSet, WireError> {
    let mut b = payload.as_ref();
    decode_mset_from(&mut b)
}

pub(crate) fn decode_mset_from(b: &mut &[u8]) -> Result<MSet, WireError> {
    let et = EtId(get_u64(b)?);
    let origin = SiteId(get_u64(b)?);
    let order = match get_u8(b)? {
        ORDER_UNORDERED => OrderTag::Unordered,
        ORDER_SEQUENCED => OrderTag::Sequenced(SeqNo(get_u64(b)?)),
        ORDER_LAMPORT => {
            let counter = get_u64(b)?;
            let site = SiteId(get_u64(b)?);
            let fifo = SeqNo(get_u64(b)?);
            OrderTag::Lamport {
                ts: LamportTs::new(counter, site),
                fifo,
            }
        }
        tag => return Err(WireError::BadTag { field: "order", tag }),
    };
    let n = get_u32(b)? as usize;
    // Each op is at least 9 bytes; reject absurd counts up front so a
    // corrupt length cannot trigger a huge allocation.
    if n > b.remaining() {
        return Err(WireError::BadLength);
    }
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let object = ObjectId(get_u64(b)?);
        let op = decode_op(b)?;
        ops.push(ObjectOp::new(object, op));
    }
    let client = match get_u8(b)? {
        0 => None,
        1 => {
            let client = ClientId(get_u64(b)?);
            let seq = get_u64(b)?;
            Some((client, seq))
        }
        tag => return Err(WireError::BadTag { field: "client", tag }),
    };
    let t0 = match get_u8(b)? {
        0 => None,
        1 => Some(get_u64(b)?),
        tag => return Err(WireError::BadTag { field: "t0", tag }),
    };
    let mut mset = MSet::new(et, origin, ops);
    mset.order = order;
    mset.client = client;
    mset.t0 = t0;
    Ok(mset)
}

pub(crate) fn decode_op(b: &mut &[u8]) -> Result<Operation, WireError> {
    Ok(match get_u8(b)? {
        OP_READ => Operation::Read,
        OP_WRITE => Operation::Write(decode_value(b)?),
        OP_INCR => Operation::Incr(get_i64(b)?),
        OP_DECR => Operation::Decr(get_i64(b)?),
        OP_MULBY => Operation::MulBy(get_i64(b)?),
        OP_DIVBY => Operation::DivBy(get_i64(b)?),
        OP_INSERT => Operation::InsertElem(get_i64(b)?),
        OP_REMOVE => Operation::RemoveElem(get_i64(b)?),
        OP_TSWRITE => {
            let time = get_u64(b)?;
            let client = ClientId(get_u64(b)?);
            let v = decode_value(b)?;
            Operation::TimestampedWrite(VersionTs::new(time, client), v)
        }
        tag => return Err(WireError::BadTag { field: "op", tag }),
    })
}

pub(crate) fn decode_value(b: &mut &[u8]) -> Result<Value, WireError> {
    Ok(match get_u8(b)? {
        VAL_INT => Value::Int(get_i64(b)?),
        VAL_TEXT => Value::Text(decode_text(b)?),
        VAL_SET => {
            let len = get_u32(b)? as usize;
            if b.remaining() < len.saturating_mul(8) {
                return Err(WireError::BadLength);
            }
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..len {
                set.insert(get_i64(b)?);
            }
            Value::Set(set)
        }
        tag => return Err(WireError::BadTag { field: "value", tag }),
    })
}

pub(crate) fn get_u8(b: &mut &[u8]) -> Result<u8, WireError> {
    if b.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u8())
}

pub(crate) fn get_u32(b: &mut &[u8]) -> Result<u32, WireError> {
    if b.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u32())
}

pub(crate) fn get_u64(b: &mut &[u8]) -> Result<u64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u64())
}

pub(crate) fn get_i64(b: &mut &[u8]) -> Result<i64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_i64())
}

// ---------------------------------------------------------------------------
// esr-rpc control frames
// ---------------------------------------------------------------------------
//
// The networked runtime (`esrd` / `esrctl`, `crates/net::rpc`) speaks a
// frame protocol whose payloads are encoded here, next to the MSet codec
// they embed. Same guarantees as the MSet codec: self-describing tagged
// binary, big-endian, and **total decoding** — any byte slice yields a
// [`Frame`] or a [`WireError`], never a panic, so a hostile or corrupt
// peer can at worst be disconnected.

const FRAME_HELLO: u8 = 0x01;
const FRAME_MSET: u8 = 0x02;
const FRAME_ACK: u8 = 0x03;
const FRAME_APPLIED: u8 = 0x04;
const FRAME_COMPLETE: u8 = 0x05;
const FRAME_VTNC: u8 = 0x06;
const FRAME_DECISION: u8 = 0x07;
const FRAME_CONTROL_SNAPSHOT: u8 = 0x08;
const FRAME_PING: u8 = 0x09;
const FRAME_START_VIEW_CHANGE: u8 = 0x0A;
const FRAME_DO_VIEW_CHANGE: u8 = 0x0B;
const FRAME_START_VIEW: u8 = 0x0C;
const FRAME_FORWARD_DECISION: u8 = 0x0D;
const FRAME_SNAPSHOT_REQUEST: u8 = 0x0E;
const FRAME_SNAPSHOT_CHUNK: u8 = 0x0F;
const FRAME_SUBMIT: u8 = 0x10;
const FRAME_SUBMIT_OK: u8 = 0x11;
const FRAME_QUERY: u8 = 0x12;
const FRAME_QUERY_OK: u8 = 0x13;
const FRAME_SNAPSHOT: u8 = 0x14;
const FRAME_SNAPSHOT_OK: u8 = 0x15;
const FRAME_STATUS: u8 = 0x16;
const FRAME_STATUS_OK: u8 = 0x17;
const FRAME_AUDIT: u8 = 0x18;
const FRAME_AUDIT_OK: u8 = 0x19;
const FRAME_DECISION_OK: u8 = 0x1A;
const FRAME_METRICS: u8 = 0x1B;
const FRAME_METRICS_OK: u8 = 0x1C;
const FRAME_TRACE: u8 = 0x1D;
const FRAME_TRACE_OK: u8 = 0x1E;
const FRAME_CHECKPOINT: u8 = 0x1F;
const FRAME_CHECKPOINT_OK: u8 = 0x20;
const FRAME_SPAN_QUERY: u8 = 0x21;
const FRAME_SPAN_OK: u8 = 0x22;

const COMPE_APPLIED: u8 = 0;
const COMPE_COMMITTED: u8 = 1;
const COMPE_COMPENSATED: u8 = 2;
const COMPE_SUPPRESSED: u8 = 3;

/// The wire form of a site's oracle audit (the subset of
/// `esr_runtime::SiteAudit` a daemon can answer for itself: its protocol
/// logs and durability counters; relay-side link counters live with the
/// sender).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WireAudit {
    /// ORDUP: `(et, seq)` in application order.
    pub ordup_order: Vec<(EtId, SeqNo)>,
    /// COMMU: ETs in application order.
    pub commu_order: Vec<EtId>,
    /// RITU overwrite: winning installs `(object, version)`.
    pub ritu_installs: Vec<(ObjectId, VersionTs)>,
    /// RITU-MV: every VTNC target received, in arrival order.
    pub vtnc_targets: Vec<VersionTs>,
    /// RITU-MV: advances past the locally installed prefix.
    pub vtnc_violations: u64,
    /// COMPE: lifecycle events in order.
    pub compe_events: Vec<(EtId, CompeEvent)>,
    /// Duplicate deliveries suppressed by idempotency guards.
    pub redelivered: u64,
    /// MSets durably journalled at this site.
    pub journaled: u64,
}

/// One message of the esr-rpc protocol.
///
/// Peer-plane frames (`Hello` through `ControlSnapshot`) travel between
/// `esrd` daemons over durable per-link queues; client-plane frames
/// (`Submit` onward) are request/reply pairs between `esrctl` (or the
/// client library) and one daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Peer handshake: the dialing site announces its id and boot epoch
    /// (incremented at every daemon start, so the coordinator can spot a
    /// restarted incarnation and resend its control snapshot).
    Hello {
        /// The dialing site.
        site: SiteId,
        /// That site's boot count.
        epoch: u64,
    },
    /// Update propagation: one MSet, exactly as the simulator and the
    /// thread runtime ship it.
    MSet(MSet),
    /// Durable-link acknowledgement: the receiver journalled and applied
    /// the frame carried by queue entry `entry`; the sender may retire it.
    Ack {
        /// The sender-side queue entry being acknowledged.
        entry: u64,
    },
    /// Completion evidence for the coordinator's tracker: `site` has
    /// applied `et` (carrying the max written version for VTNC).
    Applied {
        /// The reporting site.
        site: SiteId,
        /// The applied update ET.
        et: EtId,
        /// Its max timestamped-write version, when RITU-MV needs one.
        version: Option<VersionTs>,
    },
    /// Completion notice: every site has applied `et` (releases COMMU /
    /// RITU lock-counters).
    Complete {
        /// The fully-propagated ET.
        et: EtId,
    },
    /// VTNC certificate: every version up to `ts` is installed at every
    /// site; strict RITU-MV reads may serve it.
    Vtnc {
        /// The certified horizon.
        ts: VersionTs,
    },
    /// COMPE outcome decision for `et`.
    Decision {
        /// The decided ET.
        et: EtId,
        /// `true` = commit, `false` = abort (compensate).
        commit: bool,
    },
    /// Control-plane recovery snapshot, sent by the coordinator to a
    /// (re)connecting site: the broadcasts a crashed incarnation may
    /// have lost with its process. All replay is idempotent.
    ControlSnapshot {
        /// ETs whose completion notice has been broadcast.
        completed: Vec<EtId>,
        /// COMPE decisions in broadcast order (`(et, commit)`).
        decisions: Vec<(EtId, bool)>,
        /// The furthest certified VTNC horizon.
        vtnc_max: Option<VersionTs>,
    },
    /// Coordinator heartbeat: the coordinator of `view` is alive.
    /// Followers count missed pings to drive failure suspicion; a
    /// receiver that is *ahead* of the pinger replies with its view
    /// snapshot so a stale ex-coordinator catches up fast.
    Ping {
        /// The pinger's current view.
        view: u64,
        /// The pinging site (the coordinator of `view`).
        from: SiteId,
    },
    /// View-change phase 1: `from` suspects the coordinator of its
    /// current view and proposes moving to `view`. A site that collects
    /// a majority of these joins phase 2.
    StartViewChange {
        /// The proposed (higher) view.
        view: u64,
        /// The proposing site.
        from: SiteId,
    },
    /// View-change phase 2: `from` has seen a majority of
    /// `StartViewChange(view)` and sends its control-plane evidence to
    /// the new coordinator (`view % sites`), who installs the view once
    /// a majority of these arrive.
    DoViewChange {
        /// The view being established.
        view: u64,
        /// The reporting site.
        from: SiteId,
        /// ETs whose completion `from` has observed, in order.
        completed: Vec<EtId>,
        /// COMPE decisions `from` has observed, in order.
        decisions: Vec<(EtId, bool)>,
        /// The furthest VTNC horizon `from` has observed.
        vtnc_max: Option<VersionTs>,
    },
    /// View-change phase 3 (and the coordinator's Hello answer): the
    /// new coordinator announces `view` together with the merged
    /// control-plane evidence. Receivers at a lower view install it,
    /// drop any coordinator role, and re-announce their applied ETs.
    StartView {
        /// The established view.
        view: u64,
        /// Merged completion evidence.
        completed: Vec<EtId>,
        /// Merged COMPE decisions.
        decisions: Vec<(EtId, bool)>,
        /// Merged VTNC horizon.
        vtnc_max: Option<VersionTs>,
    },
    /// A client's COMPE decision being forwarded toward the coordinator
    /// of the sender's current view. Unlike the `Decision` broadcast, a
    /// non-coordinator receiver re-forwards this toward *its* view's
    /// coordinator, so a decision in flight across a view change is
    /// never stranded.
    ForwardDecision {
        /// The decided ET.
        et: EtId,
        /// `true` = commit, `false` = abort (compensate).
        commit: bool,
    },
    /// Snapshot catch-up request: a rejoining (or freshly wiped) site
    /// asks a peer for its newest installed checkpoint container,
    /// starting at byte `offset`. Answered with [`Frame::SnapshotChunk`].
    SnapshotRequest {
        /// Byte offset into the serving peer's snapshot container.
        offset: u64,
    },
    /// One chunk of a checkpoint container. `total_len == 0` means the
    /// serving peer has no checkpoint to offer (and `bytes` is empty).
    SnapshotChunk {
        /// Total container size in bytes at the serving peer.
        total_len: u64,
        /// Byte offset of this chunk within the container.
        offset: u64,
        /// The chunk payload.
        bytes: Vec<u8>,
    },
    /// Client → daemon: submit a fully-stamped update MSet originating
    /// at this site (ET id, order tag, and version stamps are assigned
    /// by the client library).
    Submit(MSet),
    /// Reply to [`Frame::Submit`].
    SubmitOk {
        /// The accepted ET.
        et: EtId,
    },
    /// Client → daemon: run a query ET against the local replica.
    Query {
        /// Objects to read.
        read_set: Vec<ObjectId>,
        /// The epsilon budget (`u64::MAX` = unbounded).
        epsilon_limit: u64,
    },
    /// Reply to [`Frame::Query`].
    QueryOk(QueryOutcome),
    /// Client → daemon: request the full replica snapshot.
    Snapshot,
    /// Reply to [`Frame::Snapshot`] (sorted by object id).
    SnapshotOk {
        /// The replica contents.
        entries: Vec<(ObjectId, Value)>,
    },
    /// Client → daemon: settledness probe (the quiesce building block).
    Status,
    /// Reply to [`Frame::Status`].
    StatusOk {
        /// Site state machine settled (nothing held back or at risk).
        settled: bool,
        /// Unacknowledged entries across all outbound links.
        outbound_pending: u64,
        /// The daemon's boot epoch.
        epoch: u64,
        /// The daemon's current view number.
        view: u64,
        /// Does this daemon hold the coordinator role right now?
        coordinator: bool,
        /// Sequence number of the newest installed checkpoint (0 = none).
        ckpt_seq: u64,
        /// Journalled MSets that checkpoint covers.
        ckpt_covered: u64,
    },
    /// Client → daemon: request the site's audit.
    Audit,
    /// Reply to [`Frame::Audit`].
    AuditOk(WireAudit),
    /// Reply to [`Frame::Decision`] on the client plane.
    DecisionOk {
        /// The decided ET.
        et: EtId,
    },
    /// Client → daemon: scrape the metrics registry.
    Metrics,
    /// Reply to [`Frame::Metrics`]: the registry rendered as Prometheus
    /// text exposition format.
    MetricsOk {
        /// The rendered scrape body.
        text: String,
    },
    /// Client → daemon: dump the in-memory trace-event ring.
    TraceDump,
    /// Reply to [`Frame::TraceDump`]: the retained events, oldest first,
    /// as `(seq, micros, component, message)`, plus how many older
    /// events the bounded ring already evicted.
    TraceOk {
        /// Events evicted before the oldest retained one.
        dropped: u64,
        /// The retained events.
        events: Vec<(u64, u64, String, String)>,
    },
    /// Client → daemon: take a checkpoint now, regardless of the
    /// byte-interval policy.
    Checkpoint,
    /// Reply to [`Frame::Checkpoint`] once the snapshot is durably
    /// installed.
    CheckpointOk {
        /// The installed checkpoint's sequence number.
        seq: u64,
        /// Journalled MSets the checkpoint covers.
        covered: u64,
    },
    /// Client → daemon: dump the daemon's span ring, filtered to one
    /// ET's records (`esrctl spans` scrapes every site and merges).
    SpanQuery {
        /// Raw ET id to filter on; `u64::MAX` selects every retained
        /// span (VTNC horizon spans, which carry no ET, always match).
        et: u64,
    },
    /// Reply to [`Frame::SpanQuery`]: the matching retained spans,
    /// oldest first, as `(ring_seq, micros, rec)`, plus how many older
    /// spans the bounded ring already evicted.
    SpanOk {
        /// Spans evicted before the oldest retained one.
        dropped: u64,
        /// The matching retained spans.
        spans: Vec<(u64, u64, SpanRec)>,
    },
}

fn encode_text(b: &mut BytesMut, s: &str) {
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn decode_text(b: &mut &[u8]) -> Result<String, WireError> {
    let len = get_u32(b)? as usize;
    if b.len() < len {
        return Err(WireError::BadLength);
    }
    let (raw, rest) = b.split_at(len);
    let s = std::str::from_utf8(raw).map_err(|_| WireError::BadUtf8)?;
    *b = rest;
    Ok(s.to_owned())
}

fn decode_bytes(b: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    let n = get_count(b, 1)?;
    let (raw, rest) = b.split_at(n);
    *b = rest;
    Ok(raw.to_vec())
}

pub(crate) fn encode_version_opt(b: &mut BytesMut, v: &Option<VersionTs>) {
    match v {
        None => b.put_u8(0),
        Some(ts) => {
            b.put_u8(1);
            b.put_u64(ts.time);
            b.put_u64(ts.client.raw());
        }
    }
}

pub(crate) fn decode_version_opt(b: &mut &[u8]) -> Result<Option<VersionTs>, WireError> {
    match get_u8(b)? {
        0 => Ok(None),
        1 => {
            let time = get_u64(b)?;
            let client = ClientId(get_u64(b)?);
            Ok(Some(VersionTs::new(time, client)))
        }
        tag => Err(WireError::BadTag { field: "option", tag }),
    }
}

const SPAN_STAGES: [SpanStage; 12] = [
    SpanStage::Submit,
    SpanStage::Enqueue,
    SpanStage::Deliver,
    SpanStage::Held,
    SpanStage::Apply,
    SpanStage::Replay,
    SpanStage::CompleteCert,
    SpanStage::Complete,
    SpanStage::VtncCert,
    SpanStage::Vtnc,
    SpanStage::DecisionCert,
    SpanStage::Decision,
];

fn span_stage_tag(stage: SpanStage) -> u8 {
    SPAN_STAGES
        .iter()
        .position(|s| *s == stage)
        .unwrap_or_default() as u8
}

fn encode_u64_opt(b: &mut BytesMut, v: Option<u64>) {
    match v {
        None => b.put_u8(0),
        Some(v) => {
            b.put_u8(1);
            b.put_u64(v);
        }
    }
}

fn decode_u64_opt(b: &mut &[u8]) -> Result<Option<u64>, WireError> {
    match get_u8(b)? {
        0 => Ok(None),
        1 => Ok(Some(get_u64(b)?)),
        tag => Err(WireError::BadTag { field: "option", tag }),
    }
}

fn encode_span_rec(b: &mut BytesMut, rec: &SpanRec) {
    b.put_u8(span_stage_tag(rec.stage));
    encode_u64_opt(b, rec.et.map(EtId::raw));
    encode_u64_opt(b, rec.peer.map(SiteId::raw));
    encode_version_opt(b, &rec.version);
    encode_u64_opt(b, rec.gseq.map(SeqNo::raw));
    encode_u64_opt(b, rec.t0);
    match rec.commit {
        None => b.put_u8(0),
        Some(c) => {
            b.put_u8(1);
            b.put_u8(u8::from(c));
        }
    }
}

fn decode_span_rec(b: &mut &[u8]) -> Result<SpanRec, WireError> {
    let tag = get_u8(b)?;
    let stage = *SPAN_STAGES
        .get(tag as usize)
        .ok_or(WireError::BadTag { field: "stage", tag })?;
    let et = decode_u64_opt(b)?.map(EtId);
    let peer = decode_u64_opt(b)?.map(SiteId);
    let version = decode_version_opt(b)?;
    let gseq = decode_u64_opt(b)?.map(SeqNo);
    let t0 = decode_u64_opt(b)?;
    let commit = match get_u8(b)? {
        0 => None,
        1 => Some(decode_bool(b)?),
        tag => return Err(WireError::BadTag { field: "option", tag }),
    };
    Ok(SpanRec {
        stage,
        et,
        peer,
        version,
        gseq,
        t0,
        commit,
    })
}

/// Reads an element count and checks it against the bytes actually
/// left (at `min_elem` bytes each), so a corrupt count cannot trigger a
/// huge allocation.
pub(crate) fn get_count(b: &mut &[u8], min_elem: usize) -> Result<usize, WireError> {
    let n = get_u32(b)? as usize;
    if n.saturating_mul(min_elem) > b.remaining() {
        return Err(WireError::BadLength);
    }
    Ok(n)
}

/// Encodes the `(completed, decisions, vtnc_max)` evidence triple shared
/// by `ControlSnapshot`, `DoViewChange`, and `StartView`.
fn encode_evidence(
    b: &mut BytesMut,
    completed: &[EtId],
    decisions: &[(EtId, bool)],
    vtnc_max: &Option<VersionTs>,
) {
    b.put_u32(completed.len() as u32);
    for et in completed {
        b.put_u64(et.raw());
    }
    b.put_u32(decisions.len() as u32);
    for (et, commit) in decisions {
        b.put_u64(et.raw());
        b.put_u8(u8::from(*commit));
    }
    encode_version_opt(b, vtnc_max);
}

type Evidence = (Vec<EtId>, Vec<(EtId, bool)>, Option<VersionTs>);

fn decode_evidence(b: &mut &[u8]) -> Result<Evidence, WireError> {
    let n = get_count(b, 8)?;
    let mut completed = Vec::with_capacity(n);
    for _ in 0..n {
        completed.push(EtId(get_u64(b)?));
    }
    let n = get_count(b, 9)?;
    let mut decisions = Vec::with_capacity(n);
    for _ in 0..n {
        let et = EtId(get_u64(b)?);
        decisions.push((et, decode_bool(b)?));
    }
    let vtnc_max = decode_version_opt(b)?;
    Ok((completed, decisions, vtnc_max))
}

/// Encodes a frame into a self-contained byte payload.
pub fn encode_frame(frame: &Frame) -> Bytes {
    let mut b = BytesMut::with_capacity(64);
    match frame {
        Frame::Hello { site, epoch } => {
            b.put_u8(FRAME_HELLO);
            b.put_u64(site.raw());
            b.put_u64(*epoch);
        }
        Frame::MSet(mset) => {
            b.put_u8(FRAME_MSET);
            encode_mset_into(&mut b, mset);
        }
        Frame::Ack { entry } => {
            b.put_u8(FRAME_ACK);
            b.put_u64(*entry);
        }
        Frame::Applied { site, et, version } => {
            b.put_u8(FRAME_APPLIED);
            b.put_u64(site.raw());
            b.put_u64(et.raw());
            encode_version_opt(&mut b, version);
        }
        Frame::Complete { et } => {
            b.put_u8(FRAME_COMPLETE);
            b.put_u64(et.raw());
        }
        Frame::Vtnc { ts } => {
            b.put_u8(FRAME_VTNC);
            b.put_u64(ts.time);
            b.put_u64(ts.client.raw());
        }
        Frame::Decision { et, commit } => {
            b.put_u8(FRAME_DECISION);
            b.put_u64(et.raw());
            b.put_u8(u8::from(*commit));
        }
        Frame::ControlSnapshot {
            completed,
            decisions,
            vtnc_max,
        } => {
            b.put_u8(FRAME_CONTROL_SNAPSHOT);
            encode_evidence(&mut b, completed, decisions, vtnc_max);
        }
        Frame::Ping { view, from } => {
            b.put_u8(FRAME_PING);
            b.put_u64(*view);
            b.put_u64(from.raw());
        }
        Frame::StartViewChange { view, from } => {
            b.put_u8(FRAME_START_VIEW_CHANGE);
            b.put_u64(*view);
            b.put_u64(from.raw());
        }
        Frame::DoViewChange {
            view,
            from,
            completed,
            decisions,
            vtnc_max,
        } => {
            b.put_u8(FRAME_DO_VIEW_CHANGE);
            b.put_u64(*view);
            b.put_u64(from.raw());
            encode_evidence(&mut b, completed, decisions, vtnc_max);
        }
        Frame::StartView {
            view,
            completed,
            decisions,
            vtnc_max,
        } => {
            b.put_u8(FRAME_START_VIEW);
            b.put_u64(*view);
            encode_evidence(&mut b, completed, decisions, vtnc_max);
        }
        Frame::ForwardDecision { et, commit } => {
            b.put_u8(FRAME_FORWARD_DECISION);
            b.put_u64(et.raw());
            b.put_u8(u8::from(*commit));
        }
        Frame::SnapshotRequest { offset } => {
            b.put_u8(FRAME_SNAPSHOT_REQUEST);
            b.put_u64(*offset);
        }
        Frame::SnapshotChunk {
            total_len,
            offset,
            bytes,
        } => {
            b.put_u8(FRAME_SNAPSHOT_CHUNK);
            b.put_u64(*total_len);
            b.put_u64(*offset);
            b.put_u32(bytes.len() as u32);
            b.put_slice(bytes);
        }
        Frame::Submit(mset) => {
            b.put_u8(FRAME_SUBMIT);
            encode_mset_into(&mut b, mset);
        }
        Frame::SubmitOk { et } => {
            b.put_u8(FRAME_SUBMIT_OK);
            b.put_u64(et.raw());
        }
        Frame::Query {
            read_set,
            epsilon_limit,
        } => {
            b.put_u8(FRAME_QUERY);
            b.put_u64(*epsilon_limit);
            b.put_u32(read_set.len() as u32);
            for o in read_set {
                b.put_u64(o.raw());
            }
        }
        Frame::QueryOk(out) => {
            b.put_u8(FRAME_QUERY_OK);
            b.put_u8(u8::from(out.admitted));
            b.put_u64(out.charged);
            b.put_u32(out.values.len() as u32);
            for v in &out.values {
                encode_value(&mut b, v);
            }
        }
        Frame::Snapshot => {
            b.put_u8(FRAME_SNAPSHOT);
        }
        Frame::SnapshotOk { entries } => {
            b.put_u8(FRAME_SNAPSHOT_OK);
            b.put_u32(entries.len() as u32);
            for (o, v) in entries {
                b.put_u64(o.raw());
                encode_value(&mut b, v);
            }
        }
        Frame::Status => {
            b.put_u8(FRAME_STATUS);
        }
        Frame::StatusOk {
            settled,
            outbound_pending,
            epoch,
            view,
            coordinator,
            ckpt_seq,
            ckpt_covered,
        } => {
            b.put_u8(FRAME_STATUS_OK);
            b.put_u8(u8::from(*settled));
            b.put_u64(*outbound_pending);
            b.put_u64(*epoch);
            b.put_u64(*view);
            b.put_u8(u8::from(*coordinator));
            b.put_u64(*ckpt_seq);
            b.put_u64(*ckpt_covered);
        }
        Frame::Audit => {
            b.put_u8(FRAME_AUDIT);
        }
        Frame::AuditOk(a) => {
            b.put_u8(FRAME_AUDIT_OK);
            b.put_u32(a.ordup_order.len() as u32);
            for (et, seq) in &a.ordup_order {
                b.put_u64(et.raw());
                b.put_u64(seq.raw());
            }
            b.put_u32(a.commu_order.len() as u32);
            for et in &a.commu_order {
                b.put_u64(et.raw());
            }
            b.put_u32(a.ritu_installs.len() as u32);
            for (o, ts) in &a.ritu_installs {
                b.put_u64(o.raw());
                b.put_u64(ts.time);
                b.put_u64(ts.client.raw());
            }
            b.put_u32(a.vtnc_targets.len() as u32);
            for ts in &a.vtnc_targets {
                b.put_u64(ts.time);
                b.put_u64(ts.client.raw());
            }
            b.put_u64(a.vtnc_violations);
            b.put_u32(a.compe_events.len() as u32);
            for (et, ev) in &a.compe_events {
                b.put_u64(et.raw());
                b.put_u8(match ev {
                    CompeEvent::Applied => COMPE_APPLIED,
                    CompeEvent::Committed => COMPE_COMMITTED,
                    CompeEvent::Compensated => COMPE_COMPENSATED,
                    CompeEvent::Suppressed => COMPE_SUPPRESSED,
                });
            }
            b.put_u64(a.redelivered);
            b.put_u64(a.journaled);
        }
        Frame::DecisionOk { et } => {
            b.put_u8(FRAME_DECISION_OK);
            b.put_u64(et.raw());
        }
        Frame::Metrics => {
            b.put_u8(FRAME_METRICS);
        }
        Frame::MetricsOk { text } => {
            b.put_u8(FRAME_METRICS_OK);
            encode_text(&mut b, text);
        }
        Frame::TraceDump => {
            b.put_u8(FRAME_TRACE);
        }
        Frame::Checkpoint => {
            b.put_u8(FRAME_CHECKPOINT);
        }
        Frame::CheckpointOk { seq, covered } => {
            b.put_u8(FRAME_CHECKPOINT_OK);
            b.put_u64(*seq);
            b.put_u64(*covered);
        }
        Frame::TraceOk { dropped, events } => {
            b.put_u8(FRAME_TRACE_OK);
            b.put_u64(*dropped);
            b.put_u32(events.len() as u32);
            for (seq, micros, component, message) in events {
                b.put_u64(*seq);
                b.put_u64(*micros);
                encode_text(&mut b, component);
                encode_text(&mut b, message);
            }
        }
        Frame::SpanQuery { et } => {
            b.put_u8(FRAME_SPAN_QUERY);
            b.put_u64(*et);
        }
        Frame::SpanOk { dropped, spans } => {
            b.put_u8(FRAME_SPAN_OK);
            b.put_u64(*dropped);
            b.put_u32(spans.len() as u32);
            for (seq, micros, rec) in spans {
                b.put_u64(*seq);
                b.put_u64(*micros);
                encode_span_rec(&mut b, rec);
            }
        }
    }
    b.freeze()
}

/// Decodes a frame produced by [`encode_frame`]. Total: any byte slice
/// yields a frame or an error, never a panic.
pub fn decode_frame(payload: &Bytes) -> Result<Frame, WireError> {
    let mut b = payload.as_ref();
    let frame = match get_u8(&mut b)? {
        FRAME_HELLO => Frame::Hello {
            site: SiteId(get_u64(&mut b)?),
            epoch: get_u64(&mut b)?,
        },
        FRAME_MSET => Frame::MSet(decode_mset_from(&mut b)?),
        FRAME_ACK => Frame::Ack {
            entry: get_u64(&mut b)?,
        },
        FRAME_APPLIED => Frame::Applied {
            site: SiteId(get_u64(&mut b)?),
            et: EtId(get_u64(&mut b)?),
            version: decode_version_opt(&mut b)?,
        },
        FRAME_COMPLETE => Frame::Complete {
            et: EtId(get_u64(&mut b)?),
        },
        FRAME_VTNC => {
            let time = get_u64(&mut b)?;
            let client = ClientId(get_u64(&mut b)?);
            Frame::Vtnc {
                ts: VersionTs::new(time, client),
            }
        }
        FRAME_DECISION => Frame::Decision {
            et: EtId(get_u64(&mut b)?),
            commit: decode_bool(&mut b)?,
        },
        FRAME_CONTROL_SNAPSHOT => {
            let (completed, decisions, vtnc_max) = decode_evidence(&mut b)?;
            Frame::ControlSnapshot {
                completed,
                decisions,
                vtnc_max,
            }
        }
        FRAME_PING => Frame::Ping {
            view: get_u64(&mut b)?,
            from: SiteId(get_u64(&mut b)?),
        },
        FRAME_START_VIEW_CHANGE => Frame::StartViewChange {
            view: get_u64(&mut b)?,
            from: SiteId(get_u64(&mut b)?),
        },
        FRAME_DO_VIEW_CHANGE => {
            let view = get_u64(&mut b)?;
            let from = SiteId(get_u64(&mut b)?);
            let (completed, decisions, vtnc_max) = decode_evidence(&mut b)?;
            Frame::DoViewChange {
                view,
                from,
                completed,
                decisions,
                vtnc_max,
            }
        }
        FRAME_START_VIEW => {
            let view = get_u64(&mut b)?;
            let (completed, decisions, vtnc_max) = decode_evidence(&mut b)?;
            Frame::StartView {
                view,
                completed,
                decisions,
                vtnc_max,
            }
        }
        FRAME_FORWARD_DECISION => Frame::ForwardDecision {
            et: EtId(get_u64(&mut b)?),
            commit: decode_bool(&mut b)?,
        },
        FRAME_SNAPSHOT_REQUEST => Frame::SnapshotRequest {
            offset: get_u64(&mut b)?,
        },
        FRAME_SNAPSHOT_CHUNK => Frame::SnapshotChunk {
            total_len: get_u64(&mut b)?,
            offset: get_u64(&mut b)?,
            bytes: decode_bytes(&mut b)?,
        },
        FRAME_SUBMIT => Frame::Submit(decode_mset_from(&mut b)?),
        FRAME_SUBMIT_OK => Frame::SubmitOk {
            et: EtId(get_u64(&mut b)?),
        },
        FRAME_QUERY => {
            let epsilon_limit = get_u64(&mut b)?;
            let n = get_count(&mut b, 8)?;
            let mut read_set = Vec::with_capacity(n);
            for _ in 0..n {
                read_set.push(ObjectId(get_u64(&mut b)?));
            }
            Frame::Query {
                read_set,
                epsilon_limit,
            }
        }
        FRAME_QUERY_OK => {
            let admitted = decode_bool(&mut b)?;
            let charged = get_u64(&mut b)?;
            let n = get_count(&mut b, 5)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(decode_value(&mut b)?);
            }
            Frame::QueryOk(QueryOutcome {
                values,
                charged,
                admitted,
            })
        }
        FRAME_SNAPSHOT => Frame::Snapshot,
        FRAME_SNAPSHOT_OK => {
            let n = get_count(&mut b, 13)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let o = ObjectId(get_u64(&mut b)?);
                entries.push((o, decode_value(&mut b)?));
            }
            Frame::SnapshotOk { entries }
        }
        FRAME_STATUS => Frame::Status,
        FRAME_STATUS_OK => Frame::StatusOk {
            settled: decode_bool(&mut b)?,
            outbound_pending: get_u64(&mut b)?,
            epoch: get_u64(&mut b)?,
            view: get_u64(&mut b)?,
            coordinator: decode_bool(&mut b)?,
            ckpt_seq: get_u64(&mut b)?,
            ckpt_covered: get_u64(&mut b)?,
        },
        FRAME_AUDIT => Frame::Audit,
        FRAME_AUDIT_OK => {
            let mut a = WireAudit::default();
            let n = get_count(&mut b, 16)?;
            for _ in 0..n {
                let et = EtId(get_u64(&mut b)?);
                a.ordup_order.push((et, SeqNo(get_u64(&mut b)?)));
            }
            let n = get_count(&mut b, 8)?;
            for _ in 0..n {
                a.commu_order.push(EtId(get_u64(&mut b)?));
            }
            let n = get_count(&mut b, 24)?;
            for _ in 0..n {
                let o = ObjectId(get_u64(&mut b)?);
                let time = get_u64(&mut b)?;
                let client = ClientId(get_u64(&mut b)?);
                a.ritu_installs.push((o, VersionTs::new(time, client)));
            }
            let n = get_count(&mut b, 16)?;
            for _ in 0..n {
                let time = get_u64(&mut b)?;
                let client = ClientId(get_u64(&mut b)?);
                a.vtnc_targets.push(VersionTs::new(time, client));
            }
            a.vtnc_violations = get_u64(&mut b)?;
            let n = get_count(&mut b, 9)?;
            for _ in 0..n {
                let et = EtId(get_u64(&mut b)?);
                let ev = match get_u8(&mut b)? {
                    COMPE_APPLIED => CompeEvent::Applied,
                    COMPE_COMMITTED => CompeEvent::Committed,
                    COMPE_COMPENSATED => CompeEvent::Compensated,
                    COMPE_SUPPRESSED => CompeEvent::Suppressed,
                    tag => return Err(WireError::BadTag { field: "compe", tag }),
                };
                a.compe_events.push((et, ev));
            }
            a.redelivered = get_u64(&mut b)?;
            a.journaled = get_u64(&mut b)?;
            Frame::AuditOk(a)
        }
        FRAME_DECISION_OK => Frame::DecisionOk {
            et: EtId(get_u64(&mut b)?),
        },
        FRAME_METRICS => Frame::Metrics,
        FRAME_METRICS_OK => Frame::MetricsOk {
            text: decode_text(&mut b)?,
        },
        FRAME_TRACE => Frame::TraceDump,
        FRAME_TRACE_OK => {
            let dropped = get_u64(&mut b)?;
            // Each event is at least 24 bytes (two u64s + two counts).
            let n = get_count(&mut b, 24)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                let seq = get_u64(&mut b)?;
                let micros = get_u64(&mut b)?;
                let component = decode_text(&mut b)?;
                let message = decode_text(&mut b)?;
                events.push((seq, micros, component, message));
            }
            Frame::TraceOk { dropped, events }
        }
        FRAME_CHECKPOINT => Frame::Checkpoint,
        FRAME_CHECKPOINT_OK => Frame::CheckpointOk {
            seq: get_u64(&mut b)?,
            covered: get_u64(&mut b)?,
        },
        FRAME_SPAN_QUERY => Frame::SpanQuery {
            et: get_u64(&mut b)?,
        },
        FRAME_SPAN_OK => {
            let dropped = get_u64(&mut b)?;
            // Each span is at least 23 bytes (two u64s + stage + six
            // presence bytes).
            let n = get_count(&mut b, 23)?;
            let mut spans = Vec::with_capacity(n);
            for _ in 0..n {
                let seq = get_u64(&mut b)?;
                let micros = get_u64(&mut b)?;
                spans.push((seq, micros, decode_span_rec(&mut b)?));
            }
            Frame::SpanOk { dropped, spans }
        }
        tag => return Err(WireError::BadTag { field: "frame", tag }),
    };
    Ok(frame)
}

pub(crate) fn decode_bool(b: &mut &[u8]) -> Result<bool, WireError> {
    match get_u8(b)? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(WireError::BadTag { field: "bool", tag }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn roundtrip(mset: &MSet) {
        let bytes = encode_mset(mset);
        let back = decode_mset(&bytes).expect("decode");
        assert_eq!(&back, mset);
    }

    #[test]
    fn every_operation_variant_round_trips() {
        let ops = vec![
            ObjectOp::new(ObjectId(0), Operation::Read),
            ObjectOp::new(ObjectId(1), Operation::Write(Value::Int(-7))),
            ObjectOp::new(ObjectId(2), Operation::Incr(i64::MAX)),
            ObjectOp::new(ObjectId(3), Operation::Decr(i64::MIN + 1)),
            ObjectOp::new(ObjectId(4), Operation::MulBy(3)),
            ObjectOp::new(ObjectId(5), Operation::DivBy(-2)),
            ObjectOp::new(ObjectId(6), Operation::InsertElem(42)),
            ObjectOp::new(ObjectId(7), Operation::RemoveElem(-42)),
            ObjectOp::new(
                ObjectId(8),
                Operation::TimestampedWrite(
                    VersionTs::new(99, ClientId(3)),
                    Value::Text("héllo".into()),
                ),
            ),
            ObjectOp::new(
                ObjectId(9),
                Operation::Write(Value::Set(BTreeSet::from([-1, 0, 7]))),
            ),
        ];
        roundtrip(&MSet::new(EtId(12), SiteId(2), ops));
    }

    #[test]
    fn every_order_tag_round_trips() {
        let ops = vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))];
        roundtrip(&MSet::new(EtId(1), SiteId(0), ops.clone()));
        roundtrip(&MSet::new(EtId(2), SiteId(1), ops.clone()).sequenced(SeqNo(77)));
        roundtrip(
            &MSet::new(EtId(3), SiteId(2), ops)
                .lamport(LamportTs::new(5, SiteId(2)), SeqNo(4)),
        );
    }

    #[test]
    fn empty_mset_round_trips() {
        roundtrip(&MSet::new(EtId(0), SiteId(0), vec![]));
    }

    #[test]
    fn client_identity_round_trips() {
        let ops = vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))];
        roundtrip(&MSet::new(EtId(4), SiteId(1), ops).from_client(ClientId(9), 17));
    }

    #[test]
    fn truncation_at_any_prefix_is_an_error_not_a_panic() {
        let mset = MSet::new(
            EtId(5),
            SiteId(1),
            vec![
                ObjectOp::new(ObjectId(1), Operation::Write(Value::Text("abc".into()))),
                ObjectOp::new(
                    ObjectId(2),
                    Operation::TimestampedWrite(
                        VersionTs::new(8, ClientId(1)),
                        Value::Set(BTreeSet::from([1, 2])),
                    ),
                ),
            ],
        )
        .sequenced(SeqNo(3));
        let bytes = encode_mset(&mset);
        for cut in 0..bytes.len() {
            let prefix = Bytes::copy_from_slice(&bytes.as_slice()[..cut]);
            assert!(
                decode_mset(&prefix).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        assert!(decode_mset(&bytes).is_ok());
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mset = MSet::new(
            EtId(1),
            SiteId(0),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))],
        );
        let mut raw = encode_mset(&mset).to_vec();
        // Byte 16 is the order tag.
        raw[16] = 0xEE;
        assert!(matches!(
            decode_mset(&Bytes::from(raw)),
            Err(WireError::BadTag { field: "order", .. })
        ));
    }

    #[test]
    fn corrupt_op_count_is_rejected_without_allocation_blowup() {
        let mset = MSet::new(EtId(1), SiteId(0), vec![]);
        let mut raw = encode_mset(&mset).to_vec();
        // The op count sits just before the trailing client + t0 bytes.
        let n = raw.len();
        raw[n - 6..n - 2].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_mset(&Bytes::from(raw)), Err(WireError::BadLength));
    }

    #[test]
    fn trace_context_round_trips() {
        let ops = vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))];
        roundtrip(&MSet::new(EtId(6), SiteId(2), ops.clone()).traced(1_723_000_000_000_000));
        roundtrip(
            &MSet::new(EtId(7), SiteId(0), ops)
                .from_client(ClientId(3), 8)
                .traced(u64::MAX),
        );
    }

    fn roundtrip_frame(frame: &Frame) {
        let bytes = encode_frame(frame);
        let back = decode_frame(&bytes).expect("decode frame");
        assert_eq!(&back, frame);
    }

    fn sample_mset() -> MSet {
        MSet::new(
            EtId(12),
            SiteId(2),
            vec![
                ObjectOp::new(ObjectId(1), Operation::Incr(3)),
                ObjectOp::new(
                    ObjectId(2),
                    Operation::TimestampedWrite(
                        VersionTs::new(5, ClientId(1)),
                        Value::Text("x".into()),
                    ),
                ),
            ],
        )
        .sequenced(SeqNo(4))
    }

    #[test]
    fn every_frame_variant_round_trips() {
        let frames = [
            Frame::Hello {
                site: SiteId(3),
                epoch: 7,
            },
            Frame::MSet(sample_mset()),
            Frame::Ack { entry: u64::MAX },
            Frame::Applied {
                site: SiteId(1),
                et: EtId(9),
                version: None,
            },
            Frame::Applied {
                site: SiteId(2),
                et: EtId(10),
                version: Some(VersionTs::new(44, ClientId(6))),
            },
            Frame::Complete { et: EtId(11) },
            Frame::Vtnc {
                ts: VersionTs::new(17, ClientId(0)),
            },
            Frame::Decision {
                et: EtId(13),
                commit: true,
            },
            Frame::ControlSnapshot {
                completed: vec![EtId(1), EtId(2)],
                decisions: vec![(EtId(3), true), (EtId(4), false)],
                vtnc_max: Some(VersionTs::new(9, ClientId(2))),
            },
            Frame::ControlSnapshot {
                completed: vec![],
                decisions: vec![],
                vtnc_max: None,
            },
            Frame::Ping {
                view: 3,
                from: SiteId(0),
            },
            Frame::StartViewChange {
                view: 4,
                from: SiteId(2),
            },
            Frame::DoViewChange {
                view: 4,
                from: SiteId(1),
                completed: vec![EtId(1), EtId(5)],
                decisions: vec![(EtId(2), false)],
                vtnc_max: Some(VersionTs::new(6, ClientId(1))),
            },
            Frame::DoViewChange {
                view: 1,
                from: SiteId(2),
                completed: vec![],
                decisions: vec![],
                vtnc_max: None,
            },
            Frame::StartView {
                view: 4,
                completed: vec![EtId(1)],
                decisions: vec![(EtId(2), true)],
                vtnc_max: None,
            },
            Frame::ForwardDecision {
                et: EtId(8),
                commit: false,
            },
            Frame::Submit(sample_mset()),
            Frame::Submit(sample_mset().from_client(ClientId(4), 11)),
            Frame::SubmitOk { et: EtId(12) },
            Frame::Query {
                read_set: vec![ObjectId(1), ObjectId(2)],
                epsilon_limit: u64::MAX,
            },
            Frame::QueryOk(QueryOutcome {
                values: vec![Value::Int(-4), Value::Set(BTreeSet::from([1, 2]))],
                charged: 3,
                admitted: true,
            }),
            Frame::QueryOk(QueryOutcome::rejected()),
            Frame::Snapshot,
            Frame::SnapshotOk {
                entries: vec![(ObjectId(0), Value::Int(1)), (ObjectId(1), Value::Text("t".into()))],
            },
            Frame::Status,
            Frame::StatusOk {
                settled: true,
                outbound_pending: 5,
                epoch: 2,
                view: 3,
                coordinator: false,
                ckpt_seq: 4,
                ckpt_covered: 190,
            },
            Frame::SnapshotRequest { offset: 65_536 },
            Frame::SnapshotChunk {
                total_len: 10,
                offset: 3,
                bytes: vec![1, 2, 3, 4, 5, 6, 7],
            },
            Frame::SnapshotChunk {
                total_len: 0,
                offset: 0,
                bytes: vec![],
            },
            Frame::Checkpoint,
            Frame::CheckpointOk {
                seq: 3,
                covered: 812,
            },
            Frame::Audit,
            Frame::AuditOk(WireAudit {
                ordup_order: vec![(EtId(1), SeqNo(0)), (EtId(2), SeqNo(1))],
                commu_order: vec![EtId(3)],
                ritu_installs: vec![(ObjectId(7), VersionTs::new(3, ClientId(1)))],
                vtnc_targets: vec![VersionTs::new(3, ClientId(1))],
                vtnc_violations: 1,
                compe_events: vec![
                    (EtId(4), CompeEvent::Applied),
                    (EtId(4), CompeEvent::Committed),
                    (EtId(5), CompeEvent::Compensated),
                    (EtId(6), CompeEvent::Suppressed),
                ],
                redelivered: 2,
                journaled: 8,
            }),
            Frame::AuditOk(WireAudit::default()),
            Frame::DecisionOk { et: EtId(13) },
            Frame::Metrics,
            Frame::MetricsOk {
                text: "esr_msets_applied_total{site=\"0\"} 3\n".to_owned(),
            },
            Frame::MetricsOk { text: String::new() },
            Frame::TraceDump,
            Frame::TraceOk {
                dropped: 4,
                events: vec![
                    (5, 1_000, "apply".to_owned(), "deliver et=5".to_owned()),
                    (6, 2_000, "rpc".to_owned(), "query admitted".to_owned()),
                ],
            },
            Frame::TraceOk {
                dropped: 0,
                events: vec![],
            },
            Frame::Submit(sample_mset().traced(1_723_000_000_000_000)),
            Frame::MSet(sample_mset().from_client(ClientId(2), 3).traced(55)),
            Frame::SpanQuery { et: 12 },
            Frame::SpanQuery { et: u64::MAX },
            Frame::SpanOk {
                dropped: 2,
                spans: vec![
                    (
                        7,
                        1_000,
                        SpanRec::new(SpanStage::Submit, EtId(12)).with_t0(Some(990)),
                    ),
                    (
                        8,
                        1_010,
                        SpanRec::new(SpanStage::Enqueue, EtId(12)).to_peer(SiteId(1)),
                    ),
                    (
                        9,
                        1_400,
                        SpanRec::new(SpanStage::Apply, EtId(12))
                            .with_version(Some(VersionTs::new(5, ClientId(1))))
                            .with_gseq(Some(SeqNo(4))),
                    ),
                    (
                        10,
                        1_500,
                        SpanRec::vtnc(SpanStage::Vtnc, VersionTs::new(5, ClientId(1))),
                    ),
                    (
                        11,
                        1_600,
                        SpanRec::new(SpanStage::Decision, EtId(13)).with_commit(false),
                    ),
                ],
            },
            Frame::SpanOk {
                dropped: 0,
                spans: vec![],
            },
        ];
        for frame in &frames {
            roundtrip_frame(frame);
        }
    }

    #[test]
    fn frame_truncation_at_any_prefix_is_an_error_not_a_panic() {
        let frames = [
            Frame::ControlSnapshot {
                completed: vec![EtId(1)],
                decisions: vec![(EtId(2), false)],
                vtnc_max: Some(VersionTs::new(4, ClientId(1))),
            },
            Frame::DoViewChange {
                view: 2,
                from: SiteId(1),
                completed: vec![EtId(1)],
                decisions: vec![(EtId(2), true)],
                vtnc_max: Some(VersionTs::new(3, ClientId(0))),
            },
            Frame::StartView {
                view: 2,
                completed: vec![EtId(1)],
                decisions: vec![],
                vtnc_max: None,
            },
            Frame::Submit(sample_mset().from_client(ClientId(2), 5)),
            Frame::MetricsOk {
                text: "esr_backlog{site=\"1\"} 2\n".to_owned(),
            },
            Frame::TraceOk {
                dropped: 1,
                events: vec![(2, 30, "apply".to_owned(), "x".to_owned())],
            },
            Frame::SnapshotChunk {
                total_len: 5,
                offset: 0,
                bytes: vec![9, 9, 9],
            },
            Frame::StatusOk {
                settled: false,
                outbound_pending: 1,
                epoch: 2,
                view: 0,
                coordinator: true,
                ckpt_seq: 1,
                ckpt_covered: 7,
            },
            Frame::Submit(sample_mset().traced(9_000)),
            Frame::SpanOk {
                dropped: 1,
                spans: vec![(
                    3,
                    77,
                    SpanRec::new(SpanStage::Deliver, EtId(4)).with_t0(Some(70)),
                )],
            },
        ];
        for frame in &frames {
            let bytes = encode_frame(frame);
            for cut in 0..bytes.len() {
                let prefix = Bytes::copy_from_slice(&bytes.as_slice()[..cut]);
                assert!(
                    decode_frame(&prefix).is_err(),
                    "frame prefix of {cut} bytes decoded successfully"
                );
            }
            assert!(decode_frame(&bytes).is_ok());
        }
    }

    #[test]
    fn unknown_frame_tag_is_rejected() {
        let raw = Bytes::from(vec![0xEEu8, 0, 0, 0]);
        assert!(matches!(
            decode_frame(&raw),
            Err(WireError::BadTag { field: "frame", .. })
        ));
    }

    #[test]
    fn corrupt_frame_count_is_rejected_without_allocation_blowup() {
        let frame = Frame::Query {
            read_set: vec![],
            epsilon_limit: 0,
        };
        let mut raw = encode_frame(&frame).to_vec();
        // Last four bytes are the read-set count.
        let n = raw.len();
        raw[n - 4..].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_frame(&Bytes::from(raw)), Err(WireError::BadLength));
    }
}
