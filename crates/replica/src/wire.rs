//! Wire codec for [`MSet`]s.
//!
//! The chaos runtime backs outbound delivery with durable
//! [`esr_storage::stable_queue::FileQueue`]s whose payloads are opaque
//! bytes, and each site keeps a durable apply journal of the MSets it has
//! applied. Both need a complete, self-describing MSet encoding — every
//! [`Operation`] and [`Value`] variant plus all three [`OrderTag`]
//! shapes — so a site restarted after a crash can reconstruct exactly
//! the updates it had seen.
//!
//! The format is a simple tagged binary layout (big-endian integers, no
//! compression): stable within this workspace, not a cross-version
//! interchange format. Decoding is total: any byte slice either yields
//! an MSet or a [`WireError`], never a panic — torn queue tails surface
//! as errors the recovery path can skip.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use esr_core::ids::{ClientId, EtId, LamportTs, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;

use crate::mset::{MSet, OrderTag};

/// Why a byte payload failed to decode as an MSet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the announced structure was complete.
    Truncated,
    /// An unknown tag byte for the given field.
    BadTag {
        /// Which field carried the tag ("order", "op", "value").
        field: &'static str,
        /// The offending byte.
        tag: u8,
    },
    /// A length prefix exceeded the remaining payload (corrupt frame).
    BadLength,
    /// Embedded text was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::BadTag { field, tag } => write!(f, "unknown {field} tag {tag:#04x}"),
            WireError::BadLength => write!(f, "length prefix exceeds payload"),
            WireError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

const ORDER_UNORDERED: u8 = 0;
const ORDER_SEQUENCED: u8 = 1;
const ORDER_LAMPORT: u8 = 2;

const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_INCR: u8 = 2;
const OP_DECR: u8 = 3;
const OP_MULBY: u8 = 4;
const OP_DIVBY: u8 = 5;
const OP_INSERT: u8 = 6;
const OP_REMOVE: u8 = 7;
const OP_TSWRITE: u8 = 8;

const VAL_INT: u8 = 0;
const VAL_TEXT: u8 = 1;
const VAL_SET: u8 = 2;

/// Encodes an MSet into a self-contained byte payload.
pub fn encode_mset(mset: &MSet) -> Bytes {
    let mut b = BytesMut::with_capacity(32 + 16 * mset.ops.len());
    b.put_u64(mset.et.raw());
    b.put_u64(mset.origin.raw());
    match mset.order {
        OrderTag::Unordered => b.put_u8(ORDER_UNORDERED),
        OrderTag::Sequenced(seq) => {
            b.put_u8(ORDER_SEQUENCED);
            b.put_u64(seq.raw());
        }
        OrderTag::Lamport { ts, fifo } => {
            b.put_u8(ORDER_LAMPORT);
            b.put_u64(ts.counter);
            b.put_u64(ts.site.raw());
            b.put_u64(fifo.raw());
        }
    }
    b.put_u32(mset.ops.len() as u32);
    for op in &mset.ops {
        b.put_u64(op.object.raw());
        encode_op(&mut b, &op.op);
    }
    b.freeze()
}

fn encode_op(b: &mut BytesMut, op: &Operation) {
    match op {
        Operation::Read => b.put_u8(OP_READ),
        Operation::Write(v) => {
            b.put_u8(OP_WRITE);
            encode_value(b, v);
        }
        Operation::Incr(n) => {
            b.put_u8(OP_INCR);
            b.put_i64(*n);
        }
        Operation::Decr(n) => {
            b.put_u8(OP_DECR);
            b.put_i64(*n);
        }
        Operation::MulBy(k) => {
            b.put_u8(OP_MULBY);
            b.put_i64(*k);
        }
        Operation::DivBy(k) => {
            b.put_u8(OP_DIVBY);
            b.put_i64(*k);
        }
        Operation::InsertElem(e) => {
            b.put_u8(OP_INSERT);
            b.put_i64(*e);
        }
        Operation::RemoveElem(e) => {
            b.put_u8(OP_REMOVE);
            b.put_i64(*e);
        }
        Operation::TimestampedWrite(ts, v) => {
            b.put_u8(OP_TSWRITE);
            b.put_u64(ts.time);
            b.put_u64(ts.client.raw());
            encode_value(b, v);
        }
    }
}

fn encode_value(b: &mut BytesMut, v: &Value) {
    match v {
        Value::Int(i) => {
            b.put_u8(VAL_INT);
            b.put_i64(*i);
        }
        Value::Text(s) => {
            b.put_u8(VAL_TEXT);
            b.put_u32(s.len() as u32);
            b.put_slice(s.as_bytes());
        }
        Value::Set(s) => {
            b.put_u8(VAL_SET);
            b.put_u32(s.len() as u32);
            for e in s {
                b.put_i64(*e);
            }
        }
    }
}

/// Decodes an MSet produced by [`encode_mset`].
pub fn decode_mset(payload: &Bytes) -> Result<MSet, WireError> {
    let mut b = payload.clone();
    let et = EtId(get_u64(&mut b)?);
    let origin = SiteId(get_u64(&mut b)?);
    let order = match get_u8(&mut b)? {
        ORDER_UNORDERED => OrderTag::Unordered,
        ORDER_SEQUENCED => OrderTag::Sequenced(SeqNo(get_u64(&mut b)?)),
        ORDER_LAMPORT => {
            let counter = get_u64(&mut b)?;
            let site = SiteId(get_u64(&mut b)?);
            let fifo = SeqNo(get_u64(&mut b)?);
            OrderTag::Lamport {
                ts: LamportTs::new(counter, site),
                fifo,
            }
        }
        tag => return Err(WireError::BadTag { field: "order", tag }),
    };
    let n = get_u32(&mut b)? as usize;
    // Each op is at least 9 bytes; reject absurd counts up front so a
    // corrupt length cannot trigger a huge allocation.
    if n > b.remaining() {
        return Err(WireError::BadLength);
    }
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let object = ObjectId(get_u64(&mut b)?);
        let op = decode_op(&mut b)?;
        ops.push(ObjectOp::new(object, op));
    }
    let mut mset = MSet::new(et, origin, ops);
    mset.order = order;
    Ok(mset)
}

fn decode_op(b: &mut Bytes) -> Result<Operation, WireError> {
    Ok(match get_u8(b)? {
        OP_READ => Operation::Read,
        OP_WRITE => Operation::Write(decode_value(b)?),
        OP_INCR => Operation::Incr(get_i64(b)?),
        OP_DECR => Operation::Decr(get_i64(b)?),
        OP_MULBY => Operation::MulBy(get_i64(b)?),
        OP_DIVBY => Operation::DivBy(get_i64(b)?),
        OP_INSERT => Operation::InsertElem(get_i64(b)?),
        OP_REMOVE => Operation::RemoveElem(get_i64(b)?),
        OP_TSWRITE => {
            let time = get_u64(b)?;
            let client = ClientId(get_u64(b)?);
            let v = decode_value(b)?;
            Operation::TimestampedWrite(VersionTs::new(time, client), v)
        }
        tag => return Err(WireError::BadTag { field: "op", tag }),
    })
}

fn decode_value(b: &mut Bytes) -> Result<Value, WireError> {
    Ok(match get_u8(b)? {
        VAL_INT => Value::Int(get_i64(b)?),
        VAL_TEXT => {
            let len = get_u32(b)? as usize;
            if b.remaining() < len {
                return Err(WireError::BadLength);
            }
            let raw = b.copy_to_bytes(len);
            let s = std::str::from_utf8(raw.as_ref()).map_err(|_| WireError::BadUtf8)?;
            Value::Text(s.to_string())
        }
        VAL_SET => {
            let len = get_u32(b)? as usize;
            if b.remaining() < len.saturating_mul(8) {
                return Err(WireError::BadLength);
            }
            let mut set = std::collections::BTreeSet::new();
            for _ in 0..len {
                set.insert(get_i64(b)?);
            }
            Value::Set(set)
        }
        tag => return Err(WireError::BadTag { field: "value", tag }),
    })
}

fn get_u8(b: &mut Bytes) -> Result<u8, WireError> {
    if b.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u8())
}

fn get_u32(b: &mut Bytes) -> Result<u32, WireError> {
    if b.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u32())
}

fn get_u64(b: &mut Bytes) -> Result<u64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u64())
}

fn get_i64(b: &mut Bytes) -> Result<i64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_i64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn roundtrip(mset: &MSet) {
        let bytes = encode_mset(mset);
        let back = decode_mset(&bytes).expect("decode");
        assert_eq!(&back, mset);
    }

    #[test]
    fn every_operation_variant_round_trips() {
        let ops = vec![
            ObjectOp::new(ObjectId(0), Operation::Read),
            ObjectOp::new(ObjectId(1), Operation::Write(Value::Int(-7))),
            ObjectOp::new(ObjectId(2), Operation::Incr(i64::MAX)),
            ObjectOp::new(ObjectId(3), Operation::Decr(i64::MIN + 1)),
            ObjectOp::new(ObjectId(4), Operation::MulBy(3)),
            ObjectOp::new(ObjectId(5), Operation::DivBy(-2)),
            ObjectOp::new(ObjectId(6), Operation::InsertElem(42)),
            ObjectOp::new(ObjectId(7), Operation::RemoveElem(-42)),
            ObjectOp::new(
                ObjectId(8),
                Operation::TimestampedWrite(
                    VersionTs::new(99, ClientId(3)),
                    Value::Text("héllo".into()),
                ),
            ),
            ObjectOp::new(
                ObjectId(9),
                Operation::Write(Value::Set(BTreeSet::from([-1, 0, 7]))),
            ),
        ];
        roundtrip(&MSet::new(EtId(12), SiteId(2), ops));
    }

    #[test]
    fn every_order_tag_round_trips() {
        let ops = vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))];
        roundtrip(&MSet::new(EtId(1), SiteId(0), ops.clone()));
        roundtrip(&MSet::new(EtId(2), SiteId(1), ops.clone()).sequenced(SeqNo(77)));
        roundtrip(
            &MSet::new(EtId(3), SiteId(2), ops)
                .lamport(LamportTs::new(5, SiteId(2)), SeqNo(4)),
        );
    }

    #[test]
    fn empty_mset_round_trips() {
        roundtrip(&MSet::new(EtId(0), SiteId(0), vec![]));
    }

    #[test]
    fn truncation_at_any_prefix_is_an_error_not_a_panic() {
        let mset = MSet::new(
            EtId(5),
            SiteId(1),
            vec![
                ObjectOp::new(ObjectId(1), Operation::Write(Value::Text("abc".into()))),
                ObjectOp::new(
                    ObjectId(2),
                    Operation::TimestampedWrite(
                        VersionTs::new(8, ClientId(1)),
                        Value::Set(BTreeSet::from([1, 2])),
                    ),
                ),
            ],
        )
        .sequenced(SeqNo(3));
        let bytes = encode_mset(&mset);
        for cut in 0..bytes.len() {
            let prefix = Bytes::copy_from_slice(&bytes.as_slice()[..cut]);
            assert!(
                decode_mset(&prefix).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        assert!(decode_mset(&bytes).is_ok());
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mset = MSet::new(
            EtId(1),
            SiteId(0),
            vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))],
        );
        let mut raw = encode_mset(&mset).to_vec();
        // Byte 16 is the order tag.
        raw[16] = 0xEE;
        assert!(matches!(
            decode_mset(&Bytes::from(raw)),
            Err(WireError::BadTag { field: "order", .. })
        ));
    }

    #[test]
    fn corrupt_op_count_is_rejected_without_allocation_blowup() {
        let mset = MSet::new(EtId(1), SiteId(0), vec![]);
        let mut raw = encode_mset(&mset).to_vec();
        // Last four bytes are the op count.
        let n = raw.len();
        raw[n - 4..].copy_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode_mset(&Bytes::from(raw)), Err(WireError::BadLength));
    }
}
