//! RITU — read-independent timestamped updates (§3.3).
//!
//! RITU updates are *blind* (no R/W dependency): timestamped overwrites.
//! They commute with respect to themselves and with reads, so delivery
//! needs no ordering; access ordering is postponed to read time.
//!
//! * [`RituOverwriteSite`] — single-version overwrite mode: the newest
//!   timestamp wins, older updates are ignored; "there is no divergence
//!   since by definition all the reads request the latest version — RITU
//!   reduces to COMMU", so divergence bounding reuses the lock-counter
//!   scheme.
//! * [`RituMvSite`] — multiversion mode over the append-only store with
//!   VTNC visibility: reads at or below the VTNC are SR; a query may read
//!   a newer version, paying one inconsistency unit per such read, and a
//!   query whose budget is exhausted falls back to the stable VTNC
//!   version instead of being rejected.

use std::collections::hash_map::Entry;
use std::collections::BTreeMap;

use esr_core::divergence::{InconsistencyCounter, LockCounters};
use esr_core::ids::{EtId, ObjectId, SiteId, VersionTs};
use esr_core::op::Operation;
use esr_core::value::Value;
use esr_obs::SiteInstruments;
use esr_storage::mvstore::MvStore;
use esr_storage::shard::FastIdMap;
use esr_storage::store::{LwwOutcome, LwwStore};

use crate::mset::MSet;
use crate::site::{QueryOutcome, ReplicaSite};

/// RITU in overwrite (last-writer-wins) mode.
#[derive(Debug)]
pub struct RituOverwriteSite {
    site: SiteId,
    store: LwwStore,
    counters: LockCounters,
    applied_ets: FastIdMap<EtId, ()>,
    applied: u64,
    redelivered: u64,
    /// Opt-in oracle audit: winning installs `(object, version)` in the
    /// order they reached the store.
    audit: Option<Vec<(ObjectId, VersionTs)>>,
    /// Metrics bundle (no-op until attached).
    obs: SiteInstruments,
}

impl RituOverwriteSite {
    /// A fresh site.
    pub fn new(site: SiteId) -> Self {
        Self {
            site,
            store: LwwStore::new(),
            counters: LockCounters::new(),
            applied_ets: FastIdMap::default(),
            applied: 0,
            redelivered: 0,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Attaches a metrics bundle: subsequent deliveries and queries
    /// tick its series (a detached bundle costs one branch).
    pub fn attach_metrics(&mut self, obs: SiteInstruments) {
        self.obs = obs;
    }

    /// Total MSets applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Duplicate deliveries this site suppressed (each one is proof the
    /// idempotency guard fired under at-least-once delivery).
    pub fn redelivered(&self) -> u64 {
        self.redelivered
    }

    /// Turns on the audit log consumed by the `esr-check` RITU
    /// timestamp-monotonicity oracle: every *winning* install is
    /// recorded as `(object, version)` in store order — losers
    /// (older-version writes the LWW arbitration ignores) never appear,
    /// so per-object versions must be strictly increasing.
    pub fn enable_audit(&mut self) {
        self.audit.get_or_insert_with(Vec::new);
    }

    /// The audit log (empty unless [`RituOverwriteSite::enable_audit`]
    /// was called before deliveries began).
    pub fn audit_log(&self) -> &[(ObjectId, VersionTs)] {
        self.audit.as_deref().unwrap_or(&[])
    }

    /// Completion notice (see [`crate::commu::CommuSite::complete`]).
    pub fn complete(&mut self, et: EtId) {
        self.counters.end_update(et);
    }

    /// The stored version of an object.
    pub fn version(&self, object: ObjectId) -> VersionTs {
        self.store.version(object)
    }

    /// Captures the site's full protocol state as a checkpoint image:
    /// store contents *with* the winning version per object (the LWW
    /// arbitration state), in-flight lock-counter holders, and the
    /// duplicate-suppression set.
    pub fn to_ckpt(&self) -> crate::ckpt::RituCkpt {
        let mut applied_ets: Vec<EtId> = self.applied_ets.keys().copied().collect();
        applied_ets.sort_unstable();
        crate::ckpt::RituCkpt {
            values: self.store.versioned_dump(),
            held: self.counters.held_sets(),
            applied_ets,
            applied: self.applied,
            redelivered: self.redelivered,
        }
    }

    /// Rebuilds a site from a checkpoint image, mid-protocol: restored
    /// versions keep arbitrating against late timestamped writes, so an
    /// older write redelivered after the restart still loses.
    pub fn from_ckpt(site: SiteId, c: crate::ckpt::RituCkpt) -> Self {
        let mut store = LwwStore::new();
        for (object, ts, value) in c.values {
            let _ = store.apply_timestamped(object, ts, value);
        }
        let mut counters = LockCounters::new();
        counters.begin_updates(c.held);
        Self {
            site,
            store,
            counters,
            applied_ets: c.applied_ets.into_iter().map(|et| (et, ())).collect(),
            applied: c.applied,
            redelivered: c.redelivered,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }
}

impl ReplicaSite for RituOverwriteSite {
    fn method_name(&self) -> &'static str {
        "RITU"
    }

    fn site_id(&self) -> SiteId {
        self.site
    }

    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn deliver(&mut self, mset: MSet) {
        if self.applied_ets.contains_key(&mset.et) {
            self.redelivered += 1;
            self.obs.delivered(1, 0, 1);
            return;
        }
        for op in &mset.ops {
            debug_assert!(
                matches!(op.op, Operation::TimestampedWrite(_, _) | Operation::Read),
                "RITU MSets carry only timestamped writes, got {op}"
            );
            match &op.op {
                Operation::TimestampedWrite(ts, v) => {
                    let outcome = self.store.apply_timestamped(op.object, *ts, v.clone());
                    if let (LwwOutcome::Applied, Some(log)) = (outcome, &mut self.audit) {
                        log.push((op.object, *ts));
                    }
                }
                Operation::Read => {}
                _ => {
                    self.store.apply(op).expect("RITU op applies cleanly");
                }
            }
        }
        let high_water = self.counters.begin_update(mset.et, mset.write_set());
        self.obs.lock_counter_high_water(high_water);
        self.applied_ets.insert(mset.et, ());
        self.applied += 1;
        self.obs.delivered(1, 1, 0);
    }

    /// Batch fast path: the batch's timestamped writes are reduced to
    /// the maximum-version write per object before the store is touched,
    /// so each object is arbitrated once per batch instead of once per
    /// write. Exact because LWW arbitration is an idempotent,
    /// commutative max — any application order, including pre-reduction,
    /// converges to the same (version, value) pair. Lock-counter
    /// bookkeeping stays per MSet.
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        // Reduce the batch to the max-version write per object *by
        // reference* — values are cloned only for the winners that
        // actually reach the store, one per object instead of one per
        // write. Within-batch ties keep the earlier write, matching the
        // strict-`>` arbitration of the one-at-a-time path.
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        let batch_len = msets.len() as u64;
        let mut best: FastIdMap<ObjectId, (VersionTs, &Value)> = FastIdMap::default();
        let mut regs: Vec<(EtId, Vec<ObjectId>)> = Vec::new();
        let mut fresh: Vec<bool> = Vec::with_capacity(msets.len());
        for mset in &msets {
            let new = !self.applied_ets.contains_key(&mset.et);
            fresh.push(new);
            if !new {
                self.redelivered += 1;
                continue; // duplicate (earlier delivery or earlier in batch)
            }
            regs.push((mset.et, mset.write_set_vec()));
            self.applied_ets.insert(mset.et, ());
            self.applied += 1;
        }
        for (mset, _) in msets.iter().zip(&fresh).filter(|(_, f)| **f) {
            for op in &mset.ops {
                debug_assert!(
                    matches!(op.op, Operation::TimestampedWrite(_, _) | Operation::Read),
                    "RITU MSets carry only timestamped writes, got {op}"
                );
                if let Operation::TimestampedWrite(ts, v) = &op.op {
                    match best.entry(op.object) {
                        Entry::Occupied(mut slot) => {
                            if *ts > slot.get().0 {
                                slot.insert((*ts, v));
                            }
                        }
                        Entry::Vacant(slot) => {
                            slot.insert((*ts, v));
                        }
                    }
                }
            }
        }
        let high_water = self.counters.begin_updates(regs);
        self.obs.lock_counter_high_water(high_water);
        for (object, (ts, value)) in best {
            let outcome = self.store.apply_timestamped(object, ts, value.clone());
            if let (LwwOutcome::Applied, Some(log)) = (outcome, &mut self.audit) {
                log.push((object, ts));
            }
        }
        self.obs.batch(batch_len);
        self.obs.delivered(
            batch_len,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
    }

    fn has_applied(&self, et: EtId) -> bool {
        self.applied_ets.contains_key(&et)
    }

    fn query(
        &mut self,
        read_set: &[ObjectId],
        counter: &mut InconsistencyCounter,
    ) -> QueryOutcome {
        let charge = self.counters.inconsistency_of_set(read_set.iter().copied());
        if !counter.charge(charge).is_admitted() {
            self.obs.query(charge, counter.spec().limit, false);
            return QueryOutcome::rejected();
        }
        self.obs.query(charge, counter.spec().limit, true);
        QueryOutcome {
            values: read_set.iter().map(|&o| self.store.get(o)).collect(),
            charged: charge,
            admitted: true,
        }
    }

    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.store.snapshot()
    }

    fn backlog(&self) -> usize {
        0
    }
}

/// Audit state for the `esr-check` VTNC-safety oracle (opt-in via
/// [`RituMvSite::enable_audit`]).
#[derive(Debug, Default)]
struct MvAudit {
    /// Global version times installed locally (the cluster driver mints
    /// them densely from 1 via its version clock).
    installed: std::collections::BTreeSet<u64>,
    /// Largest `t` such that every time in `1..=t` is installed locally.
    contig: u64,
    /// Every VTNC target this site was asked to advance to, in arrival
    /// order (before monotone clamping by the store).
    vtnc_log: Vec<VersionTs>,
    /// Advances whose target exceeded the locally installed contiguous
    /// prefix — unsafe certifications: a version at or below the new
    /// horizon had not yet been installed here, so a "stable" read could
    /// miss it.
    vtnc_violations: u64,
}

impl MvAudit {
    fn note_install(&mut self, ts: VersionTs) {
        self.installed.insert(ts.time);
        while self.installed.contains(&(self.contig + 1)) {
            self.contig += 1;
        }
    }

    fn note_advance(&mut self, to: VersionTs) {
        self.vtnc_log.push(to);
        if to.time > self.contig {
            self.vtnc_violations += 1;
        }
    }
}

/// RITU in multiversion mode with VTNC visibility control.
#[derive(Debug)]
pub struct RituMvSite {
    site: SiteId,
    store: MvStore,
    applied_ets: FastIdMap<EtId, ()>,
    applied: u64,
    redelivered: u64,
    /// Largest version time installed locally (for the lag gauge).
    newest_installed: u64,
    audit: Option<MvAudit>,
    /// Metrics bundle (no-op until attached).
    obs: SiteInstruments,
}

impl RituMvSite {
    /// A fresh site.
    pub fn new(site: SiteId) -> Self {
        Self {
            site,
            store: MvStore::new(),
            applied_ets: FastIdMap::default(),
            applied: 0,
            redelivered: 0,
            newest_installed: 0,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Attaches a metrics bundle: subsequent deliveries, VTNC advances,
    /// and queries tick its series (a detached bundle costs one branch).
    pub fn attach_metrics(&mut self, obs: SiteInstruments) {
        obs.set_vtnc(self.store.vtnc().time);
        obs.set_vtnc_lag(self.newest_installed.saturating_sub(self.store.vtnc().time));
        self.obs = obs;
    }

    /// Re-ticks the horizon and lag gauges after an install or advance.
    fn tick_vtnc_gauges(&self) {
        if self.obs.is_attached() {
            let horizon = self.store.vtnc().time;
            self.obs.set_vtnc(horizon);
            self.obs
                .set_vtnc_lag(self.newest_installed.saturating_sub(horizon));
        }
    }

    /// Captures the site's full protocol state as a checkpoint image:
    /// every retained version, the VTNC visibility horizon, and the
    /// duplicate-suppression set.
    pub fn to_ckpt(&self) -> crate::ckpt::RituMvCkpt {
        let mut applied_ets: Vec<EtId> = self.applied_ets.keys().copied().collect();
        applied_ets.sort_unstable();
        crate::ckpt::RituMvCkpt {
            versions: self.store.dump(),
            vtnc: self.store.vtnc(),
            newest_installed: self.newest_installed,
            applied_ets,
            applied: self.applied,
            redelivered: self.redelivered,
        }
    }

    /// Rebuilds a site from a checkpoint image, mid-protocol: the
    /// version chains and VTNC resume exactly where the cut left them,
    /// so post-restore queries see the same stable horizon.
    pub fn from_ckpt(site: SiteId, c: crate::ckpt::RituMvCkpt) -> Self {
        let mut store = MvStore::new();
        store.install_batch(c.versions);
        store.advance_vtnc(c.vtnc);
        Self {
            site,
            store,
            applied_ets: c.applied_ets.into_iter().map(|et| (et, ())).collect(),
            applied: c.applied,
            redelivered: c.redelivered,
            newest_installed: c.newest_installed,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Total MSets applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Duplicate deliveries this site suppressed (each one is proof the
    /// idempotency guard fired under at-least-once delivery).
    pub fn redelivered(&self) -> u64 {
        self.redelivered
    }

    /// The current VTNC.
    pub fn vtnc(&self) -> VersionTs {
        self.store.vtnc()
    }

    /// Advances the VTNC: the certification service has determined that
    /// every version at or below `to` is installed at every replica and
    /// no smaller version can ever be created.
    pub fn advance_vtnc(&mut self, to: VersionTs) {
        if let Some(audit) = &mut self.audit {
            audit.note_advance(to);
        }
        self.store.advance_vtnc(to);
        self.tick_vtnc_gauges();
    }

    /// Turns on the audit consumed by the `esr-check` VTNC-safety
    /// oracle: installs are tracked against the dense global version
    /// times so each `advance_vtnc` can be judged safe (target within
    /// the locally installed contiguous prefix) or not.
    pub fn enable_audit(&mut self) {
        if self.audit.is_none() {
            self.audit = Some(MvAudit::default());
        }
    }

    /// Number of VTNC advances whose target exceeded the locally
    /// installed contiguous version prefix (0 unless
    /// [`RituMvSite::enable_audit`] was called before traffic began).
    pub fn vtnc_violations(&self) -> u64 {
        self.audit.as_ref().map_or(0, |a| a.vtnc_violations)
    }

    /// Every VTNC target received, in arrival order (empty without
    /// audit). The oracle checks this sequence is non-decreasing.
    pub fn vtnc_targets(&self) -> &[VersionTs] {
        self.audit.as_ref().map_or(&[], |a| a.vtnc_log.as_slice())
    }

    /// Direct access to the underlying multiversion store (for COMPE
    /// integration and tests).
    pub fn store(&self) -> &MvStore {
        &self.store
    }

    /// Number of versions held for an object.
    pub fn version_count(&self, object: ObjectId) -> usize {
        self.store.version_count(object)
    }
}

/// Sentinel "no next install" link in [`GroupedInstalls`]' arena.
const GROUP_NIL: u32 = u32::MAX;

/// Streams one batch's installs grouped by object, walking the
/// per-object linked chains [`RituMvSite::deliver_batch`] threaded
/// through its flat arena. Each object's installs come out contiguously
/// and in arrival order, which is exactly what
/// [`MvStore::install_batch`]'s run detection wants.
struct GroupedInstalls {
    /// `(timestamp, value, next-link)` per install; `value` is taken
    /// when the install is yielded.
    arena: Vec<(VersionTs, Option<Value>, u32)>,
    /// First install of each object, in first-touch order.
    heads: std::vec::IntoIter<(ObjectId, u32)>,
    object: ObjectId,
    cursor: u32,
}

impl Iterator for GroupedInstalls {
    type Item = (ObjectId, VersionTs, Value);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor == GROUP_NIL {
            let (object, head) = self.heads.next()?;
            self.object = object;
            self.cursor = head;
        }
        let slot = &mut self.arena[self.cursor as usize];
        let (ts, next) = (slot.0, slot.2);
        let value = slot.1.take()?;
        self.cursor = next;
        Some((self.object, ts, value))
    }
}

impl ReplicaSite for RituMvSite {
    fn method_name(&self) -> &'static str {
        "RITU-MV"
    }

    fn site_id(&self) -> SiteId {
        self.site
    }

    fn deliver(&mut self, mset: MSet) {
        if self.applied_ets.contains_key(&mset.et) {
            self.redelivered += 1;
            self.obs.delivered(1, 0, 1);
            return;
        }
        for op in &mset.ops {
            match &op.op {
                Operation::TimestampedWrite(ts, v) => {
                    self.store.install(op.object, *ts, v.clone());
                    self.newest_installed = self.newest_installed.max(ts.time);
                    if let Some(audit) = &mut self.audit {
                        audit.note_install(*ts);
                    }
                }
                Operation::Read => {}
                other => panic!("RITU-MV MSet carries non-timestamped write {other}"),
            }
        }
        self.applied_ets.insert(mset.et, ());
        self.applied += 1;
        self.obs.delivered(1, 1, 0);
        self.tick_vtnc_gauges();
    }

    /// Batch fast path: the batch's installs are grouped by object so
    /// each object's version chain is located once per batch. Installs
    /// are keyed by version timestamp and idempotent, so regrouping is
    /// exact. The VTNC is untouched — visibility advances arrive as
    /// separate certification messages.
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        // Installs are threaded into per-object linked chains inside one
        // flat arena — no sort, no per-object Vec allocations, and
        // per-object arrival order is preserved, so duplicate-timestamp
        // resolution stays deterministic (first install of a timestamp
        // wins, as in the one-at-a-time path). Grouping this way costs
        // one hash probe per op; the payoff is one chain lookup per
        // *object* (instead of per op) inside the store.
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        let batch_len = msets.len() as u64;
        let total_ops: usize = msets.iter().map(|m| m.ops.len()).sum();
        assert!(total_ops < GROUP_NIL as usize, "batch exceeds arena index width");
        let mut arena: Vec<(VersionTs, Option<Value>, u32)> = Vec::with_capacity(total_ops);
        let mut tails: FastIdMap<ObjectId, u32> = FastIdMap::default();
        let mut heads: Vec<(ObjectId, u32)> = Vec::new();
        for mset in msets {
            if self.applied_ets.contains_key(&mset.et) {
                self.redelivered += 1;
                continue; // duplicate (earlier delivery or earlier in batch)
            }
            for op in mset.ops {
                match op.op {
                    Operation::TimestampedWrite(ts, v) => {
                        if let Some(audit) = &mut self.audit {
                            audit.note_install(ts);
                        }
                        self.newest_installed = self.newest_installed.max(ts.time);
                        let idx = arena.len() as u32;
                        arena.push((ts, Some(v), GROUP_NIL));
                        match tails.entry(op.object) {
                            Entry::Occupied(mut tail) => {
                                arena[*tail.get() as usize].2 = idx;
                                *tail.get_mut() = idx;
                            }
                            Entry::Vacant(slot) => {
                                slot.insert(idx);
                                heads.push((op.object, idx));
                            }
                        }
                    }
                    Operation::Read => {}
                    other => panic!("RITU-MV MSet carries non-timestamped write {other}"),
                }
            }
            self.applied_ets.insert(mset.et, ());
            self.applied += 1;
        }
        self.store.install_batch(GroupedInstalls {
            arena,
            heads: heads.into_iter(),
            object: ObjectId(0),
            cursor: GROUP_NIL,
        });
        self.obs.batch(batch_len);
        self.obs.delivered(
            batch_len,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
        self.tick_vtnc_gauges();
    }

    fn has_applied(&self, et: EtId) -> bool {
        self.applied_ets.contains_key(&et)
    }

    fn query(
        &mut self,
        read_set: &[ObjectId],
        counter: &mut InconsistencyCounter,
    ) -> QueryOutcome {
        // Per object: prefer the freshest version; if it lies above the
        // VTNC, reading it costs one unit. When the budget can't absorb
        // the unit, fall back to the stable VTNC version (SR, maybe
        // stale). A multiversion query is therefore never rejected.
        let mut values = Vec::with_capacity(read_set.len());
        let mut charged = 0;
        for &object in read_set {
            let latest = self.store.read_latest(object);
            if latest.above_vtnc {
                if counter.charge(1).is_admitted() {
                    charged += 1;
                    values.push(latest.value);
                } else {
                    values.push(self.store.read_at_vtnc(object).value);
                }
            } else {
                values.push(latest.value);
            }
        }
        self.obs.query(charged, counter.spec().limit, true);
        QueryOutcome {
            values,
            charged,
            admitted: true,
        }
    }

    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.store.snapshot_latest()
    }

    fn backlog(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::divergence::EpsilonSpec;
    use esr_core::ids::ClientId;
    use esr_core::op::ObjectOp;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn vts(t: u64) -> VersionTs {
        VersionTs::new(t, ClientId(0))
    }

    fn tw(et: u64, obj: ObjectId, t: u64, v: i64) -> MSet {
        MSet::new(
            EtId(et),
            SiteId(9),
            vec![ObjectOp::new(
                obj,
                Operation::TimestampedWrite(vts(t), Value::Int(v)),
            )],
        )
    }

    fn unbounded() -> InconsistencyCounter {
        InconsistencyCounter::new(EpsilonSpec::UNBOUNDED)
    }

    #[test]
    fn overwrite_converges_any_order() {
        let msets = [tw(1, X, 1, 10), tw(2, X, 3, 30), tw(3, X, 2, 20)];
        let mut a = RituOverwriteSite::new(SiteId(0));
        let mut b = RituOverwriteSite::new(SiteId(1));
        for m in &msets {
            a.deliver(m.clone());
        }
        for m in msets.iter().rev() {
            b.deliver(m.clone());
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot()[&X], Value::Int(30), "newest timestamp wins");
        assert_eq!(a.version(X), vts(3));
    }

    #[test]
    fn overwrite_duplicates_suppressed() {
        let mut s = RituOverwriteSite::new(SiteId(0));
        let m = tw(1, X, 5, 50);
        s.deliver(m.clone());
        s.deliver(m);
        assert_eq!(s.applied(), 1);
    }

    #[test]
    fn overwrite_redelivery_storm_is_idempotent_and_counted() {
        let msets = [tw(1, X, 1, 10), tw(2, X, 3, 30), tw(3, X, 2, 20)];
        let mut s = RituOverwriteSite::new(SiteId(0));
        for m in msets.iter().chain(msets.iter().rev()) {
            s.deliver(m.clone());
        }
        assert_eq!(s.snapshot()[&X], Value::Int(30));
        assert_eq!(s.applied(), 3);
        assert_eq!(s.redelivered(), 3);
    }

    #[test]
    fn mv_redelivery_storm_is_idempotent_and_counted() {
        let msets = [tw(1, X, 2, 20), tw(2, X, 1, 10), tw(3, Y, 1, 5)];
        let mut s = RituMvSite::new(SiteId(0));
        for m in msets.iter().chain(msets.iter()).chain(msets.iter()) {
            s.deliver(m.clone());
        }
        assert_eq!(s.applied(), 3);
        assert_eq!(s.redelivered(), 6);
        assert_eq!(s.version_count(X), 2, "no duplicate versions installed");
        assert_eq!(s.snapshot()[&X], Value::Int(20));
    }

    #[test]
    fn overwrite_query_uses_lock_counters() {
        let mut s = RituOverwriteSite::new(SiteId(0));
        s.deliver(tw(1, X, 1, 10));
        let mut c = unbounded();
        let out = s.query(&[X], &mut c);
        assert_eq!(out.charged, 1, "ET1 still in flight");
        s.complete(EtId(1));
        let mut c2 = InconsistencyCounter::new(EpsilonSpec::STRICT);
        let out = s.query(&[X], &mut c2);
        assert!(out.admitted);
        assert_eq!(out.values, vec![Value::Int(10)]);
    }

    #[test]
    fn mv_installs_versions_and_reads_latest() {
        let mut s = RituMvSite::new(SiteId(0));
        s.deliver(tw(1, X, 1, 10));
        s.deliver(tw(2, X, 2, 20));
        assert_eq!(s.version_count(X), 2);
        let mut c = unbounded();
        let out = s.query(&[X], &mut c);
        assert_eq!(out.values, vec![Value::Int(20)]);
        assert_eq!(out.charged, 1, "one read above the VTNC costs one unit");
    }

    #[test]
    fn mv_charges_only_reads_above_vtnc() {
        let mut s = RituMvSite::new(SiteId(0));
        s.deliver(tw(1, X, 1, 10));
        s.advance_vtnc(vts(1));
        let mut c = unbounded();
        let out = s.query(&[X], &mut c);
        assert_eq!(out.charged, 0, "version 1 is stable");
        assert_eq!(out.values, vec![Value::Int(10)]);

        s.deliver(tw(2, X, 5, 50));
        let out = s.query(&[X], &mut c);
        assert_eq!(out.charged, 1, "version 5 is above the VTNC");
        assert_eq!(out.values, vec![Value::Int(50)]);
    }

    #[test]
    fn mv_exhausted_budget_falls_back_to_vtnc_version() {
        let mut s = RituMvSite::new(SiteId(0));
        s.deliver(tw(1, X, 1, 10));
        s.advance_vtnc(vts(1));
        s.deliver(tw(2, X, 5, 50));
        let mut c = InconsistencyCounter::new(EpsilonSpec::STRICT);
        let out = s.query(&[X], &mut c);
        assert!(out.admitted, "multiversion queries never reject");
        assert_eq!(out.charged, 0);
        assert_eq!(out.values, vec![Value::Int(10)], "stable version served");
    }

    #[test]
    fn mv_budget_splits_across_read_set() {
        let mut s = RituMvSite::new(SiteId(0));
        s.deliver(tw(1, X, 5, 50));
        s.deliver(tw(2, Y, 6, 60));
        let mut c = InconsistencyCounter::new(EpsilonSpec::bounded(1));
        let out = s.query(&[X, Y], &mut c);
        assert_eq!(out.charged, 1);
        assert_eq!(
            out.values,
            vec![Value::Int(50), Value::ZERO],
            "fresh read of x consumed the budget; y fell back to (empty) stable state"
        );
    }

    #[test]
    fn mv_converges_any_order() {
        let msets = [tw(1, X, 2, 20), tw(2, X, 1, 10), tw(3, Y, 1, 5)];
        let mut a = RituMvSite::new(SiteId(0));
        let mut b = RituMvSite::new(SiteId(1));
        for m in &msets {
            a.deliver(m.clone());
        }
        for m in msets.iter().rev() {
            b.deliver(m.clone());
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot()[&X], Value::Int(20));
    }

    #[test]
    fn mv_vtnc_is_monotonic_via_site() {
        let mut s = RituMvSite::new(SiteId(0));
        s.advance_vtnc(vts(5));
        s.advance_vtnc(vts(2));
        assert_eq!(s.vtnc(), vts(5));
        assert_eq!(s.store().vtnc(), vts(5));
    }
}
