//! The simulated replicated system: sites + network + replica control.
//!
//! `SimCluster` wires one [`crate::site::ReplicaSite`] implementation
//! per site to the deterministic network and event
//! scheduler. It owns the method-specific coordination services the paper
//! assumes around each method:
//!
//! * the **ORDUP sequencer** (MSets route through the sequencer site,
//!   which stamps dense sequence numbers and fans out);
//! * Lamport **send clocks** and per-origin FIFO numbers for distributed
//!   ORDUP, plus the heartbeat flush that stabilizes the tail;
//! * **completion tracking** for COMMU/RITU lock-counters (each replica
//!   acks its apply to the origin; the origin broadcasts a completion
//!   notice);
//! * the **VTNC certifier** for RITU multiversion (advances the horizon
//!   once every version below it is installed everywhere);
//! * the **commit coordinator** for COMPE (decides commit/abort after a
//!   configurable delay and broadcasts outcome notices).
//!
//! Everything — updates, acks, notices — travels through the simulated
//! network with latency, loss, duplication, and partitions, so the whole
//! run is reproducible from the seed.

use std::collections::BTreeMap;

use esr_core::divergence::{EpsilonSpec, InconsistencyCounter, LockCounters};
use esr_core::spatial::{DeviationTracker, SpatialSpec};
use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_net::topology::{LinkConfig, Topology};
use esr_net::transport::{NetStats, Network};
use esr_obs::{Counter, Gauge, GaugeFamily, MetricsRegistry, SiteInstruments};
use esr_net::PartitionSchedule;
use esr_sim::clock::LamportClock;
use esr_sim::rng::DetRng;
use esr_sim::sched::Scheduler;
use esr_sim::trace::Trace;
use esr_sim::time::{Duration, VirtualTime};
use esr_storage::recovery_log::RollbackStrategy;
use esr_storage::store::ObjectStore;

use crate::commu::CommuSite;
use crate::compe::CompeSite;
use crate::mset::MSet;
use crate::ordup::{OrdupLamportSite, OrdupSite};
use crate::ritu::{RituMvSite, RituOverwriteSite};
use crate::site::{QueryOutcome, ReplicaSite};

/// Which replica control method a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// ORDUP with a centralized sequencer.
    OrdupSeq,
    /// ORDUP with distributed Lamport ordering.
    OrdupLamport,
    /// Commutative operations.
    Commu,
    /// RITU, last-writer-wins overwrite mode.
    RituOverwrite,
    /// RITU, multiversion mode with VTNC.
    RituMv,
    /// Compensation-based backward control.
    Compe,
}

impl Method {
    /// All methods, for sweeps.
    pub const ALL: [Method; 6] = [
        Method::OrdupSeq,
        Method::OrdupLamport,
        Method::Commu,
        Method::RituOverwrite,
        Method::RituMv,
        Method::Compe,
    ];

    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Method::OrdupSeq => "ORDUP",
            Method::OrdupLamport => "ORDUP-L",
            Method::Commu => "COMMU",
            Method::RituOverwrite => "RITU",
            Method::RituMv => "RITU-MV",
            Method::Compe => "COMPE",
        }
    }
}

/// One site's state machine, dispatched by method.
#[derive(Debug)]
enum SiteImpl {
    OrdupSeq(OrdupSite),
    OrdupLamport(OrdupLamportSite),
    Commu(CommuSite),
    RituOverwrite(RituOverwriteSite),
    RituMv(RituMvSite),
    Compe(CompeSite),
}

macro_rules! dispatch {
    ($self:expr, $site:pat => $body:expr) => {
        match $self {
            SiteImpl::OrdupSeq($site) => $body,
            SiteImpl::OrdupLamport($site) => $body,
            SiteImpl::Commu($site) => $body,
            SiteImpl::RituOverwrite($site) => $body,
            SiteImpl::RituMv($site) => $body,
            SiteImpl::Compe($site) => $body,
        }
    };
}

impl SiteImpl {
    fn deliver(&mut self, mset: MSet) {
        dispatch!(self, s => s.deliver(mset))
    }
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        dispatch!(self, s => s.deliver_batch(msets))
    }
    fn query(&mut self, read_set: &[ObjectId], c: &mut InconsistencyCounter) -> QueryOutcome {
        dispatch!(self, s => s.query(read_set, c))
    }
    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        dispatch!(self, s => s.snapshot())
    }
    fn backlog(&self) -> usize {
        dispatch!(self, s => s.backlog())
    }
    fn has_applied(&self, et: EtId) -> bool {
        dispatch!(self, s => s.has_applied(et))
    }
    fn attach_metrics(&mut self, obs: SiteInstruments) {
        dispatch!(self, s => s.attach_metrics(obs))
    }
}

/// Simulation events.
#[derive(Debug, Clone)]
enum Event {
    /// An update MSet arrives at a site.
    Deliver { to: SiteId, mset: MSet },
    /// A replica acknowledges applying `et` to the coordinator.
    Ack { et: EtId, from: SiteId },
    /// The completion notice for `et` arrives at a site (lock-counters
    /// drop).
    Complete { to: SiteId, et: EtId },
    /// The COMPE coordinator's decision for `et` arrives at a site.
    Outcome { to: SiteId, et: EtId, commit: bool },
    /// The VTNC certifier tells a site to raise its horizon.
    VtncAdvance { to: SiteId, ts: VersionTs },
}

/// Configuration of a simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Replica control method.
    pub method: Method,
    /// Number of sites (each holds one replica of every object).
    pub sites: usize,
    /// Default link configuration for the full mesh.
    pub link: LinkConfig,
    /// Partition schedule.
    pub partitions: PartitionSchedule,
    /// RNG seed: same seed, same run.
    pub seed: u64,
    /// Which site hosts the ORDUP sequencer / VTNC certifier.
    pub coordinator: SiteId,
    /// COMPE: probability that a submitted update globally aborts.
    pub abort_prob: f64,
    /// COMPE: time between origination and the global commit/abort
    /// decision.
    pub decision_delay: Duration,
}

impl ClusterConfig {
    /// A sensible default: 4 sites, LAN links, no partitions.
    pub fn new(method: Method) -> Self {
        Self {
            method,
            sites: 4,
            link: LinkConfig::default(),
            partitions: PartitionSchedule::none(),
            seed: 0xE5B,
            coordinator: SiteId(0),
            abort_prob: 0.0,
            decision_delay: Duration::from_millis(20),
        }
    }

    /// Sets the number of sites.
    pub fn with_sites(mut self, n: usize) -> Self {
        self.sites = n;
        self
    }

    /// Sets the default link.
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Sets the partition schedule.
    pub fn with_partitions(mut self, p: PartitionSchedule) -> Self {
        self.partitions = p;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the COMPE abort probability.
    pub fn with_abort_prob(mut self, p: f64) -> Self {
        self.abort_prob = p;
        self
    }
}

/// Bookkeeping for one submitted update.
#[derive(Debug, Clone)]
struct Submission {
    ops: Vec<ObjectOp>,
    origin: SiteId,
    submitted_at: VirtualTime,
    /// COMPE: the coordinator's eventual decision.
    commit: bool,
    /// RITU: the version this update writes (max over its ops).
    version: Option<VersionTs>,
    /// ORDUP-seq: the assigned global sequence number.
    seq: Option<SeqNo>,
    /// Replicas that have acked application (deduplicated — the network
    /// may duplicate ack messages).
    acks: std::collections::BTreeSet<SiteId>,
    /// When the last replica applied it (completion).
    completed_at: Option<VirtualTime>,
}

/// Aggregate statistics of a run.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Updates submitted.
    pub updates: u64,
    /// Queries served (admitted).
    pub queries_served: u64,
    /// Queries rejected at least once for budget reasons.
    pub queries_rejected: u64,
    /// Total inconsistency charged to queries.
    pub total_charged: u64,
    /// COMPE: aborts decided.
    pub aborts: u64,
    /// COMPE: compensations taken via the commutative fast path.
    pub fast_compensations: u64,
    /// COMPE: compensations requiring suffix rollback.
    pub suffix_rollbacks: u64,
    /// COMPE: operations undone across all rollbacks.
    pub ops_undone: u64,
    /// COMPE: operations replayed across all rollbacks.
    pub ops_replayed: u64,
    /// Completion latencies (submit → all replicas applied), for methods
    /// with ack tracking (COMMU, RITU, RITU-MV).
    pub completion_latencies: Vec<Duration>,
}

/// A query's result, as observed by the experiment driver.
#[derive(Debug, Clone)]
pub struct QueryReport {
    /// Values read, in read-set order.
    pub values: Vec<Value>,
    /// Inconsistency charged.
    pub charged: u64,
    /// Virtual time at which the query was finally served.
    pub served_at: VirtualTime,
    /// How many rejected attempts preceded success.
    pub retries: u64,
}

/// Result of a spatially-bounded query ([`SimCluster::try_query_spatial`]).
#[derive(Debug, Clone)]
pub struct SpatialQueryOutcome {
    /// Values read (empty when not admitted).
    pub values: Vec<Value>,
    /// Whether the spatial criterion admitted the query.
    pub admitted: bool,
    /// Worst-case pending value deviation over the read set at query
    /// time — for an admitted `MaxValueDeviation` query, an upper bound
    /// on how far the answer can be from the converged truth (for
    /// bounded-deviation operation mixes).
    pub pending_deviation: u64,
    /// In-flight operations over the read set.
    pub pending_operations: u64,
    /// Read-set items with pending changes.
    pub changed_items: u64,
}

/// The simulated replicated system.
#[derive(Debug)]
pub struct SimCluster {
    config: ClusterConfig,
    sites: Vec<SiteImpl>,
    net: Network,
    sched: Scheduler<Event>,
    rng: DetRng,
    /// Lamport send clocks, one per site (ORDUP-L).
    send_clocks: Vec<LamportClock>,
    /// Per-origin FIFO counters (ORDUP-L).
    fifo_counters: Vec<SeqNo>,
    /// Global sequencer state (ORDUP-seq).
    next_seq: SeqNo,
    /// Global version clock (RITU).
    next_version_time: u64,
    /// All submissions by ET.
    submissions: BTreeMap<EtId, Submission>,
    next_et: u64,
    /// VTNC certifier state: current certified horizon.
    certified_vtnc: VersionTs,
    /// Global divergence-control lock-counters (§3.2): raised at
    /// origination, released once the update is resolved at every
    /// replica. Queries under COMMU/RITU/COMPE/ORDUP-L charge against
    /// these.
    global_counters: LockCounters,
    /// Spatial divergence control (§5.1): tracks the pending value
    /// deviation / changed items alongside the operation counts.
    deviation: DeviationTracker,
    /// COMPE: sites that have processed each update's outcome notice.
    outcome_seen: BTreeMap<EtId, std::collections::BTreeSet<SiteId>>,
    /// Bounded event trace (disabled by default; see
    /// [`SimCluster::enable_trace`]).
    trace: Trace,
    /// Acks already scheduled, so delivery rescans don't re-send them.
    acks_scheduled: std::collections::BTreeSet<(EtId, SiteId)>,
    stats: ClusterStats,
    /// Shared metrics registry — every site bundle registers here; the
    /// snapshot is deterministic under the sim clock (the registry never
    /// reads wall time).
    metrics: MetricsRegistry,
    /// Clones of each site's instrument bundle, so the cluster can set
    /// the authoritative per-query epsilon gauges (the admission
    /// decision for most methods happens here, not in the site).
    site_obs: Vec<SiteInstruments>,
    /// Per-site replica divergence vs. the global outcome
    /// (`esr_divergence`), refreshed by [`SimCluster::refresh_metrics`].
    divergence_gauge: GaugeFamily,
    /// Per-site VTNC lag in version-clock ticks (`esr_vtnc_lag`,
    /// RITU-MV only).
    vtnc_lag_gauge: GaugeFamily,
    /// `esr_updates_submitted_total{method=…}`.
    obs_updates: Counter,
    /// `esr_overlap_inflight`: updates currently raised in the global
    /// lock-counters (the overlap set queries are charged against).
    obs_overlap_inflight: Gauge,
    /// `esr_quiescence_progress_permille`: 1000 × resolved / submitted.
    obs_quiescence: Gauge,
}

impl SimCluster {
    /// Builds a cluster from a configuration.
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.sites > 0, "a cluster needs at least one site");
        let root = DetRng::new(config.seed);
        let topology = Topology::full_mesh(config.sites, config.link);
        let net = Network::new(topology, root.fork(1))
            .with_partitions(config.partitions.clone());
        let site_ids: Vec<SiteId> = (0..config.sites as u64).map(SiteId).collect();
        let metrics = MetricsRegistry::new();
        let mut site_obs = Vec::with_capacity(config.sites);
        let sites = site_ids
            .iter()
            .map(|&id| {
                let mut site = match config.method {
                    Method::OrdupSeq => SiteImpl::OrdupSeq(OrdupSite::new(id)),
                    Method::OrdupLamport => {
                        SiteImpl::OrdupLamport(OrdupLamportSite::new(id, site_ids.clone()))
                    }
                    Method::Commu => SiteImpl::Commu(CommuSite::new(id)),
                    Method::RituOverwrite => {
                        SiteImpl::RituOverwrite(RituOverwriteSite::new(id))
                    }
                    Method::RituMv => SiteImpl::RituMv(RituMvSite::new(id)),
                    Method::Compe => SiteImpl::Compe(CompeSite::new(id)),
                };
                let obs =
                    SiteInstruments::for_site(&metrics, config.method.name(), id.raw());
                site_obs.push(obs.clone());
                site.attach_metrics(obs);
                site
            })
            .collect();
        let divergence_gauge = GaugeFamily::new(&metrics, "esr_divergence");
        let vtnc_lag_gauge = GaugeFamily::new(&metrics, "esr_vtnc_lag");
        let obs_updates = metrics.counter(
            "esr_updates_submitted_total",
            &[("method", config.method.name())],
        );
        let obs_overlap_inflight = metrics.gauge("esr_overlap_inflight", &[]);
        let obs_quiescence = metrics.gauge("esr_quiescence_progress_permille", &[]);
        Self {
            sites,
            net,
            sched: Scheduler::new(),
            rng: root.fork(2),
            send_clocks: site_ids.iter().map(|&s| LamportClock::new(s)).collect(),
            fifo_counters: vec![SeqNo::ZERO; config.sites],
            next_seq: SeqNo::ZERO,
            next_version_time: 0,
            submissions: BTreeMap::new(),
            next_et: 1,
            certified_vtnc: VersionTs::MIN,
            global_counters: LockCounters::new(),
            deviation: DeviationTracker::new(),
            outcome_seen: BTreeMap::new(),
            trace: Trace::disabled(),
            acks_scheduled: std::collections::BTreeSet::new(),
            stats: ClusterStats::default(),
            metrics,
            site_obs,
            divergence_gauge,
            vtnc_lag_gauge,
            obs_updates,
            obs_overlap_inflight,
            obs_quiescence,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.sched.now()
    }

    /// Advances virtual time to `t`, processing every event scheduled to
    /// fire on the way — while a client thinks, the network keeps
    /// delivering.
    pub fn advance_to(&mut self, t: VirtualTime) {
        while let Some((now, e)) = self.sched.next_event_before(t) {
            self.handle(now, e);
        }
        self.sched.advance_to(t);
    }

    /// Turns on event tracing with the given ring-buffer capacity.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Trace::new(capacity);
    }

    /// The recorded trace (empty unless [`SimCluster::enable_trace`] was
    /// called).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Network statistics.
    pub fn net_stats(&self) -> NetStats {
        self.net.stats()
    }

    /// Run statistics.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// The cluster's metrics registry. Per-site series update live on
    /// the apply/query paths; the cluster-computed gauges (divergence,
    /// VTNC lag, overlap, quiescence progress) update on
    /// [`SimCluster::refresh_metrics`], which
    /// [`SimCluster::run_until_quiescent`] calls at the end of a run.
    /// Snapshots are deterministic: same seed, same workload —
    /// byte-identical [`MetricsRegistry::render`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Recomputes the cluster-derived gauges at the current instant:
    ///
    /// * `esr_divergence{site}` — updates whose disposition at the site
    ///   disagrees with the global outcome (the true per-site error,
    ///   experiment E5); 0 everywhere at quiescence.
    /// * `esr_vtnc_lag{site}` — version-clock ticks between the global
    ///   version clock and the site's certified VTNC horizon (RITU-MV).
    /// * `esr_overlap_inflight` — size of the in-flight overlap set in
    ///   the global lock-counters.
    /// * `esr_quiescence_progress_permille` — 1000 × resolved updates /
    ///   submitted updates (1000 when nothing was submitted).
    pub fn refresh_metrics(&self) {
        let objects: Vec<ObjectId> = self
            .submissions
            .values()
            .flat_map(|sub| sub.ops.iter())
            .filter(|o| o.op.is_write())
            .map(|o| o.object)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for site in self.site_ids() {
            let d = self.divergent_updates(site, &objects);
            self.divergence_gauge
                .set(site.raw(), i64::try_from(d).unwrap_or(i64::MAX));
            if let SiteImpl::RituMv(s) = self.site(site) {
                let lag = self.next_version_time.saturating_sub(s.vtnc().time);
                self.vtnc_lag_gauge
                    .set(site.raw(), i64::try_from(lag).unwrap_or(i64::MAX));
            }
        }
        self.obs_overlap_inflight
            .set(i64::try_from(self.global_counters.in_flight()).unwrap_or(i64::MAX));
        let total = self.submissions.len();
        let resolved = self
            .submissions
            .iter()
            .filter(|(et, sub)| {
                let survives = sub.commit || self.config.method != Method::Compe;
                !survives || self.sites.iter().all(|s| s.has_applied(**et))
            })
            .count();
        // An empty cluster is vacuously quiescent.
        let permille = (resolved * 1000).checked_div(total).map_or(1000, |p| p as i64);
        self.obs_quiescence.set(permille);
    }

    /// The site ids.
    pub fn site_ids(&self) -> Vec<SiteId> {
        (0..self.config.sites as u64).map(SiteId).collect()
    }

    fn fresh_et(&mut self) -> EtId {
        let et = EtId(self.next_et);
        self.next_et += 1;
        et
    }

    fn site_mut(&mut self, id: SiteId) -> &mut SiteImpl {
        &mut self.sites[id.raw() as usize]
    }

    fn site(&self, id: SiteId) -> &SiteImpl {
        &self.sites[id.raw() as usize]
    }

    /// Submits an update ET at `origin` carrying `ops`, at the current
    /// virtual time. Returns the ET id. For RITU methods every write must
    /// be a `TimestampedWrite` — use [`SimCluster::submit_blind_write`]
    /// to stamp one from the global version clock.
    pub fn submit_update(&mut self, origin: SiteId, ops: Vec<ObjectOp>) -> EtId {
        let et = self.fresh_et();
        let now = self.now();
        let version = ops
            .iter()
            .filter_map(|o| match &o.op {
                Operation::TimestampedWrite(ts, _) => Some(*ts),
                _ => None,
            })
            .max();
        let commit = !self.rng.chance(self.config.abort_prob);
        let mut seq = None;

        match self.config.method {
            Method::OrdupSeq => {
                let s = self.next_seq;
                self.next_seq = self.next_seq.next();
                seq = Some(s);
                let mset = MSet::new(et, origin, ops.clone()).sequenced(s);
                // Route through the sequencer site: origin → sequencer,
                // then fan out sequencer → every site.
                let coordinator = self.config.coordinator;
                let stamped_at = if origin == coordinator {
                    now
                } else {
                    self.net.plan_send(origin, coordinator, now)[0].at
                };
                let mut deliveries: Vec<(VirtualTime, SiteId)> = Vec::new();
                for to in self.site_ids() {
                    if to == coordinator {
                        deliveries.push((stamped_at, to));
                    } else {
                        for d in self.net.plan_send(coordinator, to, stamped_at) {
                            deliveries.push((d.at, to));
                        }
                    }
                }
                self.schedule_deliveries(deliveries, mset);
            }
            Method::OrdupLamport => {
                let ts = self.send_clocks[origin.raw() as usize].tick();
                let fifo = self.fifo_counters[origin.raw() as usize];
                self.fifo_counters[origin.raw() as usize] = fifo.next();
                let mset = MSet::new(et, origin, ops.clone()).lamport(ts, fifo);
                self.broadcast_from(origin, now, mset);
            }
            Method::Commu | Method::RituOverwrite | Method::RituMv | Method::Compe => {
                let mset = MSet::new(et, origin, ops.clone());
                self.broadcast_from(origin, now, mset);
                if self.config.method == Method::Compe {
                    // The coordinator (origin) decides after the delay and
                    // broadcasts the outcome.
                    let decided_at = now + self.config.decision_delay;
                    self.schedule_outcome(et, origin, commit, decided_at);
                }
            }
        }

        // Register the update with divergence control: its lock-counters
        // stay raised until it is resolved at every replica.
        let write_set: Vec<ObjectId> = ops
            .iter()
            .filter(|o| o.op.is_write())
            .map(|o| o.object)
            .collect();
        self.global_counters.begin_update(et, write_set);
        self.deviation
            .begin(et, ops.iter().map(|o| (o.object, &o.op)));
        self.submissions.insert(
            et,
            Submission {
                ops,
                origin,
                submitted_at: now,
                commit,
                version,
                seq,
                acks: std::collections::BTreeSet::new(),
                completed_at: None,
            },
        );
        self.stats.updates += 1;
        self.obs_updates.inc();
        et
    }

    /// Stamps a blind write with the next global version and submits it
    /// (the natural RITU update).
    pub fn submit_blind_write(
        &mut self,
        origin: SiteId,
        object: ObjectId,
        value: Value,
    ) -> EtId {
        self.next_version_time += 1;
        let ts = VersionTs::new(self.next_version_time, ClientId(origin.raw()));
        self.submit_update(
            origin,
            vec![ObjectOp::new(object, Operation::TimestampedWrite(ts, value))],
        )
    }

    /// Broadcasts the COMPE outcome for `et` from its coordinator.
    fn schedule_outcome(&mut self, et: EtId, origin: SiteId, commit: bool, decided_at: VirtualTime) {
        if !commit {
            self.stats.aborts += 1;
        }
        for to in self.site_ids() {
            if to == origin {
                self.sched
                    .schedule_at(decided_at, Event::Outcome { to, et, commit });
            } else {
                for d in self.net.plan_send(origin, to, decided_at) {
                    self.sched
                        .schedule_at(d.at, Event::Outcome { to, et, commit });
                }
            }
        }
    }

    /// Submits a COMPE update whose global outcome stays **pending**
    /// until the caller decides it with [`SimCluster::resolve`] — the
    /// building block for sagas (§4.2), where each step remains
    /// compensatable until the whole saga finishes. Until resolution the
    /// update counts as at-risk everywhere: replicas keep it on their
    /// recovery logs and queries are charged for it.
    ///
    /// Panics unless the cluster runs [`Method::Compe`].
    pub fn submit_update_pending(&mut self, origin: SiteId, ops: Vec<ObjectOp>) -> EtId {
        assert_eq!(
            self.config.method,
            Method::Compe,
            "pending outcomes require the COMPE method"
        );
        // Temporarily zero the abort probability so submit_update makes
        // no automatic decision, then strip the scheduled outcome by
        // construction: with abort_prob 0 submit_update would schedule a
        // commit — so bypass it instead.
        let et = self.fresh_et();
        let now = self.now();
        let mset = MSet::new(et, origin, ops.clone());
        self.broadcast_from(origin, now, mset);
        let write_set: Vec<ObjectId> = ops
            .iter()
            .filter(|o| o.op.is_write())
            .map(|o| o.object)
            .collect();
        self.global_counters.begin_update(et, write_set);
        self.deviation
            .begin(et, ops.iter().map(|o| (o.object, &o.op)));
        self.submissions.insert(
            et,
            Submission {
                ops,
                origin,
                submitted_at: now,
                // Pending: treated as not-surviving until resolved.
                commit: false,
                version: None,
                seq: None,
                acks: std::collections::BTreeSet::new(),
                completed_at: None,
            },
        );
        self.stats.updates += 1;
        self.obs_updates.inc();
        et
    }

    /// Decides the outcome of a pending COMPE update: broadcasts
    /// commit/abort notices from the coordinator at the current time.
    /// Panics if `et` is unknown.
    #[expect(clippy::expect_used, reason = "resolving an unknown ET is a caller bug; the panic is the documented contract")]
    pub fn resolve(&mut self, et: EtId, commit: bool) {
        assert_eq!(self.config.method, Method::Compe);
        let now = self.now();
        let origin = {
            let sub = self
                .submissions
                .get_mut(&et)
                .expect("resolve of unknown update");
            sub.commit = commit;
            sub.origin
        };
        self.schedule_outcome(et, origin, commit, now);
    }

    /// Fans an MSet out from `origin` to every site (self-delivery is
    /// immediate). Sized by the MSet's wire footprint, so
    /// bandwidth-limited links charge serialization delay and congest.
    fn broadcast_from(&mut self, origin: SiteId, at: VirtualTime, mset: MSet) {
        let bytes = mset.wire_size();
        let mut deliveries: Vec<(VirtualTime, SiteId)> = Vec::new();
        for to in self.site_ids() {
            if to == origin {
                deliveries.push((at, to));
            } else {
                for d in self.net.plan_send_sized(origin, to, at, bytes) {
                    deliveries.push((d.at, to));
                }
            }
        }
        self.schedule_deliveries(deliveries, mset);
    }

    /// Schedules one `Deliver` per planned `(time, site)` pair, cloning
    /// the MSet for all but the last — the payload moves into the final
    /// event instead of being cloned once per destination and dropped at
    /// the end.
    #[expect(clippy::expect_used, reason = "the payload Option is taken exactly once, on the final destination")]
    fn schedule_deliveries(&mut self, deliveries: Vec<(VirtualTime, SiteId)>, mset: MSet) {
        let n = deliveries.len();
        let mut mset = Some(mset);
        for (i, (at, to)) in deliveries.into_iter().enumerate() {
            let m = if i + 1 == n {
                mset.take().expect("one payload per delivery run")
            } else {
                mset.as_ref().expect("payload lives until the last delivery").clone()
            };
            self.sched.schedule_at(at, Event::Deliver { to, mset: m });
        }
    }

    /// Every method tracks per-update completion acks: they feed the
    /// completion-latency metric, the lock-counter release, and the VTNC
    /// certifier.
    fn tracks_completion(&self) -> bool {
        true
    }

    fn handle(&mut self, now: VirtualTime, event: Event) {
        match &event {
            Event::Deliver { .. } => {
                // Traced per MSet inside the batch drain below.
            }
            Event::Ack { et, from } => {
                self.trace
                    .record(now, "coord", format!("ack {et} from {from}"));
            }
            Event::Complete { to, et } => {
                self.trace
                    .record(now, &format!("site/{}", to.raw()), format!("complete {et}"));
            }
            Event::Outcome { to, et, commit } => {
                let verdict = if *commit { "commit" } else { "abort" };
                self.trace.record(
                    now,
                    &format!("site/{}", to.raw()),
                    format!("{verdict} {et}"),
                );
            }
            Event::VtncAdvance { to, ts } => {
                self.trace
                    .record(now, &format!("site/{}", to.raw()), format!("vtnc -> {ts}"));
            }
        }
        match event {
            Event::Deliver { to, mset } => {
                // Drain every further delivery bound for this site at
                // this same instant: consecutive same-time deliveries at
                // the queue head become ONE deliver_batch call, letting
                // the method's batch fast path coalesce work. Stopping
                // at the first non-matching event preserves the global
                // event order for everything else.
                let mut batch = vec![mset];
                while let Some((_, extra)) = self.sched.next_event_if(|at, e| {
                    at == now && matches!(e, Event::Deliver { to: t, .. } if *t == to)
                }) {
                    let Event::Deliver { mset, .. } = extra else {
                        unreachable!("predicate admits only deliveries");
                    };
                    batch.push(mset);
                }
                let lamport = matches!(self.site(to), SiteImpl::OrdupLamport(_));
                for m in &batch {
                    self.trace
                        .record(now, &format!("site/{}", to.raw()), format!("deliver {m}"));
                    if lamport {
                        if let crate::mset::OrderTag::Lamport { ts, .. } = m.order {
                            self.send_clocks[to.raw() as usize].observe(ts);
                        }
                    }
                }
                if batch.len() == 1 {
                    if let Some(single) = batch.pop() {
                        self.site_mut(to).deliver(single);
                    }
                } else {
                    self.site_mut(to).deliver_batch(batch);
                }
                if self.tracks_completion() {
                    // A delivery can apply several held-back MSets at
                    // once (ORDUP drains its hold-back queue, a batch
                    // applies many), so scan for everything newly applied
                    // at this site and ack each back to its coordinator
                    // (the origin site).
                    let newly_applied: Vec<(EtId, SiteId)> = self
                        .submissions
                        .iter()
                        .filter(|(id, sub)| {
                            !sub.acks.contains(&to)
                                && !self.acks_scheduled.contains(&(**id, to))
                                && self.site(to).has_applied(**id)
                        })
                        .map(|(id, sub)| (*id, sub.origin))
                        .collect();
                    for (aid, aorigin) in newly_applied {
                        self.acks_scheduled.insert((aid, to));
                        if to == aorigin {
                            self.sched.schedule_at(now, Event::Ack { et: aid, from: to });
                        } else {
                            for d in self.net.plan_send(to, aorigin, now) {
                                self.sched
                                    .schedule_at(d.at, Event::Ack { et: aid, from: to });
                            }
                        }
                    }
                }
            }
            Event::Ack { et, from } => {
                let n = self.config.sites;
                let completed = {
                    let Some(sub) = self.submissions.get_mut(&et) else {
                        return;
                    };
                    if !sub.acks.insert(from) || sub.acks.len() != n {
                        None
                    } else {
                        sub.completed_at = Some(now);
                        Some(sub.submitted_at)
                    }
                };
                if let Some(submitted_at) = completed {
                    self.stats.completion_latencies.push(now - submitted_at);
                    if self.config.method != Method::Compe {
                        self.global_counters.end_update(et);
                        self.deviation.end(et);
                    } else {
                        self.maybe_release_compe(et);
                    }
                    // Broadcast completion notices (lock-counter release).
                    if matches!(
                        self.config.method,
                        Method::Commu | Method::RituOverwrite
                    ) {
                        let coordinator = self.config.coordinator;
                        for to in self.site_ids() {
                            if to == coordinator {
                                self.sched.schedule_at(now, Event::Complete { to, et });
                            } else {
                                for d in self.net.plan_send(coordinator, to, now) {
                                    self.sched.schedule_at(d.at, Event::Complete { to, et });
                                }
                            }
                        }
                    }
                    if self.config.method == Method::RituMv {
                        self.recertify_vtnc(now);
                    }
                }
            }

            Event::Complete { to, et } => match self.site_mut(to) {
                SiteImpl::Commu(s) => s.complete(et),
                SiteImpl::RituOverwrite(s) => s.complete(et),
                _ => {}
            },
            Event::Outcome { to, et, commit } => {
                let report = match self.site_mut(to) {
                    SiteImpl::Compe(s) => {
                        if commit {
                            s.commit(et);
                            None
                        } else {
                            s.abort(et)
                        }
                    }
                    _ => None,
                };
                if let Some(report) = report {
                    match report.strategy {
                        RollbackStrategy::CommutativeCompensation => {
                            self.stats.fast_compensations += 1
                        }
                        RollbackStrategy::SuffixRollback => self.stats.suffix_rollbacks += 1,
                    }
                    self.stats.ops_undone += report.ops_undone as u64;
                    self.stats.ops_replayed += report.ops_replayed as u64;
                }
                // The update may now be resolved everywhere.
                self.outcome_seen.entry(et).or_default().insert(to);
                self.maybe_release_compe(et);
            }
            Event::VtncAdvance { to, ts } => {
                if let SiteImpl::RituMv(s) = self.site_mut(to) {
                    s.advance_vtnc(ts);
                }
            }
        }
    }

    /// Releases a COMPE update's lock-counters once it is fully
    /// resolved: its outcome notice has been processed at every site,
    /// and (for commits) its MSet has been applied at every site — until
    /// then some replica may still be missing its effect, so queries
    /// must keep being charged for it.
    fn maybe_release_compe(&mut self, et: EtId) {
        if self.config.method != Method::Compe {
            return;
        }
        let n = self.config.sites;
        if self.outcome_seen.get(&et).map_or(0, |s| s.len()) < n {
            return;
        }
        let Some(sub) = self.submissions.get(&et) else {
            return;
        };
        let resolved = !sub.commit || self.sites.iter().all(|s| s.has_applied(et));
        if resolved {
            self.global_counters.end_update(et);
            self.deviation.end(et);
        }
    }

    /// Recomputes the certified VTNC: the largest version v such that
    /// every submitted version ≤ v has been applied at every replica.
    /// Broadcasts the new horizon when it advances.
    fn recertify_vtnc(&mut self, now: VirtualTime) {
        let n = self.config.sites;
        let mut versions: Vec<(VersionTs, usize)> = self
            .submissions
            .values()
            .filter_map(|s| s.version.map(|v| (v, s.acks.len())))
            .collect();
        versions.sort_unstable_by_key(|(v, _)| *v);
        let mut horizon = VersionTs::MIN;
        for (v, acks) in versions {
            if acks >= n {
                horizon = v;
            } else {
                break;
            }
        }
        if horizon > self.certified_vtnc {
            self.certified_vtnc = horizon;
            let coordinator = self.config.coordinator;
            for to in self.site_ids() {
                if to == coordinator {
                    self.sched
                        .schedule_at(now, Event::VtncAdvance { to, ts: horizon });
                } else {
                    for d in self.net.plan_send(coordinator, to, now) {
                        self.sched
                            .schedule_at(d.at, Event::VtncAdvance { to, ts: horizon });
                    }
                }
            }
        }
    }

    /// Processes a single pending event. Returns `false` when none
    /// remain.
    pub fn step(&mut self) -> bool {
        match self.sched.next_event() {
            Some((now, e)) => {
                self.handle(now, e);
                true
            }
            None => false,
        }
    }

    /// Processes events until the queue drains, then (for ORDUP-Lamport)
    /// broadcasts the final heartbeat round that stabilizes the tail.
    /// Returns the virtual time at quiescence.
    pub fn run_until_quiescent(&mut self) -> VirtualTime {
        while self.step() {}
        if self.config.method == Method::OrdupLamport {
            // One heartbeat per origin, carrying a clock strictly past
            // every timestamp it ever issued.
            let beats: Vec<(SiteId, esr_core::LamportTs)> = self
                .send_clocks
                .iter()
                .map(|c| {
                    let mut ts = c.peek();
                    ts.counter += 1;
                    (c.site(), ts)
                })
                .collect();
            for site in self.sites.iter_mut() {
                if let SiteImpl::OrdupLamport(s) = site {
                    for (origin, ts) in &beats {
                        s.heartbeat(*origin, *ts);
                    }
                }
            }
            // Final ack round: updates applied during the heartbeat flush
            // never went through Ack events, so reconcile the divergence
            // control directly.
            let resolved: Vec<EtId> = self
                .submissions
                .keys()
                .filter(|et| self.sites.iter().all(|s| s.has_applied(**et)))
                .copied()
                .collect();
            for et in resolved {
                self.global_counters.end_update(et);
                self.deviation.end(et);
            }
        }
        self.refresh_metrics();
        self.now()
    }

    /// Attempts a query once at the current time, using the method's
    /// divergence control to compute the inconsistency charge:
    ///
    /// * **ORDUP (sequencer)** — the query takes a global order token;
    ///   the charge is the gap between the token and the site's applied
    ///   prefix (every sequenced-but-unapplied update might conflict).
    /// * **RITU multiversion** — the site charges per read above the
    ///   VTNC, falling back to the stable version when the budget runs
    ///   out.
    /// * **everything else** — the global lock-counters (§3.2): one unit
    ///   per in-flight update writing a queried object. In-flight covers
    ///   every update not yet resolved at every replica, so the measured
    ///   staleness of the answer can never exceed the charge.
    pub fn try_query(
        &mut self,
        site: SiteId,
        read_set: &[ObjectId],
        epsilon: EpsilonSpec,
    ) -> QueryOutcome {
        let mut counter = InconsistencyCounter::new(epsilon);
        let ritu_mv = self.config.method == Method::RituMv;
        let mut attempted_charge = 0;
        let out = match (self.config.method, &mut self.sites[site.raw() as usize]) {
            (Method::OrdupSeq, SiteImpl::OrdupSeq(s)) => {
                let token = self.next_seq;
                let charge = s.gap_to(token);
                attempted_charge = charge;
                if counter.charge(charge).is_admitted() {
                    let mut unbounded = InconsistencyCounter::new(EpsilonSpec::UNBOUNDED);
                    let values = s.query(read_set, &mut unbounded).values;
                    QueryOutcome {
                        values,
                        charged: charge,
                        admitted: true,
                    }
                } else {
                    QueryOutcome::rejected()
                }
            }
            (Method::RituMv, s @ SiteImpl::RituMv(_)) => s.query(read_set, &mut counter),
            (_, s) => {
                let charge = self
                    .global_counters
                    .inconsistency_of_set(read_set.iter().copied());
                attempted_charge = charge;
                if counter.charge(charge).is_admitted() {
                    let mut unbounded = InconsistencyCounter::new(EpsilonSpec::UNBOUNDED);
                    let values = s.query(read_set, &mut unbounded).values;
                    QueryOutcome {
                        values,
                        charged: charge,
                        admitted: true,
                    }
                } else {
                    QueryOutcome::rejected()
                }
            }
        };
        // For every method but RITU-MV the admission decision is made
        // here, against the *global* divergence control — the site only
        // ever sees an unbounded wrapper. Stamp the authoritative charge
        // and limit onto the site's epsilon gauges (last write wins over
        // the site's internal view), and count rejections the site never
        // saw.
        if !ritu_mv {
            let obs = &self.site_obs[site.raw() as usize];
            if out.admitted {
                obs.query_gauges(out.charged, epsilon.limit);
            } else {
                obs.query(attempted_charge, epsilon.limit, false);
            }
        }
        if out.admitted {
            self.stats.queries_served += 1;
            self.stats.total_charged += out.charged;
        } else {
            self.stats.queries_rejected += 1;
        }
        out
    }

    /// The outcome of a spatially-bounded query (§5.1 extension).
    #[allow(clippy::type_complexity)]
    pub fn try_query_spatial(
        &mut self,
        site: SiteId,
        read_set: &[ObjectId],
        spec: SpatialSpec,
    ) -> SpatialQueryOutcome {
        let admitted = self.deviation.admits(read_set, spec);
        let pending_deviation = self.deviation.pending_deviation(read_set);
        let pending_operations = self.deviation.pending_operations(read_set);
        let changed_items = self.deviation.changed_items(read_set);
        let values = if admitted {
            let mut unbounded = InconsistencyCounter::new(EpsilonSpec::UNBOUNDED);
            self.sites[site.raw() as usize]
                .query(read_set, &mut unbounded)
                .values
        } else {
            Vec::new()
        };
        if admitted {
            self.stats.queries_served += 1;
        } else {
            self.stats.queries_rejected += 1;
        }
        SpatialQueryOutcome {
            values,
            admitted,
            pending_deviation,
            pending_operations,
            changed_items,
        }
    }

    /// Serves a query, retrying after each event while the budget cannot
    /// absorb the visible inconsistency — the synchronous fallback path
    /// ("the query ET is allowed to proceed only when it is running in
    /// the global order"). Terminates because at quiescence every
    /// method's visible inconsistency is zero.
    pub fn query_with_retry(
        &mut self,
        site: SiteId,
        read_set: &[ObjectId],
        epsilon: EpsilonSpec,
    ) -> QueryReport {
        let mut retries = 0;
        loop {
            let out = self.try_query(site, read_set, epsilon);
            if out.admitted {
                return QueryReport {
                    values: out.values,
                    charged: out.charged,
                    served_at: self.now(),
                    retries,
                };
            }
            retries += 1;
            if !self.step() {
                // Quiescent: flush ORDUP-L tails and serve.
                self.run_until_quiescent();
                let out = self.try_query(site, read_set, epsilon);
                assert!(
                    out.admitted,
                    "{}: query must be admissible at quiescence",
                    self.config.method.name()
                );
                return QueryReport {
                    values: out.values,
                    charged: out.charged,
                    served_at: self.now(),
                    retries,
                };
            }
        }
    }

    /// One site's full snapshot.
    pub fn snapshot_of(&self, site: SiteId) -> BTreeMap<ObjectId, Value> {
        self.site(site).snapshot()
    }

    /// Strips zero values: an object never written and an object whose
    /// effects were fully compensated both read as [`Value::ZERO`], so
    /// state comparison must treat them identically.
    fn normalize(m: BTreeMap<ObjectId, Value>) -> BTreeMap<ObjectId, Value> {
        m.into_iter().filter(|(_, v)| *v != Value::ZERO).collect()
    }

    /// True when every replica exposes semantically identical values
    /// (call after [`SimCluster::run_until_quiescent`]).
    pub fn converged(&self) -> bool {
        let first = Self::normalize(self.sites[0].snapshot());
        self.sites
            .iter()
            .all(|s| Self::normalize(s.snapshot()) == first)
    }

    /// True when replica state semantically equals the serial oracle
    /// ([`SimCluster::expected_state`]).
    pub fn matches_oracle(&self) -> bool {
        Self::normalize(self.sites[0].snapshot()) == Self::normalize(self.expected_state())
    }

    /// Total backlog across sites (should be zero at quiescence).
    pub fn total_backlog(&self) -> usize {
        self.sites.iter().map(|s| s.backlog()).sum()
    }

    /// The 1SR oracle: the state produced by applying every *surviving*
    /// (committed) update in its serialization order — sequence order for
    /// ORDUP, version order for RITU, submission order for the
    /// commutative methods (any order yields the same state).
    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    pub fn expected_state(&self) -> BTreeMap<ObjectId, Value> {
        let mut subs: Vec<(&EtId, &Submission)> = self
            .submissions
            .iter()
            .filter(|(_, s)| s.commit || self.config.method != Method::Compe)
            .collect();
        match self.config.method {
            Method::OrdupSeq => subs.sort_by_key(|(_, s)| s.seq),
            Method::RituOverwrite | Method::RituMv => subs.sort_by_key(|(_, s)| s.version),
            // Submission order equals EtId order for the rest. For
            // ORDUP-L the Lamport order also equals submission order in
            // this driver because each submission ticks the origin clock
            // at submit time and the scheduler hands out monotone times —
            // convergence tests verify this empirically.
            _ => {}
        }
        let mut store = ObjectStore::new();
        for (_, sub) in subs {
            for op in &sub.ops {
                if op.op.is_write() {
                    match &op.op {
                        Operation::TimestampedWrite(ts, v) => {
                            // Fold with LWW semantics on a side table.
                            let cur = store.get(op.object);
                            let _ = cur;
                            let _ = ts;
                            store.put(op.object, v.clone());
                        }
                        _ => {
                            store.apply(op).expect("oracle ops apply cleanly");
                        }
                    }
                }
            }
        }
        store.snapshot()
    }

    /// The true per-query error (experiment E5): the number of update
    /// ETs writing any of `objects` whose disposition at `site` disagrees
    /// with the global outcome right now — committed/surviving updates
    /// the site has **not** applied, plus (under COMPE) aborted updates
    /// whose effects are **still** visible because the compensation has
    /// not run yet.
    pub fn divergent_updates(&self, site: SiteId, objects: &[ObjectId]) -> u64 {
        self.submissions
            .iter()
            .filter(|(et, sub)| {
                let touches = sub
                    .ops
                    .iter()
                    .any(|o| o.op.is_write() && objects.contains(&o.object));
                if !touches {
                    return false;
                }
                let survives = sub.commit || self.config.method != Method::Compe;
                let applied = self.site(site).has_applied(**et);
                survives != applied
            })
            .count() as u64
    }

    /// Committed updates writing any of `objects` not yet applied at
    /// `site` (a one-sided view of [`SimCluster::divergent_updates`]).
    pub fn missing_updates(&self, site: SiteId, objects: &[ObjectId]) -> u64 {
        self.submissions
            .iter()
            .filter(|(et, sub)| {
                (sub.commit || self.config.method != Method::Compe)
                    && sub
                        .ops
                        .iter()
                        .any(|o| o.op.is_write() && objects.contains(&o.object))
                    && !self.site(site).has_applied(**et)
            })
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_net::latency::LatencyModel;

    const X: ObjectId = ObjectId(0);

    fn lossy_config(method: Method) -> ClusterConfig {
        ClusterConfig::new(method)
            .with_link(LinkConfig {
                latency: LatencyModel::Uniform(
                    Duration::from_millis(1),
                    Duration::from_millis(40),
                ),
                drop_prob: 0.2,
                duplicate_prob: 0.1,
                bandwidth: None,
            })
            .with_seed(99)
    }

    fn incr_op(n: i64) -> Vec<ObjectOp> {
        vec![ObjectOp::new(X, Operation::Incr(n))]
    }

    #[test]
    fn ordup_seq_converges_and_matches_oracle() {
        let mut c = SimCluster::new(lossy_config(Method::OrdupSeq));
        for i in 0..20 {
            let origin = SiteId(i % 4);
            c.submit_update(origin, vec![ObjectOp::new(X, Operation::Incr(i as i64))]);
            c.submit_update(origin, vec![ObjectOp::new(X, Operation::MulBy(1 + (i as i64 % 2)))]);
        }
        c.run_until_quiescent();
        assert!(c.converged(), "replicas diverged");
        assert_eq!(c.total_backlog(), 0);
        assert!(c.matches_oracle());
    }

    #[test]
    fn ordup_lamport_converges_and_matches_oracle() {
        let mut c = SimCluster::new(lossy_config(Method::OrdupLamport));
        for i in 0..20 {
            c.submit_update(
                SiteId(i % 4),
                vec![ObjectOp::new(X, Operation::Incr(1 + i as i64))],
            );
            c.submit_update(
                SiteId((i + 1) % 4),
                vec![ObjectOp::new(X, Operation::MulBy(1 + (i as i64 % 2)))],
            );
        }
        c.run_until_quiescent();
        assert!(c.converged(), "replicas diverged");
        assert_eq!(c.total_backlog(), 0);
    }

    #[test]
    fn commu_converges_to_oracle() {
        let mut c = SimCluster::new(lossy_config(Method::Commu));
        for i in 0..30 {
            c.submit_update(SiteId(i % 4), incr_op(i as i64));
        }
        c.run_until_quiescent();
        assert!(c.converged());
        assert!(c.matches_oracle());
    }

    #[test]
    fn ritu_overwrite_converges_to_newest_version() {
        let mut c = SimCluster::new(lossy_config(Method::RituOverwrite));
        for i in 0..15 {
            c.submit_blind_write(SiteId(i % 4), X, Value::Int(i as i64 * 10));
        }
        c.run_until_quiescent();
        assert!(c.converged());
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(140));
        assert_eq!(c.expected_state()[&X], Value::Int(140));
    }

    #[test]
    fn ritu_mv_converges_and_vtnc_advances() {
        let mut c = SimCluster::new(lossy_config(Method::RituMv));
        for i in 0..10 {
            c.submit_blind_write(SiteId(i % 4), X, Value::Int(i as i64));
        }
        c.run_until_quiescent();
        assert!(c.converged());
        // At quiescence the certified VTNC covers every version, so a
        // strict query reads the newest value with zero charge.
        let out = c.try_query(SiteId(1), &[X], EpsilonSpec::STRICT);
        assert!(out.admitted);
        assert_eq!(out.charged, 0);
        assert_eq!(out.values, vec![Value::Int(9)]);
    }

    #[test]
    fn compe_aborts_are_compensated_consistently() {
        let mut cfg = lossy_config(Method::Compe);
        cfg.abort_prob = 0.4;
        let mut c = SimCluster::new(cfg);
        for i in 0..30 {
            c.submit_update(SiteId(i % 4), incr_op(1 + i as i64));
        }
        c.run_until_quiescent();
        assert!(c.converged(), "replicas diverged after compensations");
        assert!(c.matches_oracle());
        assert!(c.stats().aborts > 0, "with p=0.4 some aborts must occur");
        let compensated = c.stats().fast_compensations + c.stats().suffix_rollbacks;
        assert!(compensated > 0, "some compensations must have run");
        // An abort can race ahead of its MSet (then the MSet is simply
        // suppressed), so per-site compensations are at most aborts × sites.
        assert!(compensated <= c.stats().aborts * 4);
    }

    #[test]
    fn query_with_retry_eventually_serves_strict_queries() {
        let mut c = SimCluster::new(lossy_config(Method::OrdupSeq));
        for i in 0..10 {
            c.submit_update(SiteId(0), incr_op(i as i64));
        }
        let report = c.query_with_retry(SiteId(3), &[X], EpsilonSpec::STRICT);
        assert_eq!(report.charged, 0, "strict query imports nothing");
        // Served value equals the oracle at quiescence (all updates in).
        let expected = c.expected_state()[&X].clone();
        c.run_until_quiescent();
        assert_eq!(c.snapshot_of(SiteId(3))[&X], expected);
    }

    #[test]
    fn unbounded_queries_never_wait() {
        let mut c = SimCluster::new(lossy_config(Method::Commu));
        for i in 0..10 {
            c.submit_update(SiteId(0), incr_op(i as i64));
        }
        let report = c.query_with_retry(SiteId(1), &[X], EpsilonSpec::UNBOUNDED);
        assert_eq!(report.retries, 0, "unbounded queries are served at once");
    }

    #[test]
    fn missing_updates_counts_staleness() {
        let mut c = SimCluster::new(lossy_config(Method::Commu));
        c.submit_update(SiteId(0), incr_op(5));
        // Immediately after submit, remote sites have applied nothing.
        assert_eq!(c.missing_updates(SiteId(3), &[X]), 1);
        c.run_until_quiescent();
        assert_eq!(c.missing_updates(SiteId(3), &[X]), 0);
    }

    #[test]
    fn same_seed_reproduces_run() {
        let run = || {
            let mut c = SimCluster::new(lossy_config(Method::Commu));
            for i in 0..20 {
                c.submit_update(SiteId(i % 4), incr_op(i as i64));
            }
            let t = c.run_until_quiescent();
            (t, c.net_stats(), c.snapshot_of(SiteId(0)))
        };
        let (t1, n1, s1) = run();
        let (t2, n2, s2) = run();
        assert_eq!(t1, t2);
        assert_eq!(n1, n2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn trace_records_events_when_enabled() {
        let mut c = SimCluster::new(lossy_config(Method::Commu));
        c.enable_trace(256);
        c.submit_update(SiteId(0), incr_op(5));
        c.run_until_quiescent();
        assert!(!c.trace().is_empty());
        let text: Vec<String> = c.trace().entries().map(|e| e.to_string()).collect();
        assert!(text.iter().any(|l| l.contains("deliver")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("ack")), "{text:?}");
        // Disabled by default.
        let mut c2 = SimCluster::new(lossy_config(Method::Commu));
        c2.submit_update(SiteId(0), incr_op(5));
        c2.run_until_quiescent();
        assert!(c2.trace().is_empty());
    }

    #[test]
    fn bandwidth_limited_cluster_converges_and_slows() {
        use esr_net::latency::LatencyModel;
        let run = |bandwidth: Option<u64>| {
            let mut link =
                LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(1)));
            link.bandwidth = bandwidth;
            let mut c = SimCluster::new(
                ClusterConfig::new(Method::Commu)
                    .with_sites(3)
                    .with_link(link)
                    .with_seed(4),
            );
            for i in 0..20 {
                c.submit_update(SiteId(0), incr_op(i));
            }
            let t = c.run_until_quiescent();
            assert!(c.converged());
            t
        };
        let fast = run(None);
        let slow = run(Some(10_000)); // 10 KB/s: ~4ms serialization per MSet
        assert!(
            slow > fast,
            "bandwidth limit must delay quiescence: {slow} vs {fast}"
        );
    }

    #[test]
    fn completion_latencies_recorded_for_commu() {
        let mut c = SimCluster::new(lossy_config(Method::Commu));
        for i in 0..5 {
            c.submit_update(SiteId(0), incr_op(i as i64));
        }
        c.run_until_quiescent();
        assert_eq!(c.stats().completion_latencies.len(), 5);
        assert!(c
            .stats()
            .completion_latencies
            .iter()
            .all(|d| *d > Duration::ZERO));
    }
}
