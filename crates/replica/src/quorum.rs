//! Synchronous baseline: weighted voting (Gifford-style quorums).
//!
//! The paper names weighted voting \[15\] as the canonical synchronous
//! coherency control: "traditional coherency control methods, such as
//! weighted voting, update a number of replicas (e.g., write quorum) in
//! an atomic transaction" (§2.4). This comparator assigns one vote per
//! site with quorums `r + w > n`:
//!
//! * a **write** reads version numbers from a read quorum, then installs
//!   `(max version + 1, value)` at a write quorum — latency is the `r`-th
//!   fastest round-trip plus the `w`-th fastest round-trip;
//! * a **read** collects `(version, value)` from a read quorum and
//!   returns the newest — latency is the `r`-th fastest round-trip.
//!
//! Unlike 2PC write-all, a quorum system keeps operating while a minority
//! is partitioned away — but every operation still pays synchronous
//! network round-trips, which is exactly the cost ESR's asynchronous
//! methods avoid.

use std::collections::BTreeMap;

use esr_core::ids::{ObjectId, SiteId};
use esr_core::value::Value;
use esr_net::transport::Network;
use esr_net::PartitionSchedule;
use esr_net::{LinkConfig, Topology};
use esr_sim::rng::DetRng;
use esr_sim::time::{Duration, VirtualTime};

/// One replica's versioned copy of an object.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct VersionedValue {
    version: u64,
    value: Value,
}

/// Timing of one quorum operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumReport {
    /// When the operation started.
    pub started: VirtualTime,
    /// When the quorum was assembled and the result was final.
    pub decided: VirtualTime,
}

impl QuorumReport {
    /// Latency from start to decision.
    pub fn latency(&self) -> Duration {
        self.decided - self.started
    }
}

/// A replicated system under weighted voting.
#[derive(Debug)]
pub struct QuorumCluster {
    net: Network,
    replicas: Vec<BTreeMap<ObjectId, VersionedValue>>,
    n: usize,
    read_quorum: usize,
    write_quorum: usize,
    /// Per-object lock release times (conflicting writes serialize).
    lock_free_at: BTreeMap<ObjectId, VirtualTime>,
    write_latencies: Vec<Duration>,
    read_latencies: Vec<Duration>,
}

impl QuorumCluster {
    /// A cluster of `n` sites with majority write quorum and the minimal
    /// intersecting read quorum.
    pub fn new(n: usize, link: LinkConfig, partitions: PartitionSchedule, seed: u64) -> Self {
        let write_quorum = n / 2 + 1;
        let read_quorum = n - write_quorum + 1;
        Self::with_quorums(n, read_quorum, write_quorum, link, partitions, seed)
    }

    /// A cluster with explicit quorums; panics unless `r + w > n` and
    /// both quorums fit.
    pub fn with_quorums(
        n: usize,
        read_quorum: usize,
        write_quorum: usize,
        link: LinkConfig,
        partitions: PartitionSchedule,
        seed: u64,
    ) -> Self {
        assert!(read_quorum + write_quorum > n, "quorums must intersect");
        assert!(read_quorum >= 1 && read_quorum <= n);
        assert!(write_quorum >= 1 && write_quorum <= n);
        let net = Network::new(Topology::full_mesh(n, link), DetRng::new(seed))
            .with_partitions(partitions);
        Self {
            net,
            replicas: (0..n).map(|_| BTreeMap::new()).collect(),
            n,
            read_quorum,
            write_quorum,
            lock_free_at: BTreeMap::new(),
            write_latencies: Vec::new(),
            read_latencies: Vec::new(),
        }
    }

    /// The read quorum size.
    pub fn read_quorum(&self) -> usize {
        self.read_quorum
    }

    /// The write quorum size.
    pub fn write_quorum(&self) -> usize {
        self.write_quorum
    }

    /// Write latencies recorded.
    pub fn write_latencies(&self) -> &[Duration] {
        &self.write_latencies
    }

    /// Read latencies recorded.
    pub fn read_latencies(&self) -> &[Duration] {
        &self.read_latencies
    }

    /// Round-trip completion times from `origin` to every other site
    /// starting at `at`, sorted ascending; the origin itself counts as an
    /// immediate response.
    fn round_trips(&mut self, origin: SiteId, at: VirtualTime) -> Vec<(SiteId, VirtualTime)> {
        let mut rts = vec![(origin, at)];
        for s in 0..self.n as u64 {
            let site = SiteId(s);
            if site == origin {
                continue;
            }
            let there = self.net.plan_send(origin, site, at)[0].at;
            let back = self.net.plan_send(site, origin, there)[0].at;
            rts.push((site, back));
        }
        rts.sort_by_key(|(_, t)| *t);
        rts
    }

    /// Writes `value` to `object`, coordinated by `origin`, submitted at
    /// `at`. Returns the timing report.
    pub fn write(
        &mut self,
        origin: SiteId,
        object: ObjectId,
        value: Value,
        at: VirtualTime,
    ) -> QuorumReport {
        let started = at.max(
            self.lock_free_at
                .get(&object)
                .copied()
                .unwrap_or(VirtualTime::ZERO),
        );
        // Round 1: read versions from a read quorum (fastest r sites).
        let rts = self.round_trips(origin, started);
        let version_known_at = rts[self.read_quorum - 1].1;
        let max_version = rts[..self.read_quorum]
            .iter()
            .map(|(s, _)| {
                self.replicas[s.raw() as usize]
                    .get(&object)
                    .map_or(0, |v| v.version)
            })
            .max()
            .unwrap_or(0);
        // Round 2: install at a write quorum (fastest w sites).
        let rts2 = self.round_trips(origin, version_known_at);
        let decided = rts2[self.write_quorum - 1].1;
        for (s, _) in rts2[..self.write_quorum].iter() {
            self.replicas[s.raw() as usize].insert(
                object,
                VersionedValue {
                    version: max_version + 1,
                    value: value.clone(),
                },
            );
        }
        self.lock_free_at.insert(object, decided);
        self.write_latencies.push(decided - at);
        QuorumReport { started, decided }
    }

    /// Reads `object` through a read quorum coordinated by `origin`.
    /// Returns the newest value in the quorum and the timing report.
    pub fn read(
        &mut self,
        origin: SiteId,
        object: ObjectId,
        at: VirtualTime,
    ) -> (Value, QuorumReport) {
        let rts = self.round_trips(origin, at);
        let decided = rts[self.read_quorum - 1].1;
        let newest = rts[..self.read_quorum]
            .iter()
            .filter_map(|(s, _)| self.replicas[s.raw() as usize].get(&object))
            .max_by_key(|v| v.version)
            .map(|v| v.value.clone())
            .unwrap_or_default();
        self.read_latencies.push(decided - at);
        (newest, QuorumReport { started: at, decided })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_net::faults::PartitionWindow;
    use esr_net::latency::LatencyModel;

    const X: ObjectId = ObjectId(0);

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::from_millis(ms)
    }

    fn fixed_link(ms: u64) -> LinkConfig {
        LinkConfig::reliable(LatencyModel::Constant(Duration::from_millis(ms)))
    }

    #[test]
    fn default_quorums_intersect() {
        let c = QuorumCluster::new(5, fixed_link(1), PartitionSchedule::none(), 1);
        assert_eq!(c.write_quorum(), 3);
        assert_eq!(c.read_quorum(), 3);
        let c = QuorumCluster::new(4, fixed_link(1), PartitionSchedule::none(), 1);
        assert_eq!(c.write_quorum(), 3);
        assert_eq!(c.read_quorum(), 2);
    }

    #[test]
    #[should_panic(expected = "quorums must intersect")]
    fn rejects_non_intersecting_quorums() {
        QuorumCluster::with_quorums(5, 2, 2, fixed_link(1), PartitionSchedule::none(), 1);
    }

    #[test]
    fn read_sees_latest_write() {
        let mut c = QuorumCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        c.write(SiteId(0), X, Value::Int(7), t(0));
        let (v, _) = c.read(SiteId(2), X, t(1000));
        assert_eq!(v, Value::Int(7), "read/write quorums intersect");
    }

    #[test]
    fn successive_writes_bump_versions() {
        let mut c = QuorumCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        c.write(SiteId(0), X, Value::Int(1), t(0));
        c.write(SiteId(1), X, Value::Int(2), t(1000));
        let (v, _) = c.read(SiteId(2), X, t(2000));
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn write_pays_two_quorum_round_trips() {
        let mut c = QuorumCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        let r = c.write(SiteId(0), X, Value::Int(1), t(0));
        // Read quorum (2 of 3): the origin plus the first remote round
        // trip = 20ms; write quorum likewise: +20ms.
        assert_eq!(r.latency(), Duration::from_millis(40));
    }

    #[test]
    fn read_pays_one_quorum_round_trip() {
        let mut c = QuorumCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        c.write(SiteId(0), X, Value::Int(1), t(0));
        let (_, r) = c.read(SiteId(0), X, t(1000));
        assert_eq!(r.latency(), Duration::from_millis(20));
    }

    #[test]
    fn conflicting_writes_serialize() {
        let mut c = QuorumCluster::new(3, fixed_link(10), PartitionSchedule::none(), 1);
        let r1 = c.write(SiteId(0), X, Value::Int(1), t(0));
        let r2 = c.write(SiteId(1), X, Value::Int(2), t(0));
        assert_eq!(r2.started, r1.decided);
        let (v, _) = c.read(SiteId(2), X, t(5000));
        assert_eq!(v, Value::Int(2));
    }

    #[test]
    fn majority_survives_minority_partition() {
        // Site 2 is cut off for 10 seconds; the majority {0, 1} keeps
        // committing writes with normal latency.
        let part = PartitionSchedule::new(vec![PartitionWindow::isolate(
            t(0),
            t(10_000),
            SiteId(2),
            [SiteId(0), SiteId(1)],
        )]);
        let mut c = QuorumCluster::new(3, fixed_link(10), part, 1);
        let r = c.write(SiteId(0), X, Value::Int(5), t(0));
        assert!(
            r.decided < t(1000),
            "majority quorum must not wait for the heal, decided at {}",
            r.decided
        );
        // A read from the majority side also completes promptly and sees
        // the write.
        let (v, rr) = c.read(SiteId(1), X, t(500));
        assert_eq!(v, Value::Int(5));
        assert!(rr.decided < t(1000));
    }

    #[test]
    fn missing_object_reads_default() {
        let mut c = QuorumCluster::new(3, fixed_link(1), PartitionSchedule::none(), 1);
        let (v, _) = c.read(SiteId(0), ObjectId(99), t(0));
        assert_eq!(v, Value::ZERO);
    }

    #[test]
    fn latencies_recorded() {
        let mut c = QuorumCluster::new(3, fixed_link(1), PartitionSchedule::none(), 1);
        c.write(SiteId(0), X, Value::Int(1), t(0));
        c.read(SiteId(0), X, t(100));
        assert_eq!(c.write_latencies().len(), 1);
        assert_eq!(c.read_latencies().len(), 1);
    }
}
