//! User-level propagation specifications (§5.1).
//!
//! Wiederhold and Qian classify update propagation between replicas into
//! four classes; the paper observes that "ETs can be used to implement
//! each of these classes":
//!
//! * **immediate updates** — "done within standard transactions (ETs
//!   with no divergence)": submitted to the cluster at once;
//! * **deferred updates** — "ETs with deadlines": buffered, but
//!   guaranteed to be submitted within a deadline of being offered;
//! * **independent updates** — "ETs applied periodically": buffered and
//!   flushed on a fixed period;
//! * **potentially inconsistent updates** — "ETs with backward replica
//!   control": submitted optimistically under COMPE, compensated if the
//!   business action later fails.
//!
//! [`SpecPipe`] implements the buffering disciplines over a
//! [`SimCluster`]; the class is data, so an application can attach a
//! different specification to each stream of updates.

use std::collections::VecDeque;

use esr_core::ids::{EtId, SiteId};
use esr_core::op::ObjectOp;
use esr_sim::time::{Duration, VirtualTime};

use crate::cluster::SimCluster;

/// The four §5.1 propagation classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropagationClass {
    /// Submit at once.
    Immediate,
    /// Buffer, but submit within `deadline` of the offer.
    Deferred {
        /// Maximum time an update may sit in the buffer.
        deadline: Duration,
    },
    /// Buffer and flush every `period`.
    Independent {
        /// Flush period.
        period: Duration,
    },
    /// Submit optimistically with a pending outcome (COMPE backward
    /// control); the caller resolves commit/abort later.
    PotentiallyInconsistent,
}

#[derive(Debug)]
struct Buffered {
    origin: SiteId,
    ops: Vec<ObjectOp>,
    offered_at: VirtualTime,
}

/// A specification-driven update pipe in front of a cluster.
#[derive(Debug)]
pub struct SpecPipe {
    class: PropagationClass,
    buffer: VecDeque<Buffered>,
    last_flush: VirtualTime,
    submitted: u64,
}

impl SpecPipe {
    /// A pipe enforcing `class`.
    pub fn new(class: PropagationClass) -> Self {
        Self {
            class,
            buffer: VecDeque::new(),
            last_flush: VirtualTime::ZERO,
            submitted: 0,
        }
    }

    /// The class in force.
    pub fn class(&self) -> PropagationClass {
        self.class
    }

    /// Updates currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Updates submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Offers an update to the pipe at the cluster's current time.
    /// Immediate and potentially-inconsistent updates are submitted on
    /// the spot (returning their ET id); deferred and independent
    /// updates are buffered until [`SpecPipe::poll`].
    pub fn offer(
        &mut self,
        cluster: &mut SimCluster,
        origin: SiteId,
        ops: Vec<ObjectOp>,
    ) -> Option<EtId> {
        match self.class {
            PropagationClass::Immediate => {
                self.submitted += 1;
                Some(cluster.submit_update(origin, ops))
            }
            PropagationClass::PotentiallyInconsistent => {
                self.submitted += 1;
                Some(cluster.submit_update_pending(origin, ops))
            }
            PropagationClass::Deferred { .. } | PropagationClass::Independent { .. } => {
                self.buffer.push_back(Buffered {
                    origin,
                    ops,
                    offered_at: cluster.now(),
                });
                None
            }
        }
    }

    /// Advances the pipe to the cluster's current time, submitting every
    /// buffered update whose discipline says it is due. Returns the ET
    /// ids submitted, in offer order.
    pub fn poll(&mut self, cluster: &mut SimCluster) -> Vec<EtId> {
        let now = cluster.now();
        match self.class {
            PropagationClass::Immediate | PropagationClass::PotentiallyInconsistent => Vec::new(),
            PropagationClass::Deferred { deadline } => {
                let mut out = Vec::new();
                while self
                    .buffer
                    .front()
                    .is_some_and(|front| front.offered_at + deadline <= now)
                {
                    let Some(b) = self.buffer.pop_front() else { break };
                    self.submitted += 1;
                    out.push(cluster.submit_update(b.origin, b.ops));
                }
                out
            }
            PropagationClass::Independent { period } => {
                if now - self.last_flush < period {
                    return Vec::new();
                }
                self.last_flush = now;
                self.flush(cluster)
            }
        }
    }

    /// Submits everything buffered, regardless of discipline (shutdown /
    /// end of session).
    pub fn flush(&mut self, cluster: &mut SimCluster) -> Vec<EtId> {
        let mut out = Vec::new();
        while let Some(b) = self.buffer.pop_front() {
            self.submitted += 1;
            out.push(cluster.submit_update(b.origin, b.ops));
        }
        out
    }

    /// The latest time by which every currently-buffered update must be
    /// submitted (`None` when nothing is buffered or the class has no
    /// deadline).
    pub fn next_due(&self) -> Option<VirtualTime> {
        match self.class {
            PropagationClass::Deferred { deadline } => self
                .buffer
                .front()
                .map(|b| b.offered_at + deadline),
            PropagationClass::Independent { period } => {
                (!self.buffer.is_empty()).then(|| self.last_flush + period)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterConfig, Method};
    use esr_core::ids::ObjectId;
    use esr_core::op::Operation;
    use esr_core::value::Value;

    const X: ObjectId = ObjectId(0);

    fn cluster(method: Method) -> SimCluster {
        SimCluster::new(ClusterConfig::new(method).with_sites(3).with_seed(3))
    }

    fn inc(n: i64) -> Vec<ObjectOp> {
        vec![ObjectOp::new(X, Operation::Incr(n))]
    }

    #[test]
    fn immediate_submits_on_offer() {
        let mut c = cluster(Method::Commu);
        let mut pipe = SpecPipe::new(PropagationClass::Immediate);
        let et = pipe.offer(&mut c, SiteId(0), inc(5));
        assert!(et.is_some());
        assert_eq!(pipe.buffered(), 0);
        assert_eq!(pipe.submitted(), 1);
        c.run_until_quiescent();
        assert_eq!(c.snapshot_of(SiteId(1))[&X], Value::Int(5));
    }

    #[test]
    fn deferred_holds_until_deadline() {
        let mut c = cluster(Method::Commu);
        let deadline = Duration::from_millis(100);
        let mut pipe = SpecPipe::new(PropagationClass::Deferred { deadline });
        assert!(pipe.offer(&mut c, SiteId(0), inc(5)).is_none());
        assert_eq!(pipe.buffered(), 1);
        assert_eq!(pipe.next_due(), Some(VirtualTime::from_millis(100)));

        // Before the deadline nothing is submitted.
        c.advance_to(VirtualTime::from_millis(50));
        assert!(pipe.poll(&mut c).is_empty());
        // At the deadline it goes out.
        c.advance_to(VirtualTime::from_millis(100));
        let out = pipe.poll(&mut c);
        assert_eq!(out.len(), 1);
        assert_eq!(pipe.buffered(), 0);
        c.run_until_quiescent();
        assert_eq!(c.snapshot_of(SiteId(2))[&X], Value::Int(5));
    }

    #[test]
    fn deferred_preserves_offer_order() {
        let mut c = cluster(Method::Commu);
        let mut pipe = SpecPipe::new(PropagationClass::Deferred {
            deadline: Duration::from_millis(10),
        });
        pipe.offer(&mut c, SiteId(0), inc(1));
        c.advance_to(VirtualTime::from_millis(5));
        pipe.offer(&mut c, SiteId(1), inc(2));
        c.advance_to(VirtualTime::from_millis(20));
        let out = pipe.poll(&mut c);
        assert_eq!(out.len(), 2, "both deadlines passed");
        assert!(out[0] < out[1], "submission follows offer order");
    }

    #[test]
    fn independent_flushes_periodically() {
        let mut c = cluster(Method::Commu);
        let mut pipe = SpecPipe::new(PropagationClass::Independent {
            period: Duration::from_millis(100),
        });
        pipe.offer(&mut c, SiteId(0), inc(1));
        pipe.offer(&mut c, SiteId(1), inc(2));
        c.advance_to(VirtualTime::from_millis(99));
        assert!(pipe.poll(&mut c).is_empty(), "period not elapsed");
        c.advance_to(VirtualTime::from_millis(100));
        assert_eq!(pipe.poll(&mut c).len(), 2);
        // The next period starts now.
        pipe.offer(&mut c, SiteId(0), inc(3));
        c.advance_to(VirtualTime::from_millis(150));
        assert!(pipe.poll(&mut c).is_empty());
        c.advance_to(VirtualTime::from_millis(200));
        assert_eq!(pipe.poll(&mut c).len(), 1);
        c.run_until_quiescent();
        assert_eq!(c.snapshot_of(SiteId(0))[&X], Value::Int(6));
    }

    #[test]
    fn potentially_inconsistent_uses_backward_control() {
        let mut c = cluster(Method::Compe);
        let mut pipe = SpecPipe::new(PropagationClass::PotentiallyInconsistent);
        let et = pipe.offer(&mut c, SiteId(0), inc(10)).expect("submitted");
        c.run_until_quiescent();
        // Applied optimistically everywhere, but still at risk.
        assert_eq!(c.snapshot_of(SiteId(1))[&X], Value::Int(10));
        // The business action fails: compensate.
        c.resolve(et, false);
        c.run_until_quiescent();
        assert!(c.converged());
        assert_eq!(
            c.snapshot_of(SiteId(1)).get(&X).cloned().unwrap_or_default(),
            Value::Int(0)
        );
    }

    #[test]
    fn flush_drains_everything() {
        let mut c = cluster(Method::Commu);
        let mut pipe = SpecPipe::new(PropagationClass::Independent {
            period: Duration::from_secs(3600),
        });
        for i in 0..5 {
            pipe.offer(&mut c, SiteId(i % 3), inc(1));
        }
        assert_eq!(pipe.flush(&mut c).len(), 5);
        assert_eq!(pipe.buffered(), 0);
        assert_eq!(pipe.submitted(), 5);
        assert_eq!(pipe.next_due(), None);
    }
}
