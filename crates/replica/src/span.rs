//! Trace spans: the vocabulary of the `esr-trace` cross-site tracing
//! plane.
//!
//! An update ET's life is distributed by design — it commits at its
//! origin and propagates lazily — so no single site's metrics can say
//! where the ET's latency went. Each site instead records [`SpanRec`]s
//! at every protocol hop it witnesses (submit, link enqueue, delivery,
//! hold-back, apply, completion, VTNC visibility, COMPE decision), and
//! `esrctl spans` later merges every site's records into one causal
//! timeline ordered by the protocol's happens-before edges.
//!
//! The types here are pure data: no clocks, no I/O. Timestamps are
//! attached by the *daemon* when it executes a `Span` effect (the step
//! machines stay deterministic), and the client-submit wall stamp `t0`
//! rides inside the MSet so every site can report queueing delay
//! against the same epoch.

use std::fmt;

use serde::{Deserialize, Serialize};

use esr_core::ids::{EtId, SeqNo, SiteId, VersionTs};

/// A protocol hop in an ET's distributed lifecycle.
///
/// The `*Cert` stages are coordinator-only: they mark the moment the
/// control plane *certified* a fact (all sites applied, horizon
/// advanced, decision taken), as opposed to the moment an individual
/// site *learned* it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanStage {
    /// Client-plane submit accepted at the origin site.
    Submit,
    /// MSet handed to the durable link toward `peer`.
    Enqueue,
    /// MSet arrived at a site (journalled before anything else).
    Deliver,
    /// ORDUP hold-back: delivered but parked behind a sequence gap.
    Held,
    /// Applied to the local replica.
    Apply,
    /// Re-applied from the journal (or a snapshot suffix) during
    /// recovery — the post-crash stand-in for a lost `Apply` span.
    Replay,
    /// Coordinator certified completion: every site reported applied.
    CompleteCert,
    /// Completion learned at a site.
    Complete,
    /// Coordinator advanced the VTNC horizon.
    VtncCert,
    /// VTNC horizon learned at a site.
    Vtnc,
    /// Coordinator certified a COMPE commit/abort decision.
    DecisionCert,
    /// Decision learned at a site.
    Decision,
}

impl SpanStage {
    /// Stable lowercase name (used by renderers and the wire codec
    /// tests; the wire codec itself ships the discriminant).
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Submit => "submit",
            SpanStage::Enqueue => "enqueue",
            SpanStage::Deliver => "deliver",
            SpanStage::Held => "held",
            SpanStage::Apply => "apply",
            SpanStage::Replay => "replay",
            SpanStage::CompleteCert => "complete-cert",
            SpanStage::Complete => "complete",
            SpanStage::VtncCert => "vtnc-cert",
            SpanStage::Vtnc => "vtnc",
            SpanStage::DecisionCert => "decision-cert",
            SpanStage::Decision => "decision",
        }
    }
}

impl fmt::Display for SpanStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One span record, as emitted by the pure step machines.
///
/// The recording site and the wall-clock stamp are *not* part of the
/// record: the site is implied by whose ring the record sits in, and
/// the stamp is attached by the daemon at effect-execution time so the
/// step machines never read a clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRec {
    /// The protocol hop.
    pub stage: SpanStage,
    /// The ET this span belongs to. `None` for VTNC horizon spans,
    /// which cover every ET at or below the horizon; the merge step
    /// attributes them via the apply spans' versions.
    pub et: Option<EtId>,
    /// For [`SpanStage::Enqueue`]: the link's destination site.
    pub peer: Option<SiteId>,
    /// RITU version timestamp (apply spans) or the new horizon (VTNC
    /// spans).
    pub version: Option<VersionTs>,
    /// ORDUP global sequence number, when the MSet carries one.
    pub gseq: Option<SeqNo>,
    /// Client-submit wall stamp (UNIX micros), minted by the client
    /// and carried in the MSet — present on origin-side spans so the
    /// timeline can charge client queueing delay.
    pub t0: Option<u64>,
    /// COMPE decision spans: `true` = commit, `false` = abort.
    pub commit: Option<bool>,
}

impl SpanRec {
    /// A span for `stage` on `et` with no extras.
    pub fn new(stage: SpanStage, et: EtId) -> Self {
        Self {
            stage,
            et: Some(et),
            peer: None,
            version: None,
            gseq: None,
            t0: None,
            commit: None,
        }
    }

    /// A VTNC horizon span (no single ET).
    pub fn vtnc(stage: SpanStage, horizon: VersionTs) -> Self {
        Self {
            stage,
            et: None,
            peer: None,
            version: Some(horizon),
            gseq: None,
            t0: None,
            commit: None,
        }
    }

    /// Attaches the enqueue destination.
    pub fn to_peer(mut self, peer: SiteId) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Attaches a version timestamp.
    pub fn with_version(mut self, version: Option<VersionTs>) -> Self {
        self.version = version;
        self
    }

    /// Attaches an ORDUP global sequence number.
    pub fn with_gseq(mut self, gseq: Option<SeqNo>) -> Self {
        self.gseq = gseq;
        self
    }

    /// Attaches the client-submit wall stamp.
    pub fn with_t0(mut self, t0: Option<u64>) -> Self {
        self.t0 = t0;
        self
    }

    /// Attaches a COMPE decision outcome.
    pub fn with_commit(mut self, commit: bool) -> Self {
        self.commit = Some(commit);
        self
    }
}

impl fmt::Display for SpanRec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.stage)?;
        if let Some(et) = self.et {
            write!(f, " {et}")?;
        }
        if let Some(peer) = self.peer {
            write!(f, " ->{peer}")?;
        }
        if let Some(v) = self.version {
            write!(f, " v={v}")?;
        }
        if let Some(s) = self.gseq {
            write!(f, " seq={s}")?;
        }
        if let Some(c) = self.commit {
            write!(f, " {}", if c { "commit" } else { "abort" })?;
        }
        if let Some(t0) = self.t0 {
            write!(f, " t0={t0}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::ClientId;

    #[test]
    fn display_is_compact() {
        let rec = SpanRec::new(SpanStage::Apply, EtId(7))
            .with_version(Some(VersionTs::new(3, ClientId(1))))
            .with_gseq(Some(SeqNo(2)));
        let s = rec.to_string();
        assert!(s.starts_with("apply"), "{s}");
        assert!(s.contains("et7"), "{s}");
        assert!(s.contains("seq=#2"), "{s}");
    }

    #[test]
    fn vtnc_spans_have_no_et() {
        let rec = SpanRec::vtnc(SpanStage::Vtnc, VersionTs::new(9, ClientId(0)));
        assert!(rec.et.is_none());
        assert!(rec.version.is_some());
    }
}
