//! Checkpoint images of the replica control methods.
//!
//! A consistent checkpoint must capture everything a method needs to
//! resume mid-protocol: not just the store contents but the
//! method-specific in-flight state — ORDUP's hold-back queue and next
//! sequence number, COMMU's raised lock-counters, RITU's version
//! timestamps, RITU-MV's version chains and VTNC, COMPE's recovery log
//! and decision outcomes. [`SiteCkpt`] is that image, one variant per
//! method, with the same codec guarantees as the wire module it builds
//! on: self-describing tagged binary, big-endian, and **total
//! decoding** — any byte slice yields a checkpoint or a [`WireError`],
//! never a panic, so a torn or hostile snapshot file can at worst be
//! skipped.
//!
//! Deliberately excluded from the image: audit logs (an oracle aid the
//! checker re-arms per run) and metrics bundles (re-attached by the
//! daemon after restore).

use bytes::{BufMut, Bytes, BytesMut};

use esr_core::ids::{EtId, ObjectId, SeqNo, VersionTs};
use esr_core::op::ObjectOp;
use esr_core::value::Value;
use esr_storage::recovery_log::{AppliedOp, LogRecord};

use crate::mset::MSet;
use crate::wire::{
    decode_mset_from, decode_op, decode_value, encode_mset_into, encode_op, encode_value,
    get_count, get_u64, get_u8, WireError,
};

const CKPT_ORDUP: u8 = 0;
const CKPT_COMMU: u8 = 1;
const CKPT_RITU: u8 = 2;
const CKPT_RITU_MV: u8 = 3;
const CKPT_COMPE: u8 = 4;

/// ORDUP checkpoint image (see `OrdupSite::to_ckpt`).
#[derive(Debug, Clone, PartialEq)]
pub struct OrdupCkpt {
    /// Store contents.
    pub values: Vec<(ObjectId, Value)>,
    /// The next sequence number the site will apply.
    pub next_seq: SeqNo,
    /// Held-back MSets awaiting predecessors (all `Sequenced`; the key
    /// is recovered from each MSet's order tag).
    pub holdback: Vec<MSet>,
    /// Applied ET ids (duplicate suppression), ascending.
    pub applied_ets: Vec<EtId>,
    /// Total MSets applied.
    pub applied: u64,
    /// Duplicates suppressed.
    pub redelivered: u64,
}

/// COMMU checkpoint image (see `CommuSite::to_ckpt`).
#[derive(Debug, Clone, PartialEq)]
pub struct CommuCkpt {
    /// Store contents.
    pub values: Vec<(ObjectId, Value)>,
    /// In-flight updates still holding lock-counters: `(et, write set)`.
    pub held: Vec<(EtId, Vec<ObjectId>)>,
    /// Applied ET ids, ascending.
    pub applied_ets: Vec<EtId>,
    /// Total MSets applied.
    pub applied: u64,
    /// Duplicates suppressed.
    pub redelivered: u64,
}

/// RITU overwrite-mode checkpoint image (see
/// `RituOverwriteSite::to_ckpt`).
#[derive(Debug, Clone, PartialEq)]
pub struct RituCkpt {
    /// Store contents with the winning version per object — the LWW
    /// arbitration state a restored site must keep honoring.
    pub values: Vec<(ObjectId, VersionTs, Value)>,
    /// In-flight updates still holding lock-counters.
    pub held: Vec<(EtId, Vec<ObjectId>)>,
    /// Applied ET ids, ascending.
    pub applied_ets: Vec<EtId>,
    /// Total MSets applied.
    pub applied: u64,
    /// Duplicates suppressed.
    pub redelivered: u64,
}

/// RITU multiversion-mode checkpoint image (see `RituMvSite::to_ckpt`).
#[derive(Debug, Clone, PartialEq)]
pub struct RituMvCkpt {
    /// Every retained version: `(object, version, value)`, ascending by
    /// object then version.
    pub versions: Vec<(ObjectId, VersionTs, Value)>,
    /// The certified visibility horizon.
    pub vtnc: VersionTs,
    /// Largest version time installed locally (lag gauge input).
    pub newest_installed: u64,
    /// Applied ET ids, ascending.
    pub applied_ets: Vec<EtId>,
    /// Total MSets applied.
    pub applied: u64,
    /// Duplicates suppressed.
    pub redelivered: u64,
}

/// COMPE checkpoint image (see `CompeSite::to_ckpt`).
#[derive(Debug, Clone, PartialEq)]
pub struct CompeCkpt {
    /// Store contents (optimistically applied state included).
    pub values: Vec<(ObjectId, Value)>,
    /// The recovery log, oldest record first: before-images for every
    /// ET still compensatable plus resolved markers.
    pub log: Vec<LogRecord>,
    /// Every ET ever seen with its disposition
    /// (0 = at-risk, 1 = committed, 2 = aborted, 3 = commit-pending).
    pub seen: Vec<(EtId, u8)>,
    /// Total MSets applied optimistically.
    pub applied: u64,
    /// Total aborts compensated.
    pub compensations: u64,
    /// Duplicates suppressed.
    pub redelivered: u64,
}

/// The method-specific half of a site checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteCkpt {
    /// ORDUP (sequencer mode).
    Ordup(OrdupCkpt),
    /// COMMU.
    Commu(CommuCkpt),
    /// RITU overwrite mode.
    Ritu(RituCkpt),
    /// RITU multiversion mode.
    RituMv(RituMvCkpt),
    /// COMPE.
    Compe(CompeCkpt),
}

fn encode_values(b: &mut BytesMut, values: &[(ObjectId, Value)]) {
    b.put_u32(values.len() as u32);
    for (o, v) in values {
        b.put_u64(o.raw());
        encode_value(b, v);
    }
}

fn decode_values(b: &mut &[u8]) -> Result<Vec<(ObjectId, Value)>, WireError> {
    // Each entry is at least 13 bytes (object + value tag + int payload).
    let n = get_count(b, 13)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let o = ObjectId(get_u64(b)?);
        out.push((o, decode_value(b)?));
    }
    Ok(out)
}

fn encode_versioned_values(b: &mut BytesMut, values: &[(ObjectId, VersionTs, Value)]) {
    b.put_u32(values.len() as u32);
    for (o, ts, v) in values {
        b.put_u64(o.raw());
        b.put_u64(ts.time);
        b.put_u64(ts.client.raw());
        encode_value(b, v);
    }
}

fn decode_versioned_values(
    b: &mut &[u8],
) -> Result<Vec<(ObjectId, VersionTs, Value)>, WireError> {
    let n = get_count(b, 29)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let o = ObjectId(get_u64(b)?);
        let time = get_u64(b)?;
        let client = esr_core::ids::ClientId(get_u64(b)?);
        out.push((o, VersionTs::new(time, client), decode_value(b)?));
    }
    Ok(out)
}

fn encode_ets(b: &mut BytesMut, ets: &[EtId]) {
    b.put_u32(ets.len() as u32);
    for et in ets {
        b.put_u64(et.raw());
    }
}

fn decode_ets(b: &mut &[u8]) -> Result<Vec<EtId>, WireError> {
    let n = get_count(b, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(EtId(get_u64(b)?));
    }
    Ok(out)
}

fn encode_held(b: &mut BytesMut, held: &[(EtId, Vec<ObjectId>)]) {
    b.put_u32(held.len() as u32);
    for (et, objs) in held {
        b.put_u64(et.raw());
        b.put_u32(objs.len() as u32);
        for o in objs {
            b.put_u64(o.raw());
        }
    }
}

fn decode_held(b: &mut &[u8]) -> Result<Vec<(EtId, Vec<ObjectId>)>, WireError> {
    let n = get_count(b, 12)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let et = EtId(get_u64(b)?);
        let m = get_count(b, 8)?;
        let mut objs = Vec::with_capacity(m);
        for _ in 0..m {
            objs.push(ObjectId(get_u64(b)?));
        }
        out.push((et, objs));
    }
    Ok(out)
}

fn encode_msets(b: &mut BytesMut, msets: &[MSet]) {
    b.put_u32(msets.len() as u32);
    for m in msets {
        encode_mset_into(b, m);
    }
}

fn decode_msets(b: &mut &[u8]) -> Result<Vec<MSet>, WireError> {
    // A minimal MSet is 22 bytes (et + origin + order tag + op count +
    // client presence byte).
    let n = get_count(b, 22)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_mset_from(b)?);
    }
    Ok(out)
}

fn encode_log(b: &mut BytesMut, log: &[LogRecord]) {
    b.put_u32(log.len() as u32);
    for rec in log {
        b.put_u64(rec.et.raw());
        b.put_u8(u8::from(rec.resolved));
        b.put_u32(rec.ops.len() as u32);
        for applied in &rec.ops {
            b.put_u64(applied.op.object.raw());
            encode_op(b, &applied.op.op);
            encode_value(b, &applied.before);
        }
    }
}

fn decode_log(b: &mut &[u8]) -> Result<Vec<LogRecord>, WireError> {
    let n = get_count(b, 13)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let et = EtId(get_u64(b)?);
        let resolved = match get_u8(b)? {
            0 => false,
            1 => true,
            tag => return Err(WireError::BadTag { field: "resolved", tag }),
        };
        // Each logged op is at least 14 bytes (object + op tag + before
        // value).
        let m = get_count(b, 14)?;
        let mut ops = Vec::with_capacity(m);
        for _ in 0..m {
            let object = ObjectId(get_u64(b)?);
            let op = decode_op(b)?;
            let before = decode_value(b)?;
            ops.push(AppliedOp {
                op: ObjectOp::new(object, op),
                before,
            });
        }
        out.push(LogRecord { et, ops, resolved });
    }
    Ok(out)
}

fn encode_seen(b: &mut BytesMut, seen: &[(EtId, u8)]) {
    b.put_u32(seen.len() as u32);
    for (et, disposition) in seen {
        b.put_u64(et.raw());
        b.put_u8(*disposition);
    }
}

fn decode_seen(b: &mut &[u8]) -> Result<Vec<(EtId, u8)>, WireError> {
    let n = get_count(b, 9)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let et = EtId(get_u64(b)?);
        let disposition = get_u8(b)?;
        if disposition > 3 {
            return Err(WireError::BadTag {
                field: "disposition",
                tag: disposition,
            });
        }
        out.push((et, disposition));
    }
    Ok(out)
}

/// Appends the encoded checkpoint to `b` (for embedding in a larger
/// payload).
pub fn encode_site_ckpt_into(b: &mut BytesMut, ckpt: &SiteCkpt) {
    match ckpt {
        SiteCkpt::Ordup(c) => {
            b.put_u8(CKPT_ORDUP);
            encode_values(b, &c.values);
            b.put_u64(c.next_seq.raw());
            encode_msets(b, &c.holdback);
            encode_ets(b, &c.applied_ets);
            b.put_u64(c.applied);
            b.put_u64(c.redelivered);
        }
        SiteCkpt::Commu(c) => {
            b.put_u8(CKPT_COMMU);
            encode_values(b, &c.values);
            encode_held(b, &c.held);
            encode_ets(b, &c.applied_ets);
            b.put_u64(c.applied);
            b.put_u64(c.redelivered);
        }
        SiteCkpt::Ritu(c) => {
            b.put_u8(CKPT_RITU);
            encode_versioned_values(b, &c.values);
            encode_held(b, &c.held);
            encode_ets(b, &c.applied_ets);
            b.put_u64(c.applied);
            b.put_u64(c.redelivered);
        }
        SiteCkpt::RituMv(c) => {
            b.put_u8(CKPT_RITU_MV);
            encode_versioned_values(b, &c.versions);
            b.put_u64(c.vtnc.time);
            b.put_u64(c.vtnc.client.raw());
            b.put_u64(c.newest_installed);
            encode_ets(b, &c.applied_ets);
            b.put_u64(c.applied);
            b.put_u64(c.redelivered);
        }
        SiteCkpt::Compe(c) => {
            b.put_u8(CKPT_COMPE);
            encode_values(b, &c.values);
            encode_log(b, &c.log);
            encode_seen(b, &c.seen);
            b.put_u64(c.applied);
            b.put_u64(c.compensations);
            b.put_u64(c.redelivered);
        }
    }
}

/// Encodes a checkpoint into a self-contained byte payload.
pub fn encode_site_ckpt(ckpt: &SiteCkpt) -> Bytes {
    let mut b = BytesMut::with_capacity(256);
    encode_site_ckpt_into(&mut b, ckpt);
    b.freeze()
}

/// Decodes a checkpoint from a cursor (for embedding in a larger
/// payload). Total: any byte slice yields a checkpoint or an error,
/// never a panic.
pub fn decode_site_ckpt_from(b: &mut &[u8]) -> Result<SiteCkpt, WireError> {
    Ok(match get_u8(b)? {
        CKPT_ORDUP => SiteCkpt::Ordup(OrdupCkpt {
            values: decode_values(b)?,
            next_seq: SeqNo(get_u64(b)?),
            holdback: decode_msets(b)?,
            applied_ets: decode_ets(b)?,
            applied: get_u64(b)?,
            redelivered: get_u64(b)?,
        }),
        CKPT_COMMU => SiteCkpt::Commu(CommuCkpt {
            values: decode_values(b)?,
            held: decode_held(b)?,
            applied_ets: decode_ets(b)?,
            applied: get_u64(b)?,
            redelivered: get_u64(b)?,
        }),
        CKPT_RITU => SiteCkpt::Ritu(RituCkpt {
            values: decode_versioned_values(b)?,
            held: decode_held(b)?,
            applied_ets: decode_ets(b)?,
            applied: get_u64(b)?,
            redelivered: get_u64(b)?,
        }),
        CKPT_RITU_MV => {
            let versions = decode_versioned_values(b)?;
            let time = get_u64(b)?;
            let client = esr_core::ids::ClientId(get_u64(b)?);
            SiteCkpt::RituMv(RituMvCkpt {
                versions,
                vtnc: VersionTs::new(time, client),
                newest_installed: get_u64(b)?,
                applied_ets: decode_ets(b)?,
                applied: get_u64(b)?,
                redelivered: get_u64(b)?,
            })
        }
        CKPT_COMPE => SiteCkpt::Compe(CompeCkpt {
            values: decode_values(b)?,
            log: decode_log(b)?,
            seen: decode_seen(b)?,
            applied: get_u64(b)?,
            compensations: get_u64(b)?,
            redelivered: get_u64(b)?,
        }),
        tag => return Err(WireError::BadTag { field: "ckpt", tag }),
    })
}

/// Decodes a self-contained checkpoint payload produced by
/// [`encode_site_ckpt`].
pub fn decode_site_ckpt(payload: &[u8]) -> Result<SiteCkpt, WireError> {
    let mut b = payload;
    decode_site_ckpt_from(&mut b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::{ClientId, SiteId};
    use esr_core::op::Operation;

    fn sample_ckpts() -> Vec<SiteCkpt> {
        let ts = VersionTs::new(7, ClientId(2));
        let held_mset = MSet::new(
            EtId(9),
            SiteId(1),
            vec![ObjectOp::new(ObjectId(3), Operation::Incr(4))],
        )
        .sequenced(SeqNo(5));
        vec![
            SiteCkpt::Ordup(OrdupCkpt {
                values: vec![(ObjectId(0), Value::Int(3)), (ObjectId(1), Value::Text("x".into()))],
                next_seq: SeqNo(5),
                holdback: vec![held_mset],
                applied_ets: vec![EtId(1), EtId(2)],
                applied: 2,
                redelivered: 1,
            }),
            SiteCkpt::Ordup(OrdupCkpt {
                values: vec![],
                next_seq: SeqNo::ZERO,
                holdback: vec![],
                applied_ets: vec![],
                applied: 0,
                redelivered: 0,
            }),
            SiteCkpt::Commu(CommuCkpt {
                values: vec![(ObjectId(4), Value::Int(-2))],
                held: vec![(EtId(3), vec![ObjectId(4), ObjectId(5)]), (EtId(4), vec![])],
                applied_ets: vec![EtId(3), EtId(4)],
                applied: 2,
                redelivered: 0,
            }),
            SiteCkpt::Ritu(RituCkpt {
                values: vec![(ObjectId(1), ts, Value::Int(10))],
                held: vec![(EtId(6), vec![ObjectId(1)])],
                applied_ets: vec![EtId(6)],
                applied: 1,
                redelivered: 2,
            }),
            SiteCkpt::RituMv(RituMvCkpt {
                versions: vec![
                    (ObjectId(1), VersionTs::new(1, ClientId(0)), Value::Int(1)),
                    (ObjectId(1), ts, Value::Int(2)),
                ],
                vtnc: VersionTs::new(1, ClientId(0)),
                newest_installed: 7,
                applied_ets: vec![EtId(8)],
                applied: 1,
                redelivered: 0,
            }),
            SiteCkpt::Compe(CompeCkpt {
                values: vec![(ObjectId(0), Value::Int(12))],
                log: vec![
                    LogRecord {
                        et: EtId(1),
                        ops: vec![AppliedOp {
                            op: ObjectOp::new(ObjectId(0), Operation::Incr(12)),
                            before: Value::Int(0),
                        }],
                        resolved: false,
                    },
                    LogRecord {
                        et: EtId(2),
                        ops: vec![],
                        resolved: true,
                    },
                ],
                seen: vec![(EtId(1), 0), (EtId(2), 1), (EtId(3), 2), (EtId(4), 3)],
                applied: 2,
                compensations: 1,
                redelivered: 0,
            }),
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for ckpt in sample_ckpts() {
            let bytes = encode_site_ckpt(&ckpt);
            assert_eq!(decode_site_ckpt(&bytes), Ok(ckpt));
        }
    }

    #[test]
    fn truncation_at_any_prefix_is_an_error_not_a_panic() {
        for ckpt in sample_ckpts() {
            let bytes = encode_site_ckpt(&ckpt);
            for cut in 0..bytes.len() {
                assert!(
                    decode_site_ckpt(&bytes.as_slice()[..cut]).is_err(),
                    "prefix of {cut} bytes decoded successfully"
                );
            }
        }
    }

    #[test]
    fn unknown_method_tag_is_rejected() {
        assert!(matches!(
            decode_site_ckpt(&[0xEE]),
            Err(WireError::BadTag { field: "ckpt", .. })
        ));
    }

    #[test]
    fn out_of_range_disposition_is_rejected() {
        let ckpt = SiteCkpt::Compe(CompeCkpt {
            values: vec![],
            log: vec![],
            seen: vec![(EtId(1), 0)],
            applied: 0,
            compensations: 0,
            redelivered: 0,
        });
        let mut raw = encode_site_ckpt(&ckpt).to_vec();
        // The disposition byte trails the final three u64 counters.
        let at = raw.len() - 25;
        raw[at] = 9;
        assert!(matches!(
            decode_site_ckpt(&raw),
            Err(WireError::BadTag { field: "disposition", .. })
        ));
    }
}
