//! # esr-replica — asynchronous replica control methods
//!
//! The paper's contribution: four replica control methods that maintain
//! epsilon-serializability over asynchronously propagated update MSets,
//! plus a deterministic simulated cluster to run them in and synchronous
//! coherency-control baselines to compare against.
//!
//! | Method | Family | Restriction | Module |
//! |---|---|---|---|
//! | ORDUP | forward | message delivery order | [`ordup`] |
//! | COMMU | forward | operation semantics (commutativity) | [`commu`] |
//! | RITU | forward | operation semantics (blind timestamped writes) | [`ritu`] |
//! | COMPE | backward | operation value (compensation) | [`compe`] |
//! | 2PC write-all | baseline | synchronous commit | [`sync2pc`] |
//! | weighted voting | baseline | synchronous quorums | [`quorum`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod ckpt;
pub mod cluster;
pub mod commu;
pub mod etspec;
pub mod compe;
pub mod mset;
pub mod ordup;
pub mod quorum;
pub mod ritu;
pub mod saga;
pub mod site;
pub mod span;
pub mod sync2pc;
pub mod wire;

pub use api::{QueryBuilder, Session, UpdateBuilder};
pub use ckpt::{decode_site_ckpt, encode_site_ckpt, SiteCkpt};
pub use cluster::{ClusterConfig, ClusterStats, Method, QueryReport, SimCluster};
pub use commu::CommuSite;
pub use etspec::{PropagationClass, SpecPipe};
pub use compe::CompeSite;
pub use mset::{MSet, OrderTag};
pub use ordup::{OrdupLamportSite, OrdupSite};
pub use ritu::{RituMvSite, RituOverwriteSite};
pub use saga::{SagaCoordinator, SagaId, SagaState};
pub use quorum::{QuorumCluster, QuorumReport};
pub use site::{QueryOutcome, ReplicaSite};
pub use span::{SpanRec, SpanStage};
pub use sync2pc::{TwoPcCluster, TwoPcReport};
pub use wire::{decode_mset, encode_mset, WireError};
