//! COMPE — compensation-based backward replica control (§4).
//!
//! For performance, a site "may start running MSets before the global
//! update is committed". Every applied MSet stays on the recovery log
//! until its commit notice arrives; an abort notice triggers
//! compensation:
//!
//! * the **commutative fast path** applies the compensation MSet
//!   directly when everything logged after the victim commutes with it;
//! * otherwise the **suffix rollback** undoes the log in reverse (via
//!   before-images), skips the victim, and replays the survivors — the
//!   paper's `Inc·Mul·Div·Dec·Mul = Mul` example.
//!
//! Divergence bounding (§4.2): compensations inject inconsistency into
//! queries *after the fact*, so queries are charged conservatively — one
//! unit per **at-risk** (applied but uncommitted) MSet conflicting with
//! the read set, an upper bound on the compensations that could still
//! strike what the query saw.

use std::collections::BTreeMap;

use esr_core::divergence::InconsistencyCounter;
use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::value::Value;
use esr_obs::SiteInstruments;
use esr_storage::recovery_log::{RecoveryLog, RollbackReport};
use esr_storage::store::ObjectStore;

use crate::mset::MSet;
use crate::site::{QueryOutcome, ReplicaSite};

/// A COMPE replica site.
#[derive(Debug)]
pub struct CompeSite {
    site: SiteId,
    store: ObjectStore,
    log: RecoveryLog,
    /// Every ET ever applied here (duplicate suppression), with its
    /// final disposition.
    seen: BTreeMap<EtId, Disposition>,
    applied: u64,
    compensations: u64,
    redelivered: u64,
    /// Opt-in oracle audit: lifecycle events in the order they happened.
    audit: Option<Vec<(EtId, CompeEvent)>>,
    /// Metrics bundle (no-op until attached).
    obs: SiteInstruments,
}

/// One lifecycle event on the COMPE audit log (see
/// [`CompeSite::enable_audit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompeEvent {
    /// MSet applied optimistically (entered the risk window).
    Applied,
    /// Commit notice resolved an at-risk MSet.
    Committed,
    /// Abort notice compensated an at-risk MSet.
    Compensated,
    /// Late MSet dropped because its abort arrived first.
    Suppressed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// Applied, waiting for the global outcome.
    AtRisk,
    /// Applied and committed.
    Committed,
    /// Aborted (compensated, or suppressed before application).
    Aborted,
    /// Commit notice arrived before the MSet: apply it on arrival
    /// without entering the risk window.
    CommitPending,
}

impl Disposition {
    /// Stable byte tag for the checkpoint codec.
    fn to_u8(self) -> u8 {
        match self {
            Self::AtRisk => 0,
            Self::Committed => 1,
            Self::Aborted => 2,
            Self::CommitPending => 3,
        }
    }

    /// Inverse of [`Self::to_u8`]; the codec rejects tags above 3, so
    /// the catch-all arm is unreachable on decoded images.
    fn from_u8(tag: u8) -> Self {
        match tag {
            0 => Self::AtRisk,
            1 => Self::Committed,
            2 => Self::Aborted,
            _ => Self::CommitPending,
        }
    }
}

impl CompeSite {
    /// A fresh site.
    pub fn new(site: SiteId) -> Self {
        Self {
            site,
            store: ObjectStore::new(),
            log: RecoveryLog::new(),
            seen: BTreeMap::new(),
            applied: 0,
            compensations: 0,
            redelivered: 0,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Attaches a metrics bundle: subsequent deliveries, decisions, and
    /// queries tick its series (a detached bundle costs one branch).
    pub fn attach_metrics(&mut self, obs: SiteInstruments) {
        self.obs = obs;
    }

    /// Turns on the audit log consumed by the `esr-check` COMPE
    /// compensability oracle: every apply / commit / compensate /
    /// suppress is recorded in order, so the oracle can check each
    /// optimistic apply was eventually resolved and each abort either
    /// compensated or suppressed.
    pub fn enable_audit(&mut self) {
        self.audit.get_or_insert_with(Vec::new);
    }

    /// The audit log (empty unless [`CompeSite::enable_audit`] was
    /// called before traffic began).
    pub fn audit_log(&self) -> &[(EtId, CompeEvent)] {
        self.audit.as_deref().unwrap_or(&[])
    }

    fn note(&mut self, et: EtId, ev: CompeEvent) {
        if let Some(log) = &mut self.audit {
            log.push((et, ev));
        }
    }

    /// Total MSets applied optimistically.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Total aborts compensated.
    pub fn compensations(&self) -> u64 {
        self.compensations
    }

    /// Duplicate deliveries this site suppressed — re-arrivals of an ET
    /// already applied here (at risk or committed). Late MSets dropped
    /// because their abort arrived first are *not* counted: those are
    /// first deliveries, suppressed for a different reason.
    pub fn redelivered(&self) -> u64 {
        self.redelivered
    }

    /// Number of MSets still at risk of rollback.
    pub fn at_risk(&self) -> usize {
        self.log.at_risk()
    }

    /// Captures the site's full protocol state as a checkpoint image:
    /// store contents (optimistic state included), the recovery log with
    /// its before-images, and every ET's disposition — everything needed
    /// to keep compensating aborts that arrive after a restart.
    pub fn to_ckpt(&self) -> crate::ckpt::CompeCkpt {
        crate::ckpt::CompeCkpt {
            values: self.store.snapshot().into_iter().collect(),
            log: self.log.records().cloned().collect(),
            seen: self
                .seen
                .iter()
                .map(|(et, d)| (*et, d.to_u8()))
                .collect(),
            applied: self.applied,
            compensations: self.compensations,
            redelivered: self.redelivered,
        }
    }

    /// Rebuilds a site from a checkpoint image, mid-protocol: at-risk
    /// MSets stay compensatable (their before-images survive in the
    /// restored recovery log) and pending-commit races resume where the
    /// cut left them.
    pub fn from_ckpt(site: SiteId, c: crate::ckpt::CompeCkpt) -> Self {
        Self {
            site,
            store: ObjectStore::with_values(c.values),
            log: RecoveryLog::from_records(c.log),
            seen: c
                .seen
                .into_iter()
                .map(|(et, tag)| (et, Disposition::from_u8(tag)))
                .collect(),
            applied: c.applied,
            compensations: c.compensations,
            redelivered: c.redelivered,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Commit notice: the global update committed; its MSet leaves the
    /// risk window. A commit that races ahead of the MSet is remembered
    /// so the late MSet applies directly as committed state.
    pub fn commit(&mut self, et: EtId) {
        match self.seen.get_mut(&et) {
            Some(d @ Disposition::AtRisk) => {
                *d = Disposition::Committed;
                self.log.commit(et);
                self.note(et, CompeEvent::Committed);
                self.obs.set_at_risk(self.log.at_risk() as u64);
            }
            Some(_) => {}
            None => {
                self.seen.insert(et, Disposition::CommitPending);
            }
        }
    }

    /// Abort notice: compensate the MSet. Returns the rollback report,
    /// or `None` when the ET was never applied here (or already
    /// resolved) — an abort for an unseen ET is recorded so a late MSet
    /// delivery is suppressed.
    #[expect(clippy::expect_used, reason = "an at-risk ET is on the log and its before-images re-apply cleanly; anything else is log corruption")]
    pub fn abort(&mut self, et: EtId) -> Option<RollbackReport> {
        match self.seen.get(&et) {
            Some(Disposition::AtRisk) => {}
            Some(_) => return None,
            None => {
                // Abort raced ahead of the MSet: remember so the MSet is
                // dropped on arrival.
                self.seen.insert(et, Disposition::Aborted);
                self.note(et, CompeEvent::Suppressed);
                return None;
            }
        }
        self.seen.insert(et, Disposition::Aborted);
        let report = self
            .log
            .compensate(&mut self.store, et)
            .expect("at-risk ET must be on the log")
            .expect("compensation ops apply cleanly");
        self.compensations += 1;
        self.note(et, CompeEvent::Compensated);
        self.obs.compensations(1);
        self.obs.set_at_risk(self.log.at_risk() as u64);
        Some(report)
    }

    /// Applies and logs a buffered run of at-risk MSets in one
    /// [`RecoveryLog::apply_msets`] call (reserving log storage once),
    /// keeping one record per ET so individual aborts stay
    /// compensatable.
    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn flush_at_risk(&mut self, run: &mut Vec<MSet>) {
        if run.is_empty() {
            return;
        }
        self.log
            .apply_msets(
                &mut self.store,
                run.iter().map(|m| (m.et, m.ops.as_slice())),
            )
            .expect("optimistic MSet must apply cleanly");
        run.clear();
    }
}

impl ReplicaSite for CompeSite {
    fn method_name(&self) -> &'static str {
        "COMPE"
    }

    fn site_id(&self) -> SiteId {
        self.site
    }

    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn deliver(&mut self, mset: MSet) {
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        match self.seen.get(&mset.et) {
            None => {
                self.log
                    .apply_mset(&mut self.store, mset.et, &mset.ops)
                    .expect("optimistic MSet must apply cleanly");
                self.seen.insert(mset.et, Disposition::AtRisk);
                self.applied += 1;
                self.note(mset.et, CompeEvent::Applied);
            }
            Some(Disposition::CommitPending) => {
                // Already committed globally: apply without logging.
                for op in &mset.ops {
                    self.store
                        .apply(op)
                        .expect("committed MSet must apply cleanly");
                }
                self.seen.insert(mset.et, Disposition::Committed);
                self.applied += 1;
                self.note(mset.et, CompeEvent::Applied);
                self.note(mset.et, CompeEvent::Committed);
            }
            Some(Disposition::AtRisk) | Some(Disposition::Committed) => {
                self.redelivered += 1; // duplicate of an applied MSet
            }
            Some(Disposition::Aborted) => {} // abort arrived first: suppress
        }
        self.obs.delivered(
            1,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
        self.obs.set_at_risk(self.log.at_risk() as u64);
    }

    /// Batch fast path: consecutive at-risk MSets are logged and applied
    /// through one batch-wise recovery-log call. The log keeps one
    /// record per ET (aborts target individual ETs) and before-images
    /// are recorded in exact delivery order — a commit-pending MSet in
    /// the middle of the batch flushes the buffered run first so the
    /// log's history stays faithful.
    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        let batch_len = msets.len() as u64;
        let mut run: Vec<MSet> = Vec::new();
        for mset in msets {
            match self.seen.get(&mset.et) {
                None => {
                    self.seen.insert(mset.et, Disposition::AtRisk);
                    self.applied += 1;
                    self.note(mset.et, CompeEvent::Applied);
                    run.push(mset);
                }
                Some(Disposition::CommitPending) => {
                    // Keep store/log application order identical to
                    // sequential delivery.
                    self.flush_at_risk(&mut run);
                    for op in &mset.ops {
                        self.store
                            .apply(op)
                            .expect("committed MSet must apply cleanly");
                    }
                    self.seen.insert(mset.et, Disposition::Committed);
                    self.applied += 1;
                    self.note(mset.et, CompeEvent::Applied);
                    self.note(mset.et, CompeEvent::Committed);
                }
                Some(Disposition::AtRisk) | Some(Disposition::Committed) => {
                    self.redelivered += 1; // duplicate of an applied MSet
                }
                Some(Disposition::Aborted) => {} // abort arrived first
            }
        }
        self.flush_at_risk(&mut run);
        self.obs.batch(batch_len);
        self.obs.delivered(
            batch_len,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
        self.obs.set_at_risk(self.log.at_risk() as u64);
    }

    fn has_applied(&self, et: EtId) -> bool {
        matches!(
            self.seen.get(&et),
            Some(Disposition::AtRisk) | Some(Disposition::Committed)
        )
    }

    fn query(
        &mut self,
        read_set: &[ObjectId],
        counter: &mut InconsistencyCounter,
    ) -> QueryOutcome {
        // One unit per at-risk MSet writing a queried object: the
        // conservative estimate of compensations that may still undo
        // state this query is about to read.
        let charge = self
            .log
            .at_risk_records()
            .filter(|r| {
                r.ops
                    .iter()
                    .any(|a| a.op.op.is_write() && read_set.contains(&a.op.object))
            })
            .count() as u64;
        if !counter.charge(charge).is_admitted() {
            self.obs.query(charge, counter.spec().limit, false);
            return QueryOutcome::rejected();
        }
        self.obs.query(charge, counter.spec().limit, true);
        QueryOutcome {
            values: read_set.iter().map(|&o| self.store.get(o)).collect(),
            charged: charge,
            admitted: true,
        }
    }

    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.store.snapshot()
    }

    fn backlog(&self) -> usize {
        0 // optimistic application: nothing held back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::divergence::EpsilonSpec;
    use esr_core::op::{ObjectOp, Operation};
    use esr_storage::recovery_log::RollbackStrategy;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn mset(et: u64, ops: Vec<ObjectOp>) -> MSet {
        MSet::new(EtId(et), SiteId(9), ops)
    }
    fn inc(et: u64, obj: ObjectId, n: i64) -> MSet {
        mset(et, vec![ObjectOp::new(obj, Operation::Incr(n))])
    }
    fn mul(et: u64, obj: ObjectId, k: i64) -> MSet {
        mset(et, vec![ObjectOp::new(obj, Operation::MulBy(k))])
    }

    fn unbounded() -> InconsistencyCounter {
        InconsistencyCounter::new(EpsilonSpec::UNBOUNDED)
    }

    #[test]
    fn optimistic_apply_then_commit() {
        let mut s = CompeSite::new(SiteId(0));
        s.deliver(inc(1, X, 10));
        assert_eq!(s.snapshot()[&X], Value::Int(10), "visible before commit");
        assert_eq!(s.at_risk(), 1);
        s.commit(EtId(1));
        assert_eq!(s.at_risk(), 0);
        assert_eq!(s.snapshot()[&X], Value::Int(10));
    }

    #[test]
    fn abort_with_commutative_fast_path() {
        let mut s = CompeSite::new(SiteId(0));
        s.deliver(inc(1, X, 10));
        s.deliver(inc(2, X, 5));
        let report = s.abort(EtId(1)).unwrap();
        assert_eq!(report.strategy, RollbackStrategy::CommutativeCompensation);
        assert_eq!(s.snapshot()[&X], Value::Int(5));
        assert_eq!(s.compensations(), 1);
        assert_eq!(s.at_risk(), 1);
    }

    #[test]
    fn abort_with_suffix_rollback_matches_paper_example() {
        let mut s = CompeSite::new(SiteId(0));
        s.deliver(inc(1, X, 10));
        s.deliver(mul(2, X, 2));
        assert_eq!(s.snapshot()[&X], Value::Int(20));
        let report = s.abort(EtId(1)).unwrap();
        assert_eq!(report.strategy, RollbackStrategy::SuffixRollback);
        assert_eq!(s.snapshot()[&X], Value::Int(0), "equals Mul(x,2) alone");
        s.commit(EtId(2));
        assert_eq!(s.at_risk(), 0);
    }

    #[test]
    fn redelivery_storm_is_idempotent_and_counted() {
        let msets = [inc(1, X, 10), mul(2, X, 2), inc(3, X, 7)];
        let mut s = CompeSite::new(SiteId(0));
        for m in msets.iter().chain(msets.iter().rev()) {
            s.deliver(m.clone());
        }
        assert_eq!(s.snapshot()[&X], Value::Int(27), "((0+10)*2)+7, each once");
        assert_eq!(s.applied(), 3);
        assert_eq!(s.redelivered(), 3);
        assert_eq!(s.at_risk(), 3, "one log record per ET despite duplicates");
        // Duplicates after commit are still suppressed and counted.
        s.commit(EtId(1));
        s.deliver(msets[0].clone());
        assert_eq!(s.redelivered(), 4);
        assert_eq!(s.snapshot()[&X], Value::Int(27));
        // A suppressed late MSet (abort-first) is NOT a redelivery.
        assert!(s.abort(EtId(9)).is_none());
        s.deliver(inc(9, X, 100));
        assert_eq!(s.redelivered(), 4);
    }

    #[test]
    fn double_abort_is_ignored() {
        let mut s = CompeSite::new(SiteId(0));
        s.deliver(inc(1, X, 10));
        assert!(s.abort(EtId(1)).is_some());
        assert!(s.abort(EtId(1)).is_none());
        assert_eq!(s.compensations(), 1);
    }

    #[test]
    fn abort_before_delivery_suppresses_late_mset() {
        let mut s = CompeSite::new(SiteId(0));
        assert!(s.abort(EtId(1)).is_none());
        s.deliver(inc(1, X, 10));
        assert_eq!(
            s.snapshot().get(&X),
            None,
            "late MSet for an aborted ET must not apply"
        );
        assert_eq!(s.applied(), 0);
    }

    #[test]
    fn abort_after_commit_is_rejected() {
        let mut s = CompeSite::new(SiteId(0));
        s.deliver(inc(1, X, 10));
        s.commit(EtId(1));
        assert!(s.abort(EtId(1)).is_none());
        assert_eq!(s.snapshot()[&X], Value::Int(10));
    }

    #[test]
    fn query_charges_at_risk_conflicts() {
        let mut s = CompeSite::new(SiteId(0));
        s.deliver(inc(1, X, 10));
        s.deliver(inc(2, Y, 5));
        s.deliver(inc(3, X, 1));
        let mut c = unbounded();
        let out = s.query(&[X], &mut c);
        assert_eq!(out.charged, 2, "two at-risk MSets write x");
        s.commit(EtId(1));
        s.commit(EtId(3));
        let mut c2 = InconsistencyCounter::new(EpsilonSpec::STRICT);
        assert!(s.query(&[X], &mut c2).admitted, "committed state is safe");
        assert!(!s.query(&[Y], &mut c2).admitted, "ET2 still at risk on y");
    }

    #[test]
    fn replicas_converge_when_same_outcomes_applied() {
        // Same MSets, different interleaving of aborts/commits → same
        // final state on both replicas.
        let m1 = inc(1, X, 10);
        let m2 = mul(2, X, 2);
        let m3 = inc(3, X, 7);

        let mut a = CompeSite::new(SiteId(0));
        a.deliver(m1.clone());
        a.deliver(m2.clone());
        a.deliver(m3.clone());
        a.abort(EtId(1));
        a.commit(EtId(2));
        a.commit(EtId(3));

        let mut b = CompeSite::new(SiteId(1));
        b.deliver(m2);
        b.abort(EtId(1)); // abort arrives before the MSet
        b.deliver(m3);
        b.deliver(m1);
        b.commit(EtId(3));
        b.commit(EtId(2));

        // NOTE: COMPE guarantees convergence only when update MSets are
        // applied in an agreed order or commute; Mul and Inc conflict, so
        // the two replicas agree only because the surviving history
        // (Mul then Inc) is identical here.
        assert_eq!(a.snapshot()[&X], Value::Int(7), "(0*2)+7");
        assert_eq!(b.snapshot()[&X], Value::Int(7));
    }

    #[test]
    fn strict_query_sees_only_committed_state() {
        let mut s = CompeSite::new(SiteId(0));
        s.deliver(inc(1, X, 10));
        let mut c = InconsistencyCounter::new(EpsilonSpec::STRICT);
        assert!(!s.query(&[X], &mut c).admitted);
    }
}
