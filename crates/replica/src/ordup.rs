//! ORDUP — ordered updates (§3.1).
//!
//! Replicas of the same object are updated *asynchronously but in the
//! same order*, making the update ETs SR; queries are processed in any
//! order because they may see inconsistent results.
//!
//! Two ordering mechanisms, matching the paper:
//!
//! * [`OrdupSite`] — a **centralized sequencer** stamps each update MSet
//!   with a dense global sequence number; each site "simply waits for the
//!   next MSet in the execution sequence to show up before running other
//!   MSets" (a hold-back queue keyed by sequence number).
//! * [`OrdupLamportSite`] — **Lamport-style global timestamps** for true
//!   distributed control; the site reconstructs each origin's FIFO order
//!   and applies MSets in timestamp order once they are *stable* (a
//!   message with a higher timestamp has been seen from every origin, so
//!   no smaller timestamp can still arrive).
//!
//! Divergence bounding: a query is charged one unit per held-back MSet
//! that writes an object in its read set — those are exactly the
//! overlapping update ETs the query would expose. With a sequencer, a
//! strict (epsilon = 0) query takes a *global order token* and is served
//! only when the site has applied every update sequenced before it
//! ("the query ET is allowed to proceed only when it is running in the
//! global order"); [`OrdupSite::applied_through`] supports that check.

use std::collections::BTreeMap;

use esr_core::divergence::InconsistencyCounter;
use esr_core::ids::{LamportTs, ObjectId, SeqNo, SiteId};
use esr_core::value::Value;
use esr_obs::SiteInstruments;
use esr_storage::store::ObjectStore;

use esr_storage::shard::FastIdSet;

use crate::mset::{MSet, OrderTag};
use crate::site::{QueryOutcome, ReplicaSite};

/// ORDUP site using sequencer-assigned global order.
#[derive(Debug)]
pub struct OrdupSite {
    site: SiteId,
    store: ObjectStore,
    /// The next sequence number this site will apply.
    next_seq: SeqNo,
    /// Delivered MSets waiting for their predecessors.
    holdback: BTreeMap<SeqNo, MSet>,
    /// ETs whose MSets have been applied.
    applied_ets: FastIdSet<esr_core::ids::EtId>,
    /// Total MSets applied (for reporting).
    applied: u64,
    /// Duplicate deliveries recognized and suppressed (at-least-once
    /// transport makes these routine, not errors).
    redelivered: u64,
    /// Opt-in oracle audit: `(et, seq)` in actual application order.
    audit: Option<Vec<(esr_core::ids::EtId, SeqNo)>>,
    /// Metrics bundle (no-op until attached).
    obs: SiteInstruments,
}

impl OrdupSite {
    /// A fresh site.
    pub fn new(site: SiteId) -> Self {
        Self {
            site,
            store: ObjectStore::new(),
            next_seq: SeqNo::ZERO,
            holdback: BTreeMap::new(),
            applied_ets: FastIdSet::default(),
            applied: 0,
            redelivered: 0,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Attaches a metrics bundle: subsequent deliveries and queries
    /// tick its series (a detached bundle costs one branch).
    pub fn attach_metrics(&mut self, obs: SiteInstruments) {
        self.obs = obs;
    }

    /// Turns on the audit log consumed by the `esr-check` ORDUP
    /// global-order oracle: every applied MSet is recorded as
    /// `(et, seq)` in the order it reached the store.
    pub fn enable_audit(&mut self) {
        self.audit.get_or_insert_with(Vec::new);
    }

    /// The audit log (empty unless [`OrdupSite::enable_audit`] was
    /// called before deliveries began).
    pub fn audit_log(&self) -> &[(esr_core::ids::EtId, SeqNo)] {
        self.audit.as_deref().unwrap_or(&[])
    }

    /// **Fault injection for `esr-check` canaries** ("the sequencer
    /// check disabled"): applies the MSet immediately in arrival order,
    /// bypassing the hold-back queue entirely. The audit log keeps the
    /// MSet's real sequence number, so the global-order oracle sees the
    /// out-of-order application this shortcut causes. Never call this
    /// outside a checker run.
    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    pub fn apply_unchecked(&mut self, mset: MSet) {
        let OrderTag::Sequenced(seq) = mset.order else {
            panic!("ORDUP sequencer site received non-sequenced MSet {mset}");
        };
        if self.applied_ets.contains(&mset.et) {
            self.redelivered += 1;
            return;
        }
        for op in &mset.ops {
            self.store
                .apply(op)
                .expect("update MSet must apply cleanly at every replica");
        }
        if let Some(log) = &mut self.audit {
            log.push((mset.et, seq));
        }
        self.applied_ets.insert(mset.et);
        self.applied += 1;
    }

    /// Captures the site's full protocol state as a checkpoint image:
    /// store contents, the hold-back queue, the next expected sequence
    /// number, and the duplicate-suppression set. Audit logs and
    /// metrics bundles are deliberately excluded (the checker and
    /// daemon re-arm them after restore).
    pub fn to_ckpt(&self) -> crate::ckpt::OrdupCkpt {
        let mut applied_ets: Vec<esr_core::ids::EtId> =
            self.applied_ets.iter().copied().collect();
        applied_ets.sort_unstable();
        crate::ckpt::OrdupCkpt {
            values: self.store.snapshot().into_iter().collect(),
            next_seq: self.next_seq,
            holdback: self.holdback.values().cloned().collect(),
            applied_ets,
            applied: self.applied,
            redelivered: self.redelivered,
        }
    }

    /// Rebuilds a site from a checkpoint image, mid-protocol: the
    /// hold-back queue resumes waiting for exactly the same next
    /// sequence number, and redelivered duplicates of already-applied
    /// ETs keep being suppressed.
    ///
    /// # Panics
    ///
    /// If a held-back MSet in the image is not `Sequenced` — the codec
    /// cannot produce one from an image written by [`Self::to_ckpt`],
    /// so this indicates a hand-built image.
    pub fn from_ckpt(site: SiteId, c: crate::ckpt::OrdupCkpt) -> Self {
        let mut holdback = BTreeMap::new();
        for m in c.holdback {
            let OrderTag::Sequenced(seq) = m.order else {
                panic!("ORDUP checkpoint holds non-sequenced MSet {m}");
            };
            holdback.insert(seq, m);
        }
        Self {
            site,
            store: ObjectStore::with_values(c.values),
            next_seq: c.next_seq,
            holdback,
            applied_ets: c.applied_ets.into_iter().collect(),
            applied: c.applied,
            redelivered: c.redelivered,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// The next sequence number this site is waiting for.
    pub fn next_seq(&self) -> SeqNo {
        self.next_seq
    }

    /// True when this site has applied every update sequenced strictly
    /// before `token` — the admission test for strict queries holding a
    /// global order token.
    pub fn applied_through(&self, token: SeqNo) -> bool {
        self.next_seq >= token
    }

    /// Total MSets applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Duplicate deliveries this site suppressed (each one is proof the
    /// idempotency guard fired under at-least-once delivery).
    pub fn redelivered(&self) -> u64 {
        self.redelivered
    }

    /// How many globally sequenced updates this site has **not** yet
    /// applied, given the sequencer's current counter (`horizon` = the
    /// next sequence number the sequencer would hand out). This is the
    /// conservative charge a query holding a global order token pays:
    /// every sequenced-but-unapplied update might conflict.
    pub fn gap_to(&self, horizon: SeqNo) -> u64 {
        horizon.raw().saturating_sub(self.next_seq.raw())
    }

    /// Applies `mset` assuming it carries exactly `next_seq` — the dense
    /// in-order hot path, which never touches the hold-back map.
    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn apply_next(&mut self, mset: MSet) {
        for op in &mset.ops {
            self.store
                .apply(op)
                .expect("update MSet must apply cleanly at every replica");
        }
        if let Some(log) = &mut self.audit {
            log.push((mset.et, self.next_seq));
        }
        self.applied_ets.insert(mset.et);
        self.next_seq = self.next_seq.next();
        self.applied += 1;
    }

    fn drain(&mut self) {
        while let Some(mset) = self.holdback.remove(&self.next_seq) {
            self.apply_next(mset);
        }
    }
}

impl ReplicaSite for OrdupSite {
    fn method_name(&self) -> &'static str {
        "ORDUP"
    }

    fn site_id(&self) -> SiteId {
        self.site
    }

    fn deliver(&mut self, mset: MSet) {
        let OrderTag::Sequenced(seq) = mset.order else {
            panic!("ORDUP sequencer site received non-sequenced MSet {mset}");
        };
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        if seq < self.next_seq {
            self.redelivered += 1; // duplicate of an already-applied MSet
        } else if seq == self.next_seq {
            self.apply_next(mset);
            if !self.holdback.is_empty() {
                self.drain(); // this was a gap-filler: successors may unblock
            }
        } else if self.holdback.insert(seq, mset).is_some() {
            // Same seq = same MSet (the sequencer never reuses a number),
            // so replacing the held-back copy with its duplicate is a no-op.
            self.redelivered += 1;
        }
        self.obs.delivered(
            1,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
        self.obs.set_backlog(self.holdback.len() as u64);
    }

    /// Batch fast path: the dense in-order prefix of the batch is applied
    /// inline (no hold-back traffic at all); only MSets arriving ahead of
    /// a gap are parked, and each gap-filler drains whatever it unblocks.
    /// The sequence numbers are consumed in exactly the dense order the
    /// one-at-a-time path would consume them.
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        let batch_len = msets.len() as u64;
        for mset in msets {
            let OrderTag::Sequenced(seq) = mset.order else {
                panic!("ORDUP sequencer site received non-sequenced MSet {mset}");
            };
            if seq < self.next_seq {
                self.redelivered += 1;
                continue; // duplicate of an already-applied MSet
            }
            if seq == self.next_seq {
                self.apply_next(mset);
                if !self.holdback.is_empty() {
                    self.drain();
                }
            } else if self.holdback.insert(seq, mset).is_some() {
                self.redelivered += 1; // duplicate of a held-back MSet
            }
        }
        self.obs.batch(batch_len);
        self.obs.delivered(
            batch_len,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
        self.obs.set_backlog(self.holdback.len() as u64);
    }

    fn has_applied(&self, et: esr_core::ids::EtId) -> bool {
        self.applied_ets.contains(&et)
    }

    fn query(
        &mut self,
        read_set: &[ObjectId],
        counter: &mut InconsistencyCounter,
    ) -> QueryOutcome {
        // Every held-back MSet writing a queried object is an overlapping
        // update whose effect this read would order inconsistently.
        let charge = self
            .holdback
            .values()
            .filter(|m| m.touches(read_set))
            .count() as u64;
        if !counter.charge(charge).is_admitted() {
            self.obs.query(charge, counter.spec().limit, false);
            return QueryOutcome::rejected();
        }
        self.obs.query(charge, counter.spec().limit, true);
        QueryOutcome {
            values: read_set.iter().map(|&o| self.store.get(o)).collect(),
            charged: charge,
            admitted: true,
        }
    }

    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.store.snapshot()
    }

    fn backlog(&self) -> usize {
        self.holdback.len()
    }
}

/// ORDUP site using distributed Lamport-timestamp ordering.
#[derive(Debug)]
pub struct OrdupLamportSite {
    site: SiteId,
    store: ObjectStore,
    /// All origins that may send updates (needed for stability).
    origins: Vec<SiteId>,
    /// Per-origin FIFO reassembly: next expected fifo number and
    /// out-of-order buffer.
    fifo_next: BTreeMap<SiteId, SeqNo>,
    fifo_buffer: BTreeMap<(SiteId, SeqNo), MSet>,
    /// Highest timestamp seen from each origin (after FIFO reassembly).
    last_seen: BTreeMap<SiteId, LamportTs>,
    /// Timestamp-ordered hold-back of reassembled MSets.
    holdback: BTreeMap<LamportTs, MSet>,
    applied_ets: FastIdSet<esr_core::ids::EtId>,
    applied: u64,
    redelivered: u64,
    /// Metrics bundle (no-op until attached).
    obs: SiteInstruments,
}

impl OrdupLamportSite {
    /// A fresh site that expects updates from `origins`.
    pub fn new(site: SiteId, origins: Vec<SiteId>) -> Self {
        Self {
            site,
            store: ObjectStore::new(),
            origins,
            fifo_next: BTreeMap::new(),
            fifo_buffer: BTreeMap::new(),
            last_seen: BTreeMap::new(),
            holdback: BTreeMap::new(),
            applied_ets: FastIdSet::default(),
            applied: 0,
            redelivered: 0,
            obs: SiteInstruments::default(),
        }
    }

    /// Attaches a metrics bundle: subsequent deliveries and queries
    /// tick its series (a detached bundle costs one branch).
    pub fn attach_metrics(&mut self, obs: SiteInstruments) {
        self.obs = obs;
    }

    /// Total MSets applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Duplicate deliveries this site suppressed (each one is proof the
    /// idempotency guard fired under at-least-once delivery).
    pub fn redelivered(&self) -> u64 {
        self.redelivered
    }

    /// Records a heartbeat from `origin` carrying its current clock:
    /// raises the stability horizon so held-back MSets can apply even
    /// when `origin` has gone quiet. The cluster driver broadcasts
    /// heartbeats during quiesce.
    pub fn heartbeat(&mut self, origin: SiteId, ts: LamportTs) {
        let before_applied = self.applied;
        let e = self.last_seen.entry(origin).or_insert(ts);
        if ts > *e {
            *e = ts;
        }
        self.drain_stable();
        self.obs.delivered(0, self.applied - before_applied, 0);
        self.obs
            .set_backlog((self.holdback.len() + self.fifo_buffer.len()) as u64);
    }

    /// FIFO-reassembles one delivered MSet into the timestamp hold-back
    /// without draining — the shared front half of [`ReplicaSite::deliver`]
    /// and [`ReplicaSite::deliver_batch`].
    fn ingest(&mut self, mset: MSet) {
        let OrderTag::Lamport { ts, fifo } = mset.order else {
            panic!("ORDUP-Lamport site received non-Lamport MSet {mset}");
        };
        let origin = mset.origin;
        let mut cursor = *self.fifo_next.entry(origin).or_insert(SeqNo::ZERO);
        if fifo < cursor {
            self.redelivered += 1;
            return; // duplicate
        }
        if self.fifo_buffer.contains_key(&(origin, fifo)) {
            self.redelivered += 1;
            return; // duplicate of a buffered MSet
        }
        self.fifo_buffer.insert((origin, fifo), mset);
        // Reassemble this origin's FIFO order.
        while let Some(m) = self.fifo_buffer.remove(&(origin, cursor)) {
            let OrderTag::Lamport { ts: mts, .. } = m.order else {
                unreachable!("buffered MSets are Lamport-tagged");
            };
            cursor = cursor.next();
            let seen = self.last_seen.entry(origin).or_insert(mts);
            if mts > *seen {
                *seen = mts;
            }
            self.holdback.insert(mts, m);
        }
        self.fifo_next.insert(origin, cursor);
        let _ = ts;
    }

    fn stable_horizon(&self) -> Option<LamportTs> {
        // A timestamp is stable when every origin has been seen at or
        // past it. If any origin has never been heard from, nothing is
        // stable yet.
        self.origins
            .iter()
            .map(|o| self.last_seen.get(o).copied())
            .min()
            .flatten()
    }

    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn drain_stable(&mut self) {
        let Some(horizon) = self.stable_horizon() else {
            return;
        };
        while let Some(entry) = self.holdback.first_entry() {
            if *entry.key() > horizon {
                break;
            }
            let mset = entry.remove();
            for op in &mset.ops {
                self.store
                    .apply(op)
                    .expect("update MSet must apply cleanly at every replica");
            }
            self.applied_ets.insert(mset.et);
            self.applied += 1;
        }
    }
}

impl ReplicaSite for OrdupLamportSite {
    fn method_name(&self) -> &'static str {
        "ORDUP-L"
    }

    fn site_id(&self) -> SiteId {
        self.site
    }

    fn deliver(&mut self, mset: MSet) {
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        self.ingest(mset);
        self.drain_stable();
        self.obs.delivered(
            1,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
        self.obs
            .set_backlog((self.holdback.len() + self.fifo_buffer.len()) as u64);
    }

    /// Batch fast path: ingest (FIFO-reassemble) every MSet first, then
    /// run stability once. Ingestion only ever *raises* the stable
    /// horizon, so a single drain at the end applies exactly the MSets
    /// the per-delivery drains would have, in the same timestamp order.
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        let batch_len = msets.len() as u64;
        for mset in msets {
            self.ingest(mset);
        }
        self.drain_stable();
        self.obs.batch(batch_len);
        self.obs.delivered(
            batch_len,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
        self.obs
            .set_backlog((self.holdback.len() + self.fifo_buffer.len()) as u64);
    }

    fn has_applied(&self, et: esr_core::ids::EtId) -> bool {
        self.applied_ets.contains(&et)
    }

    fn query(
        &mut self,
        read_set: &[ObjectId],
        counter: &mut InconsistencyCounter,
    ) -> QueryOutcome {
        let charge = self
            .holdback
            .values()
            .filter(|m| m.touches(read_set))
            .count() as u64;
        if !counter.charge(charge).is_admitted() {
            self.obs.query(charge, counter.spec().limit, false);
            return QueryOutcome::rejected();
        }
        self.obs.query(charge, counter.spec().limit, true);
        QueryOutcome {
            values: read_set.iter().map(|&o| self.store.get(o)).collect(),
            charged: charge,
            admitted: true,
        }
    }

    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.store.snapshot()
    }

    fn backlog(&self) -> usize {
        self.holdback.len() + self.fifo_buffer.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::divergence::EpsilonSpec;
    use esr_core::ids::EtId;
    use esr_core::op::{ObjectOp, Operation};

    const X: ObjectId = ObjectId(0);

    fn mset_seq(et: u64, seq: u64, ops: Vec<ObjectOp>) -> MSet {
        MSet::new(EtId(et), SiteId(9), ops).sequenced(SeqNo(seq))
    }

    fn unbounded() -> InconsistencyCounter {
        InconsistencyCounter::new(EpsilonSpec::UNBOUNDED)
    }

    #[test]
    fn applies_in_sequence_order_despite_reordered_delivery() {
        let mut s = OrdupSite::new(SiteId(0));
        // Deliver #1 (Mul) before #0 (Inc): must still apply Inc first.
        s.deliver(mset_seq(2, 1, vec![ObjectOp::new(X, Operation::MulBy(2))]));
        assert_eq!(s.backlog(), 1, "held back waiting for #0");
        assert_eq!(s.snapshot().get(&X), None, "nothing applied yet");
        s.deliver(mset_seq(1, 0, vec![ObjectOp::new(X, Operation::Incr(10))]));
        assert_eq!(s.backlog(), 0);
        assert_eq!(s.snapshot()[&X], Value::Int(20), "(0+10)*2");
        assert_eq!(s.applied(), 2);
        assert_eq!(s.next_seq(), SeqNo(2));
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut s = OrdupSite::new(SiteId(0));
        let m = mset_seq(1, 0, vec![ObjectOp::new(X, Operation::Incr(5))]);
        s.deliver(m.clone());
        s.deliver(m.clone());
        assert_eq!(s.snapshot()[&X], Value::Int(5));
        // Duplicate of a held-back MSet too.
        let h = mset_seq(2, 2, vec![ObjectOp::new(X, Operation::Incr(1))]);
        s.deliver(h.clone());
        s.deliver(h);
        assert_eq!(s.backlog(), 1);
    }

    #[test]
    fn redelivery_storm_is_idempotent_and_counted() {
        let msets = [
            mset_seq(1, 0, vec![ObjectOp::new(X, Operation::Incr(10))]),
            mset_seq(2, 1, vec![ObjectOp::new(X, Operation::MulBy(3))]),
            mset_seq(3, 2, vec![ObjectOp::new(X, Operation::Decr(5))]),
        ];
        let mut clean = OrdupSite::new(SiteId(0));
        for m in &msets {
            clean.deliver(m.clone());
        }
        // Stormed replica: every MSet three times, interleaved both ways.
        let mut stormed = OrdupSite::new(SiteId(1));
        for m in msets.iter().chain(msets.iter().rev()).chain(msets.iter()) {
            stormed.deliver(m.clone());
        }
        assert_eq!(stormed.snapshot(), clean.snapshot());
        assert_eq!(stormed.applied(), 3, "each MSet applied exactly once");
        assert_eq!(stormed.redelivered(), 6, "six duplicates suppressed");
        assert_eq!(clean.redelivered(), 0);
    }

    #[test]
    fn query_charges_per_conflicting_heldback_mset() {
        let mut s = OrdupSite::new(SiteId(0));
        s.deliver(mset_seq(1, 1, vec![ObjectOp::new(X, Operation::Incr(1))]));
        s.deliver(mset_seq(2, 2, vec![ObjectOp::new(X, Operation::Incr(2))]));
        s.deliver(mset_seq(3, 3, vec![ObjectOp::new(ObjectId(5), Operation::Incr(3))]));
        let mut c = unbounded();
        let out = s.query(&[X], &mut c);
        assert!(out.admitted);
        assert_eq!(out.charged, 2, "two held-back MSets write x");
        assert_eq!(c.imported(), 2);
        assert_eq!(out.values, vec![Value::Int(0)], "seq 0 never arrived");
    }

    #[test]
    fn strict_query_rejected_while_behind() {
        let mut s = OrdupSite::new(SiteId(0));
        s.deliver(mset_seq(1, 1, vec![ObjectOp::new(X, Operation::Incr(1))]));
        let mut c = InconsistencyCounter::new(EpsilonSpec::STRICT);
        let out = s.query(&[X], &mut c);
        assert!(!out.admitted);
        assert_eq!(c.imported(), 0, "rejected query charges nothing");
        // A strict query on an unrelated object is fine.
        let out = s.query(&[ObjectId(7)], &mut c);
        assert!(out.admitted);
    }

    #[test]
    fn applied_through_token_check() {
        let mut s = OrdupSite::new(SiteId(0));
        assert!(s.applied_through(SeqNo(0)));
        assert!(!s.applied_through(SeqNo(1)));
        s.deliver(mset_seq(1, 0, vec![ObjectOp::new(X, Operation::Incr(1))]));
        assert!(s.applied_through(SeqNo(1)));
    }

    #[test]
    fn two_replicas_converge_under_opposite_delivery_orders() {
        let msets = vec![
            mset_seq(1, 0, vec![ObjectOp::new(X, Operation::Incr(10))]),
            mset_seq(2, 1, vec![ObjectOp::new(X, Operation::MulBy(3))]),
            mset_seq(3, 2, vec![ObjectOp::new(X, Operation::Decr(5))]),
        ];
        let mut a = OrdupSite::new(SiteId(0));
        let mut b = OrdupSite::new(SiteId(1));
        for m in &msets {
            a.deliver(m.clone());
        }
        for m in msets.iter().rev() {
            b.deliver(m.clone());
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot()[&X], Value::Int(25), "(0+10)*3-5");
    }

    // ---- Lamport variant ----

    fn lam(et: u64, origin: u64, counter: u64, fifo: u64, ops: Vec<ObjectOp>) -> MSet {
        MSet::new(EtId(et), SiteId(origin), ops)
            .lamport(LamportTs::new(counter, SiteId(origin)), SeqNo(fifo))
    }

    #[test]
    fn lamport_applies_in_timestamp_order() {
        let origins = vec![SiteId(0), SiteId(1)];
        let mut s = OrdupLamportSite::new(SiteId(2), origins);
        // Origin 1 sends ts=2 first; origin 0's ts=1 is still missing, so
        // nothing may apply yet (ts=2 isn't stable).
        s.deliver(lam(2, 1, 2, 0, vec![ObjectOp::new(X, Operation::MulBy(2))]));
        assert_eq!(s.applied(), 0);
        // Origin 0's ts=1 arrives: horizon = min(1, 2) = 1, so ts=1
        // applies but ts=2 still waits (origin 0 might send ts=2 later).
        s.deliver(lam(1, 0, 1, 0, vec![ObjectOp::new(X, Operation::Incr(10))]));
        assert_eq!(s.applied(), 1);
        assert_eq!(s.snapshot()[&X], Value::Int(10));
        // A heartbeat from origin 0 past ts=2 stabilizes the Mul.
        s.heartbeat(SiteId(0), LamportTs::new(5, SiteId(0)));
        assert_eq!(s.applied(), 2);
        assert_eq!(s.snapshot()[&X], Value::Int(20));
    }

    #[test]
    fn lamport_fifo_reassembly_handles_reordering() {
        let mut s = OrdupLamportSite::new(SiteId(2), vec![SiteId(0)]);
        // fifo #1 arrives before fifo #0: buffered.
        s.deliver(lam(2, 0, 2, 1, vec![ObjectOp::new(X, Operation::MulBy(2))]));
        assert_eq!(s.applied(), 0);
        assert_eq!(s.backlog(), 1);
        s.deliver(lam(1, 0, 1, 0, vec![ObjectOp::new(X, Operation::Incr(10))]));
        // Both reassembled; horizon = ts 2, both stable.
        assert_eq!(s.applied(), 2);
        assert_eq!(s.snapshot()[&X], Value::Int(20));
    }

    #[test]
    fn lamport_duplicate_fifo_is_ignored() {
        let mut s = OrdupLamportSite::new(SiteId(2), vec![SiteId(0)]);
        let m = lam(1, 0, 1, 0, vec![ObjectOp::new(X, Operation::Incr(5))]);
        s.deliver(m.clone());
        s.deliver(m);
        assert_eq!(s.applied(), 1);
        assert_eq!(s.snapshot()[&X], Value::Int(5));
    }

    #[test]
    fn lamport_replicas_converge_any_order() {
        let msets = [
            lam(1, 0, 1, 0, vec![ObjectOp::new(X, Operation::Incr(10))]),
            lam(2, 1, 1, 0, vec![ObjectOp::new(X, Operation::MulBy(2))]),
            lam(3, 0, 3, 1, vec![ObjectOp::new(X, Operation::Decr(4))]),
        ];
        let origins = vec![SiteId(0), SiteId(1)];
        let run = |order: Vec<usize>| {
            let mut s = OrdupLamportSite::new(SiteId(2), origins.clone());
            for i in order {
                s.deliver(msets[i].clone());
            }
            // Final heartbeats flush the tail.
            s.heartbeat(SiteId(0), LamportTs::new(100, SiteId(0)));
            s.heartbeat(SiteId(1), LamportTs::new(100, SiteId(1)));
            s.snapshot()
        };
        let a = run(vec![0, 1, 2]);
        let b = run(vec![2, 1, 0]);
        let c = run(vec![1, 2, 0]);
        assert_eq!(a, b);
        assert_eq!(b, c);
        // ts order: Inc(10)@1.0, Mul(2)@1.1, Dec(4)@3.0 → (0+10)*2-4 = 16.
        assert_eq!(a[&X], Value::Int(16));
    }

    #[test]
    fn lamport_redelivery_storm_is_idempotent_and_counted() {
        let msets = [
            lam(1, 0, 1, 0, vec![ObjectOp::new(X, Operation::Incr(10))]),
            lam(2, 1, 1, 0, vec![ObjectOp::new(X, Operation::MulBy(2))]),
            lam(3, 0, 3, 1, vec![ObjectOp::new(X, Operation::Decr(4))]),
        ];
        let origins = vec![SiteId(0), SiteId(1)];
        let mut s = OrdupLamportSite::new(SiteId(2), origins);
        for m in msets.iter().chain(msets.iter().rev()) {
            s.deliver(m.clone());
        }
        s.heartbeat(SiteId(0), LamportTs::new(100, SiteId(0)));
        s.heartbeat(SiteId(1), LamportTs::new(100, SiteId(1)));
        assert_eq!(s.applied(), 3);
        assert_eq!(s.redelivered(), 3, "the reversed pass was all duplicates");
        assert_eq!(s.snapshot()[&X], Value::Int(16), "(0+10)*2-4");
    }

    #[test]
    fn lamport_query_charges_holdback() {
        let mut s = OrdupLamportSite::new(SiteId(2), vec![SiteId(0), SiteId(1)]);
        s.deliver(lam(1, 0, 5, 0, vec![ObjectOp::new(X, Operation::Incr(1))]));
        // Not stable (origin 1 silent): held back.
        let mut c = unbounded();
        let out = s.query(&[X], &mut c);
        assert_eq!(out.charged, 1);
        assert_eq!(out.values, vec![Value::Int(0)]);
    }
}
