//! The per-site replica control interface.
//!
//! Each replica control method implements [`ReplicaSite`]: the state one
//! site keeps for its replicas, how it handles a delivered MSet
//! ("MSet processing"), how it serves query ETs, and when it considers
//! itself caught up. The cluster driver owns delivery timing
//! ("MSet delivery") and the shared divergence-control services.

use std::collections::BTreeMap;

use esr_core::divergence::InconsistencyCounter;
use esr_core::ids::{ObjectId, SiteId};
use esr_core::value::Value;

use crate::mset::MSet;

/// The result of serving a query ET at one site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// Values read, in read-set order. Empty when the query was not
    /// admitted.
    pub values: Vec<Value>,
    /// Inconsistency units charged to the query's counter.
    pub charged: u64,
    /// `false` when the query's epsilon budget could not absorb the
    /// charge: nothing was read or charged, and the caller must fall
    /// back to a synchronous path (wait and retry).
    pub admitted: bool,
}

impl QueryOutcome {
    /// A rejected query: budget exhausted, nothing read.
    pub fn rejected() -> Self {
        Self {
            values: Vec::new(),
            charged: 0,
            admitted: false,
        }
    }
}

/// One site's replica control state machine.
pub trait ReplicaSite {
    /// The method's name, used in reports ("ORDUP", "COMMU", …).
    fn method_name(&self) -> &'static str;

    /// This site's identity.
    fn site_id(&self) -> SiteId;

    /// Handles one delivered update MSet. The site may apply it
    /// immediately, hold it back for ordering, or apply it optimistically
    /// pending commit. Duplicate deliveries must be idempotent.
    fn deliver(&mut self, mset: MSet);

    /// Handles a batch of update MSets delivered together (e.g. drained
    /// from a site's inbound queue in one step). Must be observably
    /// equivalent to calling [`ReplicaSite::deliver`] on each MSet in
    /// order — the default does exactly that. Methods override this to
    /// exploit batch structure: draining the hold-back once, coalescing
    /// commuting operations per object, or reducing each object's writes
    /// to the newest version before touching the store.
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        for mset in msets {
            self.deliver(mset);
        }
    }

    /// Serves a query ET over `read_set`, charging imported inconsistency
    /// to `counter`. A site that cannot serve the query within the
    /// remaining budget returns [`QueryOutcome::rejected`] without
    /// charging.
    fn query(&mut self, read_set: &[ObjectId], counter: &mut InconsistencyCounter)
        -> QueryOutcome;

    /// Has the MSet of `et` been fully applied to this replica's store?
    /// (Held-back and suppressed MSets answer `false`.)
    fn has_applied(&self, et: esr_core::ids::EtId) -> bool;

    /// The values this replica would expose if queried for everything —
    /// used for convergence checks between replicas at quiescence.
    fn snapshot(&self) -> BTreeMap<ObjectId, Value>;

    /// Number of delivered-but-unapplied MSets held at this site (ORDUP
    /// hold-back, COMPE at-risk entries do **not** count — they are
    /// applied).
    fn backlog(&self) -> usize;
}
