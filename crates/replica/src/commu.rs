//! COMMU — commutative operations (§3.2).
//!
//! When update MSets commute, the final result is the same under any
//! application order, so MSets are applied immediately on arrival — no
//! hold-back, no sequencer. Delivery order genuinely does not matter
//! ("sorting time: doesn't matter", Table 1).
//!
//! Divergence bounding uses per-object **lock-counters**: an update ET
//! raises the counter of every object it writes for the duration of its
//! (distributed) execution — from the first replica applying its MSet to
//! the completion notice saying every replica has applied it. A query is
//! charged the sum of the counters over its read set: "each lock-counter
//! different from zero means a certain degree of inconsistency added to
//! the query ET."
//!
//! The completion notice is an ordinary asynchronous message broadcast by
//! the origin once all replicas have acknowledged; the cluster driver
//! models it with [`CommuSite::complete`].

use std::collections::BTreeMap;

use esr_core::divergence::{InconsistencyCounter, LockCounters};
use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::op::Operation;
use esr_core::value::Value;
use esr_obs::SiteInstruments;
use esr_storage::shard::FastIdMap;
use esr_storage::store::ObjectStore;

use crate::mset::MSet;
use crate::site::{QueryOutcome, ReplicaSite};

/// A COMMU replica site.
#[derive(Debug)]
pub struct CommuSite {
    site: SiteId,
    store: ObjectStore,
    counters: LockCounters,
    /// ETs applied at this site (for duplicate suppression).
    applied_ets: FastIdMap<EtId, ()>,
    applied: u64,
    redelivered: u64,
    /// Opt-in oracle audit: ETs in application order.
    audit: Option<Vec<EtId>>,
    /// Metrics bundle (no-op until attached).
    obs: SiteInstruments,
}

impl CommuSite {
    /// A fresh site.
    pub fn new(site: SiteId) -> Self {
        Self {
            site,
            store: ObjectStore::new(),
            counters: LockCounters::new(),
            applied_ets: FastIdMap::default(),
            applied: 0,
            redelivered: 0,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Attaches a metrics bundle: subsequent deliveries and queries
    /// tick its series (a detached bundle costs one branch).
    pub fn attach_metrics(&mut self, obs: SiteInstruments) {
        self.obs = obs;
    }

    /// Total MSets applied.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Duplicate deliveries this site suppressed (each one is proof the
    /// idempotency guard fired under at-least-once delivery).
    pub fn redelivered(&self) -> u64 {
        self.redelivered
    }

    /// Turns on the audit log consumed by the `esr-check` COMMU
    /// commutativity oracle: ETs recorded in application order.
    pub fn enable_audit(&mut self) {
        self.audit.get_or_insert_with(Vec::new);
    }

    /// The audit log (empty unless [`CommuSite::enable_audit`] was
    /// called before deliveries began).
    pub fn audit_log(&self) -> &[EtId] {
        self.audit.as_deref().unwrap_or(&[])
    }

    /// Captures the site's full protocol state as a checkpoint image:
    /// store contents, the in-flight updates still holding
    /// lock-counters, and the duplicate-suppression set. Audit logs and
    /// metrics bundles are excluded (re-armed after restore).
    pub fn to_ckpt(&self) -> crate::ckpt::CommuCkpt {
        let mut applied_ets: Vec<EtId> = self.applied_ets.keys().copied().collect();
        applied_ets.sort_unstable();
        crate::ckpt::CommuCkpt {
            values: self.store.snapshot().into_iter().collect(),
            held: self.counters.held_sets(),
            applied_ets,
            applied: self.applied,
            redelivered: self.redelivered,
        }
    }

    /// Rebuilds a site from a checkpoint image, mid-protocol: held
    /// write sets re-raise exactly the lock-counters that were up at
    /// the cut, so queries keep being charged for in-flight updates and
    /// late completion notices land correctly.
    pub fn from_ckpt(site: SiteId, c: crate::ckpt::CommuCkpt) -> Self {
        let mut counters = LockCounters::new();
        counters.begin_updates(c.held);
        Self {
            site,
            store: ObjectStore::with_values(c.values),
            counters,
            applied_ets: c.applied_ets.into_iter().map(|et| (et, ())).collect(),
            applied: c.applied,
            redelivered: c.redelivered,
            audit: None,
            obs: SiteInstruments::default(),
        }
    }

    /// Handles the completion notice for `et`: every replica has applied
    /// its MSet, so the update is no longer in flight and its
    /// lock-counters drop.
    pub fn complete(&mut self, et: EtId) {
        self.counters.end_update(et);
    }

    /// The lock-counter value of one object (visible inconsistency).
    pub fn lock_counter(&self, object: ObjectId) -> u64 {
        self.counters.inconsistency_of(object)
    }

    /// True when applying an update over `write_set` would push any
    /// object's lock-counter beyond `limit` — the paper's optional update
    /// throttle ("the update ET trying to write must either wait or
    /// abort").
    pub fn would_exceed(&self, write_set: &[ObjectId], limit: u64) -> bool {
        write_set
            .iter()
            .any(|&o| self.counters.inconsistency_of(o) + 1 > limit)
    }

    /// True when no update is in flight at this site.
    pub fn quiescent(&self) -> bool {
        self.counters.quiescent()
    }
}

impl ReplicaSite for CommuSite {
    fn method_name(&self) -> &'static str {
        "COMMU"
    }

    fn site_id(&self) -> SiteId {
        self.site
    }

    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn deliver(&mut self, mset: MSet) {
        if self.applied_ets.contains_key(&mset.et) {
            self.redelivered += 1;
            self.obs.delivered(1, 0, 1);
            return; // duplicate delivery
        }
        for op in &mset.ops {
            self.store
                .apply(op)
                .expect("commutative MSet must apply cleanly");
        }
        let high_water = self.counters.begin_update(mset.et, mset.write_set());
        self.obs.lock_counter_high_water(high_water);
        if let Some(log) = &mut self.audit {
            log.push(mset.et);
        }
        self.applied_ets.insert(mset.et, ());
        self.applied += 1;
        self.obs.delivered(1, 1, 0);
    }

    /// Batch fast path: commuting operations are folded per object
    /// before the store is touched. A per-object accumulator streams the
    /// batch in delivery order — N `Incr`s on one object become one net
    /// `Incr` held in the accumulator (the greedy adjacent fold of
    /// `coalesce_ops`, applied per object's subsequence); a non-foldable
    /// successor flushes the pending op to the store first, preserving
    /// per-object order. The drain then touches each object's slot once
    /// per batch instead of once per operation. Lock-counter bookkeeping
    /// is registered in bulk through [`LockCounters::begin_updates`].
    ///
    /// Equivalence: COMMU admits reordering *across* MSets by
    /// definition, and the store's per-op effects are confined to
    /// `op.object`, so regrouping by object is exact; per-object order
    /// is kept for the non-commuting pairs an MSet may legally carry
    /// internally. Lock-counter bookkeeping stays per MSet.
    #[expect(clippy::expect_used, reason = "a rejected apply is replica-state corruption; panicking is the documented contract")]
    fn deliver_batch(&mut self, msets: Vec<MSet>) {
        use std::collections::hash_map::Entry;
        let (before_applied, before_redelivered) = (self.applied, self.redelivered);
        let batch_len = msets.len() as u64;
        let mut acc: FastIdMap<ObjectId, Operation> = FastIdMap::default();
        let mut regs: Vec<(EtId, Vec<ObjectId>)> = Vec::new();
        for mset in &msets {
            if self.applied_ets.contains_key(&mset.et) {
                self.redelivered += 1;
                continue; // duplicate (earlier delivery or earlier in batch)
            }
            regs.push((mset.et, mset.write_set_vec()));
            for op in &mset.ops {
                if matches!(op.op, Operation::Read) {
                    continue;
                }
                match acc.entry(op.object) {
                    Entry::Vacant(slot) => {
                        slot.insert(op.op.clone());
                    }
                    Entry::Occupied(mut slot) => match slot.get().fold_with(&op.op) {
                        Some(folded) => {
                            slot.insert(folded);
                        }
                        None => {
                            let prev = slot.insert(op.op.clone());
                            self.store
                                .apply_op_run(op.object, std::iter::once(&prev))
                                .expect("commutative MSet must apply cleanly");
                        }
                    },
                }
            }
            if let Some(log) = &mut self.audit {
                log.push(mset.et);
            }
            self.applied_ets.insert(mset.et, ());
            self.applied += 1;
        }
        let high_water = self.counters.begin_updates(regs);
        self.obs.lock_counter_high_water(high_water);
        for (object, op) in acc {
            self.store
                .apply_op_run(object, std::iter::once(&op))
                .expect("commutative MSet must apply cleanly");
        }
        self.obs.batch(batch_len);
        self.obs.delivered(
            batch_len,
            self.applied - before_applied,
            self.redelivered - before_redelivered,
        );
    }

    fn has_applied(&self, et: EtId) -> bool {
        self.applied_ets.contains_key(&et)
    }

    fn query(
        &mut self,
        read_set: &[ObjectId],
        counter: &mut InconsistencyCounter,
    ) -> QueryOutcome {
        let charge = self.counters.inconsistency_of_set(read_set.iter().copied());
        if !counter.charge(charge).is_admitted() {
            self.obs.query(charge, counter.spec().limit, false);
            return QueryOutcome::rejected();
        }
        self.obs.query(charge, counter.spec().limit, true);
        QueryOutcome {
            values: read_set.iter().map(|&o| self.store.get(o)).collect(),
            charged: charge,
            admitted: true,
        }
    }

    fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.store.snapshot()
    }

    fn backlog(&self) -> usize {
        0 // COMMU never holds anything back
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::divergence::EpsilonSpec;
    use esr_core::op::{ObjectOp, Operation};

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn inc(et: u64, obj: ObjectId, n: i64) -> MSet {
        MSet::new(EtId(et), SiteId(9), vec![ObjectOp::new(obj, Operation::Incr(n))])
    }

    fn unbounded() -> InconsistencyCounter {
        InconsistencyCounter::new(EpsilonSpec::UNBOUNDED)
    }

    #[test]
    fn applies_immediately_in_any_order() {
        let msets = [inc(1, X, 5), inc(2, X, 7), inc(3, Y, 1)];
        let mut a = CommuSite::new(SiteId(0));
        let mut b = CommuSite::new(SiteId(1));
        for m in &msets {
            a.deliver(m.clone());
        }
        for m in msets.iter().rev() {
            b.deliver(m.clone());
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot()[&X], Value::Int(12));
        assert_eq!(a.backlog(), 0);
        assert_eq!(b.applied(), 3);
    }

    #[test]
    fn duplicates_suppressed() {
        let mut s = CommuSite::new(SiteId(0));
        let m = inc(1, X, 5);
        s.deliver(m.clone());
        s.deliver(m);
        assert_eq!(s.snapshot()[&X], Value::Int(5));
        assert_eq!(s.applied(), 1);
        assert_eq!(s.lock_counter(X), 1, "counter raised once");
    }

    #[test]
    fn redelivery_storm_is_idempotent_and_counted() {
        let msets = [inc(1, X, 5), inc(2, X, 7), inc(3, Y, 1)];
        let mut s = CommuSite::new(SiteId(0));
        for m in msets.iter().chain(msets.iter().rev()).chain(msets.iter()) {
            s.deliver(m.clone());
        }
        assert_eq!(s.snapshot()[&X], Value::Int(12), "each Incr applied once");
        assert_eq!(s.applied(), 3);
        assert_eq!(s.redelivered(), 6);
        assert_eq!(s.lock_counter(X), 2, "counters raised once per ET");
        // Batch path counts duplicates too.
        let mut b = CommuSite::new(SiteId(1));
        b.deliver_batch(msets.iter().chain(msets.iter()).cloned().collect());
        assert_eq!(b.snapshot(), s.snapshot());
        assert_eq!(b.redelivered(), 3);
    }

    #[test]
    fn lock_counters_track_in_flight_updates() {
        let mut s = CommuSite::new(SiteId(0));
        s.deliver(inc(1, X, 5));
        s.deliver(inc(2, X, 3));
        assert_eq!(s.lock_counter(X), 2);
        assert!(!s.quiescent());
        s.complete(EtId(1));
        assert_eq!(s.lock_counter(X), 1);
        s.complete(EtId(2));
        assert!(s.quiescent());
        assert_eq!(s.lock_counter(X), 0);
    }

    #[test]
    fn query_charges_lock_counters() {
        let mut s = CommuSite::new(SiteId(0));
        s.deliver(inc(1, X, 5));
        s.deliver(inc(2, Y, 1));
        let mut c = unbounded();
        let out = s.query(&[X, Y], &mut c);
        assert!(out.admitted);
        assert_eq!(out.charged, 2);
        assert_eq!(out.values, vec![Value::Int(5), Value::Int(1)]);
        // After completion, the same query is free.
        s.complete(EtId(1));
        s.complete(EtId(2));
        let mut c2 = InconsistencyCounter::new(EpsilonSpec::STRICT);
        assert!(s.query(&[X, Y], &mut c2).admitted);
    }

    #[test]
    fn strict_query_rejected_while_updates_in_flight() {
        let mut s = CommuSite::new(SiteId(0));
        s.deliver(inc(1, X, 5));
        let mut c = InconsistencyCounter::new(EpsilonSpec::STRICT);
        assert!(!s.query(&[X], &mut c).admitted);
        // Unrelated object unaffected.
        assert!(s.query(&[Y], &mut c).admitted);
    }

    #[test]
    fn bounded_budget_spends_down() {
        let mut s = CommuSite::new(SiteId(0));
        s.deliver(inc(1, X, 1));
        s.deliver(inc(2, X, 1));
        let mut c = InconsistencyCounter::new(EpsilonSpec::bounded(3));
        assert!(s.query(&[X], &mut c).admitted, "charge 2 fits in 3");
        assert_eq!(c.remaining(), 1);
        assert!(!s.query(&[X], &mut c).admitted, "second charge of 2 doesn't");
    }

    #[test]
    fn update_throttle_check() {
        let mut s = CommuSite::new(SiteId(0));
        s.deliver(inc(1, X, 1));
        s.deliver(inc(2, X, 1));
        assert!(s.would_exceed(&[X], 2));
        assert!(!s.would_exceed(&[X], 3));
        assert!(!s.would_exceed(&[Y], 1));
    }
}
