//! Structure-aware mutation fuzzing for the wire codec.
//!
//! `wire_totality.rs` proves decode totality on byte soup and
//! single-byte corruption; this harness goes after the *accepted*
//! space. A deterministic fuzzer seeds a corpus from valid frame
//! encodings, then mutates with codec-shaped operators — byte/bit
//! flips, truncations, tail extensions, zero/0xFF runs over
//! length-prefix positions, and cross-frame splices — and asserts two
//! properties on every mutant:
//!
//! 1. **totality**: `decode_frame` returns a value or an error, never
//!    a panic (the harness itself is the crash detector);
//! 2. **re-encode closure**: any *accepted* mutant (even a
//!    non-canonical encoding) decodes to a frame whose re-encoding
//!    decodes back to the same frame — the codec's accepted set maps
//!    into its canonical set, so a frame laundered through a hostile
//!    byte-stream can always be durably re-queued and re-read.
//!
//! Everything is seed-deterministic (xorshift64*), so a failure
//! reproduces by iteration number alone.

use bytes::Bytes;
use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::mset::MSet;
use esr_replica::site::QueryOutcome;
use esr_replica::span::{SpanRec, SpanStage};
use esr_replica::wire::{decode_frame, decode_mset, encode_frame, Frame, WireAudit};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// The corpus generator: one representative of every frame family,
/// parameterized so repeated seeds diversify field values.
fn corpus(seed: u64) -> Vec<Frame> {
    let et = EtId(seed % 97);
    let site = SiteId(seed % 5);
    let ts = VersionTs::new(seed % 41, ClientId(seed % 7));
    let mset = MSet::new(
        et,
        site,
        vec![
            ObjectOp::new(ObjectId(seed % 13), Operation::Incr(seed as i64 % 9)),
            ObjectOp::new(
                ObjectId(seed % 11),
                Operation::TimestampedWrite(ts, Value::Int(seed as i64)),
            ),
        ],
    )
    .sequenced(SeqNo(seed % 17));
    let mset = if seed.is_multiple_of(2) {
        mset.from_client(ClientId(seed % 7), seed % 19)
    } else {
        mset
    };
    let mset = if seed.is_multiple_of(3) {
        mset.traced(seed.wrapping_mul(37))
    } else {
        mset
    };
    vec![
        Frame::Hello { site, epoch: seed },
        Frame::MSet(mset.clone()),
        Frame::Ack { entry: seed },
        Frame::Applied {
            site,
            et,
            version: if seed.is_multiple_of(2) { Some(ts) } else { None },
        },
        Frame::Complete { et },
        Frame::Vtnc { ts },
        Frame::Decision {
            et,
            commit: seed.is_multiple_of(2),
        },
        Frame::ControlSnapshot {
            completed: (0..seed % 4).map(EtId).collect(),
            decisions: (0..seed % 3).map(|i| (EtId(i), i % 2 == 0)).collect(),
            vtnc_max: if seed.is_multiple_of(3) { Some(ts) } else { None },
        },
        Frame::Submit(mset),
        Frame::SubmitOk { et },
        Frame::Query {
            read_set: (0..seed % 5).map(ObjectId).collect(),
            epsilon_limit: seed,
        },
        Frame::QueryOk(QueryOutcome {
            values: vec![Value::Int(seed as i64), Value::Text("fuzz".into())],
            charged: seed % 9,
            admitted: seed.is_multiple_of(2),
        }),
        Frame::SnapshotOk {
            entries: (0..seed % 4)
                .map(|i| (ObjectId(i), Value::Int(i as i64)))
                .collect(),
        },
        Frame::StatusOk {
            settled: seed.is_multiple_of(2),
            outbound_pending: seed % 23,
            epoch: seed % 7,
            view: seed % 11,
            coordinator: seed.is_multiple_of(3),
            ckpt_seq: seed % 13,
            ckpt_covered: seed % 29,
        },
        Frame::AuditOk(WireAudit {
            ordup_order: (0..seed % 3).map(|i| (EtId(i), SeqNo(i))).collect(),
            commu_order: (0..seed % 4).map(EtId).collect(),
            ritu_installs: vec![(ObjectId(seed % 13), ts)],
            vtnc_targets: vec![ts],
            vtnc_violations: seed % 3,
            compe_events: vec![],
            redelivered: seed % 5,
            journaled: seed % 31,
        }),
        Frame::DecisionOk { et },
        Frame::Ping {
            view: seed % 9,
            from: site,
        },
        Frame::StartViewChange {
            view: seed % 9,
            from: site,
        },
        Frame::DoViewChange {
            view: seed % 9,
            from: site,
            completed: (0..seed % 4).map(EtId).collect(),
            decisions: (0..seed % 3).map(|i| (EtId(i), i % 2 == 0)).collect(),
            vtnc_max: if seed.is_multiple_of(3) { Some(ts) } else { None },
        },
        Frame::StartView {
            view: seed % 9,
            completed: (0..seed % 4).map(EtId).collect(),
            decisions: (0..seed % 3).map(|i| (EtId(i), i % 2 == 0)).collect(),
            vtnc_max: if seed.is_multiple_of(3) { Some(ts) } else { None },
        },
        Frame::ForwardDecision {
            et,
            commit: seed.is_multiple_of(2),
        },
        Frame::SnapshotRequest { offset: seed },
        Frame::SnapshotChunk {
            total_len: seed % 64 + seed % 9,
            offset: seed % 64,
            bytes: (0..seed % 9).map(|i| i as u8).collect(),
        },
        Frame::Checkpoint,
        Frame::CheckpointOk {
            seq: seed % 13,
            covered: seed % 101,
        },
        Frame::SpanQuery { et: seed % 97 },
        Frame::SpanOk {
            dropped: seed % 7,
            spans: (0..seed % 3)
                .map(|i| {
                    (
                        i,
                        seed % 1_000 + i,
                        SpanRec::new(SpanStage::Deliver, EtId(seed % 97))
                            .with_t0(if seed.is_multiple_of(2) { Some(seed) } else { None }),
                    )
                })
                .collect(),
        },
    ]
}

/// One mutation pass over `base` (never empties the buffer).
fn mutate(rng: &mut Rng, base: &[u8], other: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    match rng.below(7) {
        // Byte overwrite.
        0 => {
            let i = rng.below(out.len());
            out[i] = rng.next() as u8;
        }
        // Single bit flip.
        1 => {
            let i = rng.below(out.len());
            out[i] ^= 1 << rng.below(8);
        }
        // Truncate (keep the tag byte when possible).
        2 => {
            let keep = 1 + rng.below(out.len());
            out.truncate(keep);
        }
        // Extend with random tail bytes (trailing garbage).
        3 => {
            for _ in 0..=rng.below(9) {
                out.push(rng.next() as u8);
            }
        }
        // Run of 0x00 or 0xFF — hits length prefixes with tiny/huge
        // values, probing allocation and bounds handling.
        4 => {
            let i = rng.below(out.len());
            let fill = if rng.below(2) == 0 { 0x00 } else { 0xFF };
            let n = (1 + rng.below(8)).min(out.len() - i);
            out[i..i + n].fill(fill);
        }
        // Splice: head of this frame + tail of another family, so
        // variant-specific parsers see other variants' field layouts.
        5 => {
            let cut = rng.below(out.len());
            let from = rng.below(other.len());
            out.truncate(cut);
            out.extend_from_slice(&other[from..]);
            if out.is_empty() {
                out.push(rng.next() as u8);
            }
        }
        // Tag rewrite: valid body under every possible tag byte.
        _ => {
            out[0] = rng.next() as u8;
        }
    }
    out
}

fn check_mutant(raw: &[u8]) {
    let bytes = Bytes::copy_from_slice(raw);
    // Property 1: totality (a panic fails the test harness itself).
    if let Ok(frame) = decode_frame(&bytes) {
        // Property 2: accepted mutants re-encode into the canonical
        // set and survive the round trip.
        let reenc = encode_frame(&frame);
        match decode_frame(&reenc) {
            Ok(again) => assert_eq!(
                again, frame,
                "re-encode round trip diverged for accepted mutant {raw:02x?}"
            ),
            Err(e) => panic!(
                "accepted mutant {raw:02x?} re-encoded into a rejected payload: {e:?}"
            ),
        }
    }
    // The bare MSet decoder sees durable-queue payloads (same hostile
    // surface); totality must hold there too.
    let _ = decode_mset(&bytes);
}

#[test]
fn structure_aware_mutation_fuzz() {
    let mut rng = Rng::new(0x5EED_CAFE_F00D_0001);
    let corpus: Vec<Vec<u8>> = (0..8u64)
        .flat_map(|s| corpus(s.wrapping_mul(0x9E37_79B9) + s))
        .map(|f| encode_frame(&f).to_vec())
        .collect();

    let iterations = 60_000;
    let mut accepted = 0u64;
    for _ in 0..iterations {
        let base = &corpus[rng.below(corpus.len())];
        let other = &corpus[rng.below(corpus.len())];
        // Stack 1–3 mutations so mutants drift beyond one edit.
        let mut mutant = mutate(&mut rng, base, other);
        for _ in 0..rng.below(3) {
            let other = &corpus[rng.below(corpus.len())];
            mutant = mutate(&mut rng, &mutant, other);
        }
        if decode_frame(&Bytes::copy_from_slice(&mutant)).is_ok() {
            accepted += 1;
        }
        check_mutant(&mutant);
    }
    // The fuzzer must actually exercise the accepted space — tag
    // rewrites and bit flips on valid encodings land inside it often.
    assert!(
        accepted > 100,
        "only {accepted} mutants accepted: mutation operators too destructive"
    );
}

#[test]
fn corpus_round_trips() {
    for seed in 0..32u64 {
        for frame in corpus(seed) {
            let enc = encode_frame(&frame);
            assert_eq!(decode_frame(&enc), Ok(frame));
        }
    }
}
