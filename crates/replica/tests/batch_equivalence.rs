//! Batch/single delivery equivalence properties.
//!
//! For every replica control method, `deliver_batch` is an optimization,
//! not a semantic change: partitioning an MSet stream into *any* sequence
//! of batches must leave a site in exactly the state one-at-a-time
//! delivery produces. The properties below drive a batched site and a
//! sequential site through the same randomized stream (shuffles,
//! duplicates, gaps) under a random partition, and after **every** chunk
//! compare the full observable state: the store snapshot, the hold-back
//! backlog, and `has_applied` for every ET. The `has_applied` check is
//! what makes the cluster-level divergence metrics line up — both
//! `divergent_updates` and `missing_updates` are functions of the
//! submission table and per-site `has_applied` alone, so agreement here
//! is agreement there for any read set.

use esr_core::ids::{ClientId, EtId, LamportTs, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::commu::CommuSite;
use esr_replica::compe::CompeSite;
use esr_replica::mset::MSet;
use esr_replica::ordup::{OrdupLamportSite, OrdupSite};
use esr_replica::ritu::{RituMvSite, RituOverwriteSite};
use esr_replica::site::ReplicaSite;
use proptest::prelude::*;

/// Deterministic generator for stream shaping (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// In-place Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.below(i as u64 + 1) as usize);
        }
    }

    /// Appends duplicates of ~25% of the stream's elements at random
    /// positions — redelivery is normal under at-least-once transport
    /// and both paths must suppress it identically.
    fn sprinkle_duplicates(&mut self, stream: &mut Vec<MSet>) {
        for _ in 0..stream.len() / 4 {
            let src = self.below(stream.len() as u64) as usize;
            let dup = stream[src].clone();
            let at = self.below(stream.len() as u64 + 1) as usize;
            stream.insert(at, dup);
        }
    }

    /// Cuts `n` items into random contiguous chunks (some possibly
    /// empty is fine — an empty batch must be a no-op).
    fn cuts(&mut self, n: usize) -> Vec<usize> {
        let mut cuts = vec![0, n];
        for _ in 0..self.below(6) {
            cuts.push(self.below(n as u64 + 1) as usize);
        }
        cuts.sort_unstable();
        cuts
    }

    /// A mixed op on an integer-valued object: additive and
    /// multiplicative families plus blind overwrites, so streams carry
    /// both foldable runs and fold boundaries for the coalescers.
    fn int_op(&mut self) -> Operation {
        match self.below(5) {
            0 => Operation::Incr(self.below(9) as i64 - 4),
            1 => Operation::Decr(self.below(5) as i64),
            2 => Operation::MulBy(1 + self.below(3) as i64),
            3 => Operation::Write(Value::Int(self.below(100) as i64)),
            _ => Operation::Read,
        }
    }

    fn int_mset(&mut self, et: u64, objects: u64) -> MSet {
        let ops = (0..1 + self.below(4))
            .map(|_| ObjectOp::new(ObjectId(self.below(objects)), self.int_op()))
            .collect();
        MSet::new(EtId(et), SiteId(9), ops)
    }

    fn tw_mset(&mut self, et: u64, objects: u64) -> MSet {
        let ops = (0..1 + self.below(4))
            .map(|_| {
                ObjectOp::new(
                    ObjectId(self.below(objects)),
                    Operation::TimestampedWrite(
                        VersionTs::new(self.below(40), ClientId(self.below(3))),
                        Value::Int(et as i64),
                    ),
                )
            })
            .collect();
        MSet::new(EtId(et), SiteId(9), ops)
    }
}

/// Drives `single` one MSet at a time and `batched` through
/// `deliver_batch` chunks of the same stream, asserting observable
/// equality at every chunk boundary.
fn assert_equivalent<S: ReplicaSite>(
    mut single: S,
    mut batched: S,
    stream: &[MSet],
    cuts: &[usize],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let all_ets: Vec<EtId> = stream.iter().map(|m| m.et).collect();
    for w in cuts.windows(2) {
        let chunk = &stream[w[0]..w[1]];
        for m in chunk {
            single.deliver(m.clone());
        }
        batched.deliver_batch(chunk.to_vec());
        prop_assert_eq!(single.snapshot(), batched.snapshot());
        prop_assert_eq!(single.backlog(), batched.backlog());
        for &et in &all_ets {
            prop_assert_eq!(
                single.has_applied(et),
                batched.has_applied(et),
                "has_applied({:?}) diverged after chunk {}..{}",
                et,
                w[0],
                w[1]
            );
        }
    }
    Ok(())
}

const OBJECTS: u64 = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ordup_batch_equivalence(seed in 0u64..u64::MAX, n in 1usize..40) {
        let mut g = Gen(seed);
        let mut stream: Vec<MSet> = (0..n as u64)
            .map(|i| g.int_mset(i, OBJECTS).sequenced(SeqNo(i)))
            .collect();
        g.shuffle(&mut stream);
        g.sprinkle_duplicates(&mut stream);
        let cuts = g.cuts(stream.len());
        assert_equivalent(
            OrdupSite::new(SiteId(0)),
            OrdupSite::new(SiteId(1)),
            &stream,
            &cuts,
        )?;
    }

    #[test]
    fn ordup_lamport_batch_equivalence(seed in 0u64..u64::MAX, n in 1usize..20) {
        let mut g = Gen(seed);
        let origins = [SiteId(0), SiteId(1)];
        // Each origin emits a FIFO run with strictly increasing Lamport
        // timestamps; interleaving across origins is then shuffled.
        let mut stream: Vec<MSet> = Vec::new();
        for (o, &origin) in origins.iter().enumerate() {
            for f in 0..n as u64 {
                let et = (o as u64) * 10_000 + f;
                let ts = LamportTs::new(1 + f * 2 + g.below(2), origin);
                let mut m = g.int_mset(et, OBJECTS);
                m.origin = origin;
                stream.push(m.lamport(ts, SeqNo(f)));
            }
        }
        g.shuffle(&mut stream);
        g.sprinkle_duplicates(&mut stream);
        let cuts = g.cuts(stream.len());
        assert_equivalent(
            OrdupLamportSite::new(SiteId(7), origins.to_vec()),
            OrdupLamportSite::new(SiteId(8), origins.to_vec()),
            &stream,
            &cuts,
        )?;
    }

    #[test]
    fn commu_batch_equivalence(seed in 0u64..u64::MAX, n in 1usize..40) {
        let mut g = Gen(seed);
        let mut stream: Vec<MSet> = (0..n as u64).map(|i| g.int_mset(i, OBJECTS)).collect();
        g.shuffle(&mut stream);
        g.sprinkle_duplicates(&mut stream);
        let cuts = g.cuts(stream.len());
        assert_equivalent(
            CommuSite::new(SiteId(0)),
            CommuSite::new(SiteId(1)),
            &stream,
            &cuts,
        )?;
    }

    #[test]
    fn ritu_lww_batch_equivalence(seed in 0u64..u64::MAX, n in 1usize..40) {
        let mut g = Gen(seed);
        let mut stream: Vec<MSet> = (0..n as u64).map(|i| g.tw_mset(i, OBJECTS)).collect();
        g.shuffle(&mut stream);
        g.sprinkle_duplicates(&mut stream);
        let cuts = g.cuts(stream.len());
        assert_equivalent(
            RituOverwriteSite::new(SiteId(0)),
            RituOverwriteSite::new(SiteId(1)),
            &stream,
            &cuts,
        )?;
    }

    #[test]
    fn ritu_mv_batch_equivalence(seed in 0u64..u64::MAX, n in 1usize..40) {
        let mut g = Gen(seed);
        let mut stream: Vec<MSet> = (0..n as u64).map(|i| g.tw_mset(i, OBJECTS)).collect();
        g.shuffle(&mut stream);
        g.sprinkle_duplicates(&mut stream);
        let cuts = g.cuts(stream.len());
        assert_equivalent(
            RituMvSite::new(SiteId(0)),
            RituMvSite::new(SiteId(1)),
            &stream,
            &cuts,
        )?;
    }

    #[test]
    fn compe_batch_equivalence(seed in 0u64..u64::MAX, n in 1usize..30) {
        let mut g = Gen(seed);
        let mut stream: Vec<MSet> = (0..n as u64).map(|i| g.int_mset(i, OBJECTS)).collect();
        g.shuffle(&mut stream);
        g.sprinkle_duplicates(&mut stream);
        let cuts = g.cuts(stream.len());
        let mut single = CompeSite::new(SiteId(0));
        let mut batched = CompeSite::new(SiteId(1));
        // Some commit notices race ahead of their MSets: both paths
        // must apply those directly as committed state.
        for i in 0..n as u64 {
            if g.below(5) == 0 {
                single.commit(EtId(i));
                batched.commit(EtId(i));
            }
        }
        for w in cuts.windows(2) {
            let chunk = &stream[w[0]..w[1]];
            for m in chunk {
                single.deliver(m.clone());
            }
            batched.deliver_batch(chunk.to_vec());
            prop_assert_eq!(single.snapshot(), batched.snapshot());
            prop_assert_eq!(single.at_risk(), batched.at_risk());
        }
        // Resolve every ET the same way on both sites: the surviving
        // state and the compensation count must agree.
        for i in 0..n as u64 {
            if g.below(3) == 0 {
                let a = single.abort(EtId(i));
                let b = batched.abort(EtId(i));
                prop_assert_eq!(a.is_some(), b.is_some());
            } else {
                single.commit(EtId(i));
                batched.commit(EtId(i));
            }
        }
        prop_assert_eq!(single.snapshot(), batched.snapshot());
        prop_assert_eq!(single.at_risk(), 0);
        prop_assert_eq!(batched.at_risk(), 0);
        prop_assert_eq!(single.compensations(), batched.compensations());
        for i in 0..n as u64 {
            prop_assert_eq!(single.has_applied(EtId(i)), batched.has_applied(EtId(i)));
        }
    }
}
