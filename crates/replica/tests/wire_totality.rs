//! Decode-totality properties for the wire codec.
//!
//! The esr-rpc transport hands `decode_frame`/`decode_mset` whatever a
//! socket (or a torn durable-queue tail) produced, so the codec must be
//! total: *any* byte slice yields a value or a [`WireError`], never a
//! panic or an unbounded allocation. The properties below throw
//! arbitrary byte soup, mutated valid encodings, and truncated prefixes
//! at both decoders, and check that every valid encoding round-trips.

use bytes::Bytes;
use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::mset::MSet;
use esr_replica::site::QueryOutcome;
use esr_replica::span::{SpanRec, SpanStage};
use esr_replica::wire::{
    decode_frame, decode_mset, encode_frame, encode_mset, Frame, WireAudit,
};
use proptest::prelude::*;

/// A small strategy-free frame generator: maps an index + a handful of
/// integers onto every variant family, so shrinking stays readable.
fn frame_from(seed: u64, variant: u8) -> Frame {
    let et = EtId(seed % 97);
    let site = SiteId(seed % 5);
    let ts = VersionTs::new(seed % 41, ClientId(seed % 7));
    let mset = MSet::new(
        et,
        site,
        vec![
            ObjectOp::new(ObjectId(seed % 13), Operation::Incr(seed as i64 % 9)),
            ObjectOp::new(
                ObjectId(seed % 11),
                Operation::TimestampedWrite(ts, Value::Int(seed as i64)),
            ),
        ],
    )
    .sequenced(SeqNo(seed % 17));
    let mset = if seed.is_multiple_of(2) {
        mset.from_client(ClientId(seed % 7), seed % 19)
    } else {
        mset
    };
    let mset = if seed.is_multiple_of(3) {
        mset.traced(seed.wrapping_mul(31))
    } else {
        mset
    };
    match variant % 26 {
        0 => Frame::Hello {
            site,
            epoch: seed,
        },
        1 => Frame::MSet(mset),
        2 => Frame::Ack { entry: seed },
        3 => Frame::Applied {
            site,
            et,
            version: if seed.is_multiple_of(2) { Some(ts) } else { None },
        },
        4 => Frame::Complete { et },
        5 => Frame::Vtnc { ts },
        6 => Frame::Decision {
            et,
            commit: seed.is_multiple_of(2),
        },
        7 => Frame::ControlSnapshot {
            completed: (0..seed % 4).map(EtId).collect(),
            decisions: (0..seed % 3).map(|i| (EtId(i), i % 2 == 0)).collect(),
            vtnc_max: if seed.is_multiple_of(3) { Some(ts) } else { None },
        },
        8 => Frame::Submit(mset),
        9 => Frame::SubmitOk { et },
        10 => Frame::Query {
            read_set: (0..seed % 5).map(ObjectId).collect(),
            epsilon_limit: seed,
        },
        11 => Frame::QueryOk(QueryOutcome {
            values: vec![Value::Int(seed as i64), Value::Text("q".into())],
            charged: seed % 9,
            admitted: seed.is_multiple_of(2),
        }),
        12 => Frame::SnapshotOk {
            entries: (0..seed % 4)
                .map(|i| (ObjectId(i), Value::Int(i as i64)))
                .collect(),
        },
        13 => Frame::StatusOk {
            settled: seed.is_multiple_of(2),
            outbound_pending: seed % 23,
            epoch: seed % 7,
            view: seed % 11,
            coordinator: seed.is_multiple_of(3),
            ckpt_seq: seed % 13,
            ckpt_covered: seed % 29,
        },
        14 => Frame::AuditOk(WireAudit {
            ordup_order: (0..seed % 3).map(|i| (EtId(i), SeqNo(i))).collect(),
            commu_order: (0..seed % 4).map(EtId).collect(),
            ritu_installs: vec![(ObjectId(seed % 13), ts)],
            vtnc_targets: vec![ts],
            vtnc_violations: seed % 3,
            compe_events: vec![],
            redelivered: seed % 5,
            journaled: seed % 31,
        }),
        15 => Frame::DecisionOk { et },
        16 => Frame::Ping {
            view: seed % 9,
            from: site,
        },
        17 => Frame::StartViewChange {
            view: seed % 9,
            from: site,
        },
        18 => Frame::DoViewChange {
            view: seed % 9,
            from: site,
            completed: (0..seed % 4).map(EtId).collect(),
            decisions: (0..seed % 3).map(|i| (EtId(i), i % 2 == 0)).collect(),
            vtnc_max: if seed.is_multiple_of(3) { Some(ts) } else { None },
        },
        19 => Frame::StartView {
            view: seed % 9,
            completed: (0..seed % 4).map(EtId).collect(),
            decisions: (0..seed % 3).map(|i| (EtId(i), i % 2 == 0)).collect(),
            vtnc_max: if seed.is_multiple_of(3) { Some(ts) } else { None },
        },
        20 => Frame::SnapshotRequest { offset: seed },
        21 => Frame::SnapshotChunk {
            total_len: seed % 64 + seed % 7,
            offset: seed % 64,
            bytes: (0..seed % 7).map(|i| i as u8).collect(),
        },
        22 => Frame::Checkpoint,
        23 => Frame::CheckpointOk {
            seq: seed % 13,
            covered: seed % 101,
        },
        24 => Frame::SpanQuery { et: seed % 97 },
        _ => Frame::SpanOk {
            dropped: seed % 5,
            spans: (0..seed % 4)
                .map(|i| {
                    (
                        i,
                        seed % 1_000 + i,
                        SpanRec::new(SpanStage::Apply, EtId(seed % 97))
                            .with_version(if seed.is_multiple_of(2) { Some(ts) } else { None })
                            .with_gseq(Some(SeqNo(i)))
                            .with_t0(if seed.is_multiple_of(3) { Some(seed) } else { None }),
                    )
                })
                .collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the frame decoder.
    #[test]
    fn decode_frame_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_frame(&Bytes::from(bytes));
    }

    /// Arbitrary bytes never panic the MSet decoder.
    #[test]
    fn decode_mset_is_total(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_mset(&Bytes::from(bytes));
    }

    /// Every frame family round-trips through encode/decode.
    #[test]
    fn frames_round_trip(seed in any::<u64>(), variant in any::<u8>()) {
        let frame = frame_from(seed, variant);
        let bytes = encode_frame(&frame);
        prop_assert_eq!(decode_frame(&bytes), Ok(frame));
    }

    /// Single-byte corruption of a valid encoding is total: it decodes
    /// to *some* frame or errors, and never panics.
    #[test]
    fn mutated_frames_never_panic(
        seed in any::<u64>(),
        variant in any::<u8>(),
        at in any::<u64>(),
        byte in any::<u8>(),
    ) {
        let frame = frame_from(seed, variant);
        let mut raw = encode_frame(&frame).to_vec();
        let i = (at % raw.len() as u64) as usize;
        raw[i] = byte;
        let _ = decode_frame(&Bytes::from(raw));
    }

    /// Every strict prefix of a valid frame encoding fails to decode
    /// (no silent short reads), and never panics.
    #[test]
    fn truncated_frames_error(
        seed in any::<u64>(),
        variant in any::<u8>(),
        at in any::<u64>(),
    ) {
        let frame = frame_from(seed, variant);
        let raw = encode_frame(&frame);
        let cut = (at % raw.len() as u64) as usize;
        let prefix = Bytes::copy_from_slice(&raw.as_slice()[..cut]);
        prop_assert!(decode_frame(&prefix).is_err());
    }

    /// MSet encodings embedded in frames agree with the bare codec.
    #[test]
    fn mset_frame_agrees_with_bare_codec(seed in any::<u64>()) {
        let frame = frame_from(seed, 1);
        if let Frame::MSet(mset) = &frame {
            let bare = encode_mset(mset);
            let framed = encode_frame(&frame);
            // Frame = 1 tag byte + the bare MSet encoding.
            prop_assert_eq!(&framed.as_slice()[1..], bare.as_slice());
        }
    }
}
