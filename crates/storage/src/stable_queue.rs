//! Stable queues (§2.2).
//!
//! The paper factors message-loss handling out of replica control by
//! assuming *stable queues* that "persistently retry message delivery
//! until successful". A stable queue holds each update MSet until the
//! destination acknowledges it; entries survive crashes of the sending
//! site.
//!
//! Two implementations share the [`StableQueue`] interface:
//!
//! * [`MemQueue`] — in-memory, for simulation (crashes are simulated by
//!   cloning the queue state, not by losing it);
//! * [`FileQueue`] — append-only file-backed, for the real-thread
//!   runtime; reopening the file after a crash recovers exactly the
//!   unacknowledged entries.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Identifier of one queue entry, assigned at enqueue time and stable
/// across recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(pub u64);

/// The stable-queue contract: at-least-once delivery with explicit
/// acknowledgement.
pub trait StableQueue {
    /// Appends a payload; returns its stable id.
    fn enqueue(&mut self, payload: Bytes) -> EntryId;

    /// The unacknowledged entries, oldest first, up to `max`.
    fn pending(&self, max: usize) -> Vec<(EntryId, Bytes)>;

    /// The unacknowledged entries with ids strictly greater than
    /// `after`, oldest first, up to `max` — the cursor a draining
    /// sender uses to pick up where its last transmission stopped
    /// without rescanning (or re-sending) everything still awaiting
    /// acknowledgement. `after = None` starts from the head, so
    /// `pending_after(None, max)` equals `pending(max)`.
    fn pending_after(&self, after: Option<EntryId>, max: usize) -> Vec<(EntryId, Bytes)>;

    /// Records a delivery attempt (for retry/backoff accounting).
    /// Returns the new attempt count, or `None` for unknown entries.
    fn record_attempt(&mut self, id: EntryId) -> Option<u32>;

    /// Acknowledges (removes) a delivered entry. Returns `false` when the
    /// entry was unknown (e.g. duplicate ack).
    fn ack(&mut self, id: EntryId) -> bool;

    /// Number of unacknowledged entries.
    fn len(&self) -> usize;

    /// True when every entry has been acknowledged.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Debug, Clone)]
struct Entry {
    payload: Bytes,
    attempts: u32,
}

/// In-memory stable queue.
#[derive(Debug, Clone, Default)]
pub struct MemQueue {
    entries: BTreeMap<EntryId, Entry>,
    next_id: u64,
}

impl MemQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl StableQueue for MemQueue {
    fn enqueue(&mut self, payload: Bytes) -> EntryId {
        let id = EntryId(self.next_id);
        self.next_id += 1;
        self.entries.insert(
            id,
            Entry {
                payload,
                attempts: 0,
            },
        );
        id
    }

    fn pending(&self, max: usize) -> Vec<(EntryId, Bytes)> {
        self.entries
            .iter()
            .take(max)
            .map(|(id, e)| (*id, e.payload.clone()))
            .collect()
    }

    fn pending_after(&self, after: Option<EntryId>, max: usize) -> Vec<(EntryId, Bytes)> {
        pending_after_of(&self.entries, after, max)
    }

    fn record_attempt(&mut self, id: EntryId) -> Option<u32> {
        let e = self.entries.get_mut(&id)?;
        e.attempts += 1;
        Some(e.attempts)
    }

    fn ack(&mut self, id: EntryId) -> bool {
        self.entries.remove(&id).is_some()
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Shared `pending_after` walk over an entry map: everything strictly
/// beyond the cursor, oldest first.
fn pending_after_of(
    entries: &BTreeMap<EntryId, Entry>,
    after: Option<EntryId>,
    max: usize,
) -> Vec<(EntryId, Bytes)> {
    let range = match after {
        Some(id) => entries.range((std::ops::Bound::Excluded(id), std::ops::Bound::Unbounded)),
        None => entries.range(..),
    };
    range
        .take(max)
        .map(|(id, e)| (*id, e.payload.clone()))
        .collect()
}

// File record framing: one byte tag, eight byte id, then for ENQUEUE a
// four byte length and the payload. NEXT_ID pins the id allocator: a
// compacted file whose entries were all acknowledged would otherwise
// replay to an empty map and restart ids at zero, and any cursor keyed
// to old ids (a sender's high-water mark, a checkpoint's journal
// frontier) would silently skip the reused range.
const TAG_ENQUEUE: u8 = 1;
const TAG_ACK: u8 = 2;
const TAG_NEXT_ID: u8 = 3;

/// File-backed stable queue: an append-only log of enqueue/ack records.
#[derive(Debug)]
pub struct FileQueue {
    path: PathBuf,
    writer: BufWriter<File>,
    entries: BTreeMap<EntryId, Entry>,
    next_id: u64,
    /// Bytes of the log occupied by acknowledged records (the dead
    /// enqueue plus its ack record). Drives opt-in auto-compaction.
    dead_bytes: u64,
    /// Compact automatically once `dead_bytes` exceeds this.
    auto_compact: Option<u64>,
}

impl FileQueue {
    /// Opens (or creates) a queue file, recovering unacknowledged
    /// entries.
    ///
    /// A torn tail (a record cut short by a crash mid-append) or a
    /// corrupt record stops replay *and truncates the file back to the
    /// last fully-valid record*. Without the truncation, records
    /// appended after the garbage tail would be unreachable on the
    /// following reopen — replay stops at the first bad byte, so
    /// durably-enqueued entries would silently vanish.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let mut entries = BTreeMap::new();
        let mut next_id = 0u64;
        if path.exists() {
            let mut buf = Vec::new();
            File::open(&path)?.read_to_end(&mut buf)?;
            let total = buf.len() as u64;
            let mut cursor = Bytes::from(buf);
            // Byte offset of the end of the last record replayed intact.
            let mut valid_len = 0u64;
            loop {
                if cursor.remaining() < 9 {
                    break;
                }
                let tag = cursor.get_u8();
                let id = cursor.get_u64();
                match tag {
                    TAG_ENQUEUE => {
                        if cursor.remaining() < 4 {
                            break; // torn write at crash: discard tail
                        }
                        let len = cursor.get_u32() as usize;
                        if cursor.remaining() < len {
                            break; // torn payload
                        }
                        let payload = cursor.copy_to_bytes(len);
                        entries.insert(
                            EntryId(id),
                            Entry {
                                payload,
                                attempts: 0,
                            },
                        );
                        next_id = next_id.max(id + 1);
                        valid_len += 13 + len as u64;
                    }
                    TAG_ACK => {
                        entries.remove(&EntryId(id));
                        next_id = next_id.max(id + 1);
                        valid_len += 9;
                    }
                    TAG_NEXT_ID => {
                        // The id field *is* the pinned allocator value
                        // ("the next id is at least this"), not an
                        // entry id — hence max(id), not max(id + 1).
                        next_id = next_id.max(id);
                        valid_len += 9;
                    }
                    _ => break, // corrupt record: stop replay
                }
            }
            if valid_len < total {
                // Drop the torn/corrupt tail so future appends land
                // directly after the last valid record.
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_len)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(Self {
            path,
            writer: BufWriter::new(file),
            entries,
            next_id,
            dead_bytes: 0,
            auto_compact: None,
        })
    }

    /// The file backing this queue.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The id the next enqueue will be assigned. Monotone across
    /// recovery and compaction; `next_id() - 1` is therefore the id of
    /// the newest record ever enqueued (when any was).
    pub fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Enables auto-compaction: after an ack, once at least
    /// `dead_bytes` bytes of the log belong to acknowledged records,
    /// the file is rewritten with only the live entries. Entry ids are
    /// stable across compaction, so `pending_after` cursors held by
    /// senders survive. Compaction failure is ignored (the log stays
    /// append-only correct, just longer than asked).
    pub fn set_auto_compact(&mut self, dead_bytes: u64) {
        self.auto_compact = Some(dead_bytes);
    }

    /// Forces buffered records to the OS (called after every mutation; a
    /// real system would also fsync here).
    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Compacts the log: rewrites the file with only the live entries
    /// (plus a NEXT_ID record pinning the id allocator, so a fully
    /// acknowledged queue does not restart ids from zero on reopen).
    pub fn compact(&mut self) -> io::Result<()> {
        let tmp = self.path.with_extension("compact");
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            let mut pin = BytesMut::with_capacity(9);
            pin.put_u8(TAG_NEXT_ID);
            pin.put_u64(self.next_id);
            out.write_all(&pin)?;
            for (id, e) in &self.entries {
                let mut rec = BytesMut::with_capacity(13 + e.payload.len());
                rec.put_u8(TAG_ENQUEUE);
                rec.put_u64(id.0);
                rec.put_u32(e.payload.len() as u32);
                rec.put_slice(&e.payload);
                out.write_all(&rec)?;
            }
            out.flush()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new().append(true).open(&self.path)?;
        self.writer = BufWriter::new(file);
        self.dead_bytes = 0;
        Ok(())
    }
}

impl StableQueue for FileQueue {
    #[expect(clippy::expect_used, reason = "a failed append to the backing file leaves the queue unusable; panicking is the recovery story")]
    fn enqueue(&mut self, payload: Bytes) -> EntryId {
        let id = EntryId(self.next_id);
        self.next_id += 1;
        let mut rec = BytesMut::with_capacity(13 + payload.len());
        rec.put_u8(TAG_ENQUEUE);
        rec.put_u64(id.0);
        rec.put_u32(payload.len() as u32);
        rec.put_slice(&payload);
        self.writer.write_all(&rec).expect("queue file write");
        self.flush().expect("queue file flush");
        self.entries.insert(
            id,
            Entry {
                payload,
                attempts: 0,
            },
        );
        id
    }

    fn pending(&self, max: usize) -> Vec<(EntryId, Bytes)> {
        self.entries
            .iter()
            .take(max)
            .map(|(id, e)| (*id, e.payload.clone()))
            .collect()
    }

    fn pending_after(&self, after: Option<EntryId>, max: usize) -> Vec<(EntryId, Bytes)> {
        pending_after_of(&self.entries, after, max)
    }

    fn record_attempt(&mut self, id: EntryId) -> Option<u32> {
        let e = self.entries.get_mut(&id)?;
        e.attempts += 1;
        Some(e.attempts)
    }

    #[expect(clippy::expect_used, reason = "a failed append to the backing file leaves the queue unusable; panicking is the recovery story")]
    fn ack(&mut self, id: EntryId) -> bool {
        let Some(e) = self.entries.remove(&id) else {
            return false;
        };
        let mut rec = BytesMut::with_capacity(9);
        rec.put_u8(TAG_ACK);
        rec.put_u64(id.0);
        self.writer.write_all(&rec).expect("queue file write");
        self.flush().expect("queue file flush");
        // The entry's enqueue record (13 + payload) and this ack are
        // both dead weight now.
        self.dead_bytes += 13 + e.payload.len() as u64 + 9;
        if self.auto_compact.is_some_and(|limit| self.dead_bytes >= limit) {
            let _ = self.compact();
        }
        true
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "esr-queue-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mem_queue_fifo_and_ack() {
        let mut q = MemQueue::new();
        let a = q.enqueue(Bytes::from_static(b"a"));
        let b = q.enqueue(Bytes::from_static(b"b"));
        assert_eq!(q.len(), 2);
        let pending = q.pending(10);
        assert_eq!(pending[0].0, a);
        assert_eq!(pending[1].1.as_ref(), b"b");
        assert!(q.ack(a));
        assert!(!q.ack(a), "double ack is rejected");
        assert_eq!(q.len(), 1);
        assert!(q.ack(b));
        assert!(q.is_empty());
    }

    #[test]
    fn mem_queue_attempts() {
        let mut q = MemQueue::new();
        let a = q.enqueue(Bytes::from_static(b"x"));
        assert_eq!(q.record_attempt(a), Some(1));
        assert_eq!(q.record_attempt(a), Some(2));
        q.ack(a);
        assert_eq!(q.record_attempt(a), None);
    }

    #[test]
    fn pending_after_is_a_cursor_over_unacked_entries() {
        let mut q = MemQueue::new();
        let ids: Vec<EntryId> = (0..5).map(|i| q.enqueue(Bytes::from(vec![i]))).collect();
        // From the head it matches pending().
        assert_eq!(q.pending_after(None, 10), q.pending(10));
        // Strictly-after semantics: the cursor entry itself is excluded.
        let tail = q.pending_after(Some(ids[2]), 10);
        assert_eq!(
            tail.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![ids[3], ids[4]]
        );
        // Acked entries vanish from the walk; max is respected.
        q.ack(ids[3]);
        assert_eq!(q.pending_after(Some(ids[0]), 10).len(), 3);
        assert_eq!(q.pending_after(Some(ids[0]), 1).len(), 1);
        // A cursor past the end yields nothing.
        assert!(q.pending_after(Some(ids[4]), 10).is_empty());
    }

    #[test]
    fn file_pending_after_survives_reopen() {
        let path = tmpdir().join("cursor.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        let a = q.enqueue(Bytes::from_static(b"a"));
        let _b = q.enqueue(Bytes::from_static(b"b"));
        let c = q.enqueue(Bytes::from_static(b"c"));
        drop(q);
        let q2 = FileQueue::open(&path).unwrap();
        let tail = q2.pending_after(Some(a), 10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[1].0, c);
        assert_eq!(tail[1].1.as_ref(), b"c");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mem_pending_respects_max() {
        let mut q = MemQueue::new();
        for i in 0..5 {
            q.enqueue(Bytes::from(vec![i]));
        }
        assert_eq!(q.pending(3).len(), 3);
        assert_eq!(q.pending(100).len(), 5);
    }

    #[test]
    fn file_queue_roundtrip() {
        let path = tmpdir().join("roundtrip.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        let a = q.enqueue(Bytes::from_static(b"hello"));
        let b = q.enqueue(Bytes::from_static(b"world"));
        q.ack(a);
        drop(q);

        // Recovery: only the unacked entry survives.
        let q2 = FileQueue::open(&path).unwrap();
        assert_eq!(q2.len(), 1);
        let pending = q2.pending(10);
        assert_eq!(pending[0].0, b);
        assert_eq!(pending[0].1.as_ref(), b"world");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_queue_ids_continue_after_recovery() {
        let path = tmpdir().join("ids.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        let a = q.enqueue(Bytes::from_static(b"1"));
        drop(q);
        let mut q2 = FileQueue::open(&path).unwrap();
        let b = q2.enqueue(Bytes::from_static(b"2"));
        assert!(b > a, "ids must not be reused after recovery");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_queue_survives_torn_tail() {
        let path = tmpdir().join("torn.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        q.enqueue(Bytes::from_static(b"good"));
        drop(q);
        // Simulate a crash mid-write: append a truncated record.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[TAG_ENQUEUE, 0, 0]).unwrap();
        }
        let q2 = FileQueue::open(&path).unwrap();
        assert_eq!(q2.len(), 1, "torn tail discarded, good record kept");
        assert_eq!(q2.pending(1)[0].1.as_ref(), b"good");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_queue_truncates_torn_tail_so_later_appends_survive() {
        let path = tmpdir().join("torn-then-append.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        q.enqueue(Bytes::from_static(b"first"));
        drop(q);
        // Crash mid-append leaves a partial record at the tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[TAG_ENQUEUE, 9, 9, 9, 9]).unwrap();
        }
        // Reopen (must truncate the garbage) and append a new record.
        let mut q2 = FileQueue::open(&path).unwrap();
        assert_eq!(q2.len(), 1);
        q2.enqueue(Bytes::from_static(b"second"));
        drop(q2);
        // The record appended after the torn tail is recoverable.
        let q3 = FileQueue::open(&path).unwrap();
        assert_eq!(q3.len(), 2, "append after torn tail must survive reopen");
        let payloads: Vec<Bytes> = q3.pending(10).into_iter().map(|(_, p)| p).collect();
        assert!(payloads.iter().any(|p| p.as_ref() == b"second"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_queue_compaction_drops_acked_records() {
        let path = tmpdir().join("compact.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        let ids: Vec<EntryId> = (0..10)
            .map(|i| q.enqueue(Bytes::from(format!("payload-{i}"))))
            .collect();
        for id in &ids[..9] {
            q.ack(*id);
        }
        let before = std::fs::metadata(&path).unwrap().len();
        q.compact().unwrap();
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction shrank {before} → {after}");
        assert_eq!(q.len(), 1);
        // And the compacted file still recovers correctly.
        drop(q);
        let q2 = FileQueue::open(&path).unwrap();
        assert_eq!(q2.len(), 1);
        assert_eq!(q2.pending(1)[0].0, ids[9]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_queue_ids_survive_compaction_of_fully_acked_queue() {
        let path = tmpdir().join("acked-compact.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        let ids: Vec<EntryId> = (0..4).map(|i| q.enqueue(Bytes::from(vec![i]))).collect();
        for id in &ids {
            q.ack(*id);
        }
        q.compact().unwrap();
        drop(q);
        // An empty-but-compacted file must not reset the allocator: a
        // fresh enqueue gets an id beyond every id ever handed out.
        let mut q2 = FileQueue::open(&path).unwrap();
        assert!(q2.is_empty());
        let fresh = q2.enqueue(Bytes::from_static(b"new"));
        assert!(
            fresh > ids[3],
            "id {fresh:?} reused after compaction (last was {:?})",
            ids[3]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_queue_auto_compacts_past_dead_byte_threshold() {
        let path = tmpdir().join("auto-compact.q");
        let _ = std::fs::remove_file(&path);
        let mut q = FileQueue::open(&path).unwrap();
        q.set_auto_compact(64);
        let keep = q.enqueue(Bytes::from_static(b"keep"));
        let ids: Vec<EntryId> = (0..8)
            .map(|i| q.enqueue(Bytes::from(format!("dead-payload-{i}"))))
            .collect();
        let grown = std::fs::metadata(&path).unwrap().len();
        for id in &ids {
            q.ack(*id);
        }
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(
            after < grown,
            "acks past the threshold should have compacted ({grown} → {after})"
        );
        // Live entry, its id, and the allocator all survive.
        assert_eq!(q.pending(10), vec![(keep, Bytes::from_static(b"keep"))]);
        drop(q);
        let mut q2 = FileQueue::open(&path).unwrap();
        assert_eq!(q2.len(), 1);
        assert!(q2.enqueue(Bytes::from_static(b"x")) > ids[7]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_queue_empty_file_is_empty_queue() {
        let path = tmpdir().join("empty.q");
        let _ = std::fs::remove_file(&path);
        let q = FileQueue::open(&path).unwrap();
        assert!(q.is_empty());
        assert_eq!(q.path(), path.as_path());
        std::fs::remove_file(&path).unwrap();
    }
}
