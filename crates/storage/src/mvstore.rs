//! The multiversion store with VTNC visibility (§3.3).
//!
//! RITU's multiversion mode appends an immutable version per timestamped
//! update. Queries are synchronized with the *visible transaction number
//! counter* (VTNC) of the Modular Synchronization Method: versions at or
//! below the VTNC are stable — no smaller version can be created by any
//! active or future transaction — so reads at the VTNC are serializable.
//! A query may read a version **newer** than the VTNC, but each such read
//! charges one unit to its inconsistency counter.

use std::collections::BTreeMap;

use esr_core::ids::{ObjectId, VersionTs};
use esr_core::value::Value;

use crate::shard::ShardMap;

/// A read served by the multiversion store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedRead {
    /// The version that served the read ([`VersionTs::MIN`] when the
    /// object has no version at all and the zero value was returned).
    pub version: VersionTs,
    /// The value read.
    pub value: Value,
    /// `true` when the version is newer than the VTNC — the caller must
    /// charge one unit of inconsistency.
    pub above_vtnc: bool,
}

/// Append-only multiversion store for one site.
///
/// ```
/// use esr_core::ids::{ClientId, ObjectId, VersionTs};
/// use esr_core::value::Value;
/// use esr_storage::mvstore::MvStore;
///
/// let mut store = MvStore::new();
/// let x = ObjectId(0);
/// store.install(x, VersionTs::new(1, ClientId(0)), Value::Int(10));
/// store.install(x, VersionTs::new(2, ClientId(0)), Value::Int(20));
/// store.advance_vtnc(VersionTs::new(1, ClientId(0)));
///
/// // Stable (SR) read vs fresh (charged) read:
/// assert_eq!(store.read_at_vtnc(x).value, Value::Int(10));
/// let fresh = store.read_latest(x);
/// assert_eq!(fresh.value, Value::Int(20));
/// assert!(fresh.above_vtnc);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvStore {
    /// Per-object version chains, ordered by version timestamp. The
    /// outer map is sharded (hot on the apply path); each chain stays a
    /// `BTreeMap` because reads range-scan it by version.
    chains: ShardMap<BTreeMap<VersionTs, Value>>,
    /// Visibility horizon: versions `<= vtnc` are stable.
    vtnc: VersionTs,
}

impl Default for MvStore {
    fn default() -> Self {
        Self {
            chains: ShardMap::new(),
            vtnc: VersionTs::MIN,
        }
    }
}

impl MvStore {
    /// An empty store with the VTNC at the minimum version.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current VTNC.
    pub fn vtnc(&self) -> VersionTs {
        self.vtnc
    }

    /// Advances the VTNC (monotonic: attempts to move it backwards are
    /// ignored).
    pub fn advance_vtnc(&mut self, to: VersionTs) {
        if to > self.vtnc {
            self.vtnc = to;
        }
    }

    /// Installs a version. Duplicate timestamps are ignored (idempotent
    /// redelivery), matching RITU MSet processing.
    pub fn install(&mut self, object: ObjectId, ts: VersionTs, value: Value) {
        self.chains
            .entry(object)
            .or_default()
            .entry(ts)
            .or_insert(value);
    }

    /// Installs a batch of versions grouped by object, so each object's
    /// chain is located once per batch rather than once per write.
    /// `installs` must be sorted (or at least grouped) by object for the
    /// grouping to take effect; ungrouped input is still correct, just
    /// not faster. Duplicate timestamps are ignored as in
    /// [`MvStore::install`].
    pub fn install_batch(
        &mut self,
        installs: impl IntoIterator<Item = (ObjectId, VersionTs, Value)>,
    ) {
        // Stream consecutive same-object runs straight into the chain —
        // no intermediate per-run vectors; each run locates its chain
        // exactly once.
        let mut it = installs.into_iter().peekable();
        while let Some((object, ts, value)) = it.next() {
            let chain = self.chains.entry(object).or_default();
            chain.entry(ts).or_insert(value);
            while let Some((_, ts, value)) = it.next_if(|&(next, _, _)| next == object) {
                chain.entry(ts).or_insert(value);
            }
        }
    }

    /// COMPE support: removes the version installed at `ts`, as if the
    /// update never ran. Returns the removed value.
    pub fn remove_version(&mut self, object: ObjectId, ts: VersionTs) -> Option<Value> {
        let chain = self.chains.get_mut(object)?;
        let removed = chain.remove(&ts);
        if chain.is_empty() {
            self.chains.remove(object);
        }
        removed
    }

    /// COMPE's alternative compensation: overwrite the version at `ts`
    /// with the previous value, keeping the timestamp.
    pub fn replace_version(&mut self, object: ObjectId, ts: VersionTs, value: Value) -> bool {
        match self.chains.get_mut(object).and_then(|c| c.get_mut(&ts)) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// A strictly serializable read: the newest version at or below the
    /// VTNC (zero if none).
    pub fn read_at_vtnc(&self, object: ObjectId) -> VersionedRead {
        let vtnc = self.vtnc;
        self.read_at(object, vtnc)
    }

    /// The newest version at or below an arbitrary horizon.
    pub fn read_at(&self, object: ObjectId, horizon: VersionTs) -> VersionedRead {
        let found = self
            .chains
            .get(object)
            .and_then(|c| c.range(..=horizon).next_back())
            .map(|(ts, v)| (*ts, v.clone()));
        match found {
            Some((version, value)) => VersionedRead {
                version,
                value,
                above_vtnc: version > self.vtnc,
            },
            None => VersionedRead {
                version: VersionTs::MIN,
                value: Value::ZERO,
                above_vtnc: false,
            },
        }
    }

    /// The newest version regardless of the VTNC. `above_vtnc` tells the
    /// caller whether the read must be charged to the query's
    /// inconsistency counter.
    pub fn read_latest(&self, object: ObjectId) -> VersionedRead {
        let found = self
            .chains
            .get(object)
            .and_then(|c| c.iter().next_back())
            .map(|(ts, v)| (*ts, v.clone()));
        match found {
            Some((version, value)) => VersionedRead {
                version,
                value,
                above_vtnc: version > self.vtnc,
            },
            None => VersionedRead {
                version: VersionTs::MIN,
                value: Value::ZERO,
                above_vtnc: false,
            },
        }
    }

    /// Number of versions held for `object`.
    pub fn version_count(&self, object: ObjectId) -> usize {
        self.chains.get(object).map_or(0, |c| c.len())
    }

    /// All versions of `object`, oldest first.
    pub fn versions(&self, object: ObjectId) -> Vec<(VersionTs, Value)> {
        self.chains
            .get(object)
            .map(|c| c.iter().map(|(t, v)| (*t, v.clone())).collect())
            .unwrap_or_default()
    }

    /// Garbage-collects versions strictly older than the newest version
    /// at or below `horizon` for every object (the newest stable version
    /// must survive to serve reads). Returns versions removed.
    pub fn prune_below(&mut self, horizon: VersionTs) -> usize {
        let mut removed = 0;
        for chain in self.chains.values_mut() {
            let Some((&keep, _)) = chain.range(..=horizon).next_back() else {
                continue;
            };
            let stale: Vec<VersionTs> = chain.range(..keep).map(|(t, _)| *t).collect();
            for t in stale {
                chain.remove(&t);
                removed += 1;
            }
        }
        removed
    }

    /// Full dump of every version chain in deterministic
    /// `(object, version)` order — the checkpoint image. Replaying the
    /// dump through [`MvStore::install`] (plus
    /// [`MvStore::advance_vtnc`] to the dumped horizon) rebuilds an
    /// identical store.
    pub fn dump(&self) -> Vec<(ObjectId, VersionTs, Value)> {
        let mut out: Vec<(ObjectId, VersionTs, Value)> = self
            .chains
            .iter()
            .flat_map(|(o, c)| c.iter().map(|(t, v)| (*o, *t, v.clone())))
            .collect();
        out.sort_unstable_by_key(|e| (e.0, e.1));
        out
    }

    /// Latest-value snapshot (for replica convergence comparison).
    pub fn snapshot_latest(&self) -> BTreeMap<ObjectId, Value> {
        self.chains
            .iter()
            .filter_map(|(o, c)| c.iter().next_back().map(|(_, v)| (*o, v.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::ClientId;

    const X: ObjectId = ObjectId(0);

    fn vts(t: u64) -> VersionTs {
        VersionTs::new(t, ClientId(0))
    }

    #[test]
    fn empty_reads_zero() {
        let s = MvStore::new();
        let r = s.read_at_vtnc(X);
        assert_eq!(r.value, Value::ZERO);
        assert_eq!(r.version, VersionTs::MIN);
        assert!(!r.above_vtnc);
    }

    #[test]
    fn install_and_read_at_vtnc() {
        let mut s = MvStore::new();
        s.install(X, vts(1), Value::Int(10));
        s.install(X, vts(3), Value::Int(30));
        s.advance_vtnc(vts(2));
        let r = s.read_at_vtnc(X);
        assert_eq!(r.value, Value::Int(10), "version 3 is above the VTNC");
        assert_eq!(r.version, vts(1));
        assert!(!r.above_vtnc);
    }

    #[test]
    fn read_latest_flags_above_vtnc() {
        let mut s = MvStore::new();
        s.install(X, vts(1), Value::Int(10));
        s.install(X, vts(3), Value::Int(30));
        s.advance_vtnc(vts(2));
        let r = s.read_latest(X);
        assert_eq!(r.value, Value::Int(30));
        assert!(r.above_vtnc, "reading past the VTNC must be charged");
        s.advance_vtnc(vts(3));
        assert!(!s.read_latest(X).above_vtnc);
    }

    #[test]
    fn vtnc_is_monotonic() {
        let mut s = MvStore::new();
        s.advance_vtnc(vts(5));
        s.advance_vtnc(vts(3));
        assert_eq!(s.vtnc(), vts(5));
    }

    #[test]
    fn duplicate_install_is_idempotent() {
        let mut s = MvStore::new();
        s.install(X, vts(1), Value::Int(10));
        s.install(X, vts(1), Value::Int(99));
        assert_eq!(s.read_latest(X).value, Value::Int(10));
        assert_eq!(s.version_count(X), 1);
    }

    #[test]
    fn out_of_order_install_converges() {
        let mut a = MvStore::new();
        let mut b = MvStore::new();
        let writes = [(vts(2), 20i64), (vts(1), 10), (vts(3), 30)];
        for (t, v) in writes {
            a.install(X, t, Value::Int(v));
        }
        for (t, v) in writes.iter().rev() {
            b.install(X, *t, Value::Int(*v));
        }
        assert_eq!(a.snapshot_latest(), b.snapshot_latest());
        assert_eq!(a.versions(X), b.versions(X));
    }

    #[test]
    fn install_batch_matches_sequential_installs() {
        let y = ObjectId(1);
        let batch = [
            (X, vts(2), Value::Int(20)),
            (X, vts(1), Value::Int(10)),
            (y, vts(5), Value::Int(50)),
            (X, vts(2), Value::Int(99)), // duplicate ts: ignored
        ];
        let mut seq = MvStore::new();
        for (o, t, v) in batch.iter() {
            seq.install(*o, *t, v.clone());
        }
        let mut batched = MvStore::new();
        batched.install_batch(batch.iter().cloned());
        assert_eq!(batched.snapshot_latest(), seq.snapshot_latest());
        assert_eq!(batched.versions(X), seq.versions(X));
        assert_eq!(batched.version_count(X), 2);
        assert_eq!(batched.read_latest(y).value, Value::Int(50));
    }

    #[test]
    fn remove_version_compensates() {
        let mut s = MvStore::new();
        s.install(X, vts(1), Value::Int(10));
        s.install(X, vts(2), Value::Int(20));
        let removed = s.remove_version(X, vts(2));
        assert_eq!(removed, Some(Value::Int(20)));
        assert_eq!(s.read_latest(X).value, Value::Int(10));
        assert_eq!(s.remove_version(X, vts(9)), None);
        // Removing the last version clears the chain entirely.
        s.remove_version(X, vts(1));
        assert_eq!(s.version_count(X), 0);
        assert_eq!(s.read_latest(X).value, Value::ZERO);
    }

    #[test]
    fn replace_version_keeps_timestamp() {
        let mut s = MvStore::new();
        s.install(X, vts(1), Value::Int(10));
        assert!(s.replace_version(X, vts(1), Value::Int(5)));
        assert_eq!(s.read_latest(X).value, Value::Int(5));
        assert_eq!(s.version_count(X), 1);
        assert!(!s.replace_version(X, vts(2), Value::Int(0)));
    }

    #[test]
    fn read_at_arbitrary_horizon() {
        let mut s = MvStore::new();
        for t in 1..=5 {
            s.install(X, vts(t), Value::Int(t as i64 * 10));
        }
        assert_eq!(s.read_at(X, vts(3)).value, Value::Int(30));
        assert_eq!(s.read_at(X, vts(99)).value, Value::Int(50));
        assert_eq!(s.read_at(X, VersionTs::MIN).value, Value::ZERO);
    }

    #[test]
    fn prune_keeps_newest_stable_version() {
        let mut s = MvStore::new();
        for t in 1..=5 {
            s.install(X, vts(t), Value::Int(t as i64));
        }
        let removed = s.prune_below(vts(3));
        assert_eq!(removed, 2, "versions 1 and 2 pruned; 3 survives");
        assert_eq!(s.read_at(X, vts(3)).value, Value::Int(3));
        assert_eq!(s.version_count(X), 3);
    }

    #[test]
    fn prune_with_no_stable_version_is_noop() {
        let mut s = MvStore::new();
        s.install(X, vts(10), Value::Int(1));
        assert_eq!(s.prune_below(vts(5)), 0);
        assert_eq!(s.version_count(X), 1);
    }
}
