//! N-way sharded hash maps for the hot per-object stores.
//!
//! The single-version and multiversion stores keep one entry per object
//! on the apply path; a `BTreeMap` pays pointer-chasing and rebalancing
//! per touch. [`ShardMap`] spreads objects over a fixed power-of-two
//! number of `HashMap` shards selected by a Fibonacci hash of the object
//! id — O(1) lookups now, and a layout that later PRs can lock per shard
//! for concurrent apply. Deterministic iteration (tests, oracle checks,
//! snapshots) is preserved by collecting into a `BTreeMap` at the
//! snapshot boundary, never on the apply path.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};

use esr_core::ids::ObjectId;

/// log2 of the shard count.
pub const SHARD_BITS: u32 = 4;
/// Number of shards in every [`ShardMap`].
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// The shard an object maps to. Fibonacci hashing spreads the dense,
/// small object ids workloads use across all shards.
#[inline]
pub fn shard_of(object: ObjectId) -> usize {
    (object.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - SHARD_BITS)) as usize
}

// The fast id hasher lives in esr-core (shared with esr-obs since
// PR 5); re-exported here so existing `esr_storage::shard::FastIdMap`
// callers keep compiling unchanged.
pub use esr_core::fastid::{FastIdBuildHasher, FastIdHasher, FastIdMap, FastIdSet};

/// A fixed-fanout sharded map from [`ObjectId`] to `V`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap<V> {
    shards: Vec<HashMap<ObjectId, V>>,
}

impl<V> Default for ShardMap<V> {
    fn default() -> Self {
        Self {
            shards: (0..SHARD_COUNT).map(|_| HashMap::new()).collect(),
        }
    }
}

impl<V> ShardMap<V> {
    /// Creates an empty map with all [`SHARD_COUNT`] shards allocated.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the value stored for `object`, if any.
    #[inline]
    pub fn get(&self, object: ObjectId) -> Option<&V> {
        self.shards[shard_of(object)].get(&object)
    }

    /// Mutable lookup of the value stored for `object`, if any.
    #[inline]
    pub fn get_mut(&mut self, object: ObjectId) -> Option<&mut V> {
        self.shards[shard_of(object)].get_mut(&object)
    }

    /// Inserts a value for `object`, returning the previous one if any.
    #[inline]
    pub fn insert(&mut self, object: ObjectId, value: V) -> Option<V> {
        self.shards[shard_of(object)].insert(object, value)
    }

    /// Removes and returns the value stored for `object`, if any.
    #[inline]
    pub fn remove(&mut self, object: ObjectId) -> Option<V> {
        self.shards[shard_of(object)].remove(&object)
    }

    /// Entry API into the shard that owns `object`.
    #[inline]
    pub fn entry(&mut self, object: ObjectId) -> Entry<'_, ObjectId, V> {
        self.shards[shard_of(object)].entry(object)
    }

    /// Total number of entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Whether no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(HashMap::is_empty)
    }

    /// Unordered iteration over all entries (apply-path use only; for
    /// anything user-visible go through [`ShardMap::to_btree`]).
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &V)> {
        self.shards.iter().flat_map(HashMap::iter)
    }

    /// Unordered mutable iteration over all values.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.shards.iter_mut().flat_map(HashMap::values_mut)
    }

    /// Deterministically ordered snapshot of all entries.
    pub fn to_btree<U>(&self, mut f: impl FnMut(&V) -> U) -> BTreeMap<ObjectId, U> {
        self.iter().map(|(k, v)| (*k, f(v))).collect()
    }
}

impl<V> FromIterator<(ObjectId, V)> for ShardMap<V> {
    fn from_iter<I: IntoIterator<Item = (ObjectId, V)>>(iter: I) -> Self {
        let mut map = Self::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = ShardMap::new();
        for i in 0..100u64 {
            assert_eq!(m.insert(ObjectId(i), i * 10), None);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(ObjectId(7)), Some(&70));
        assert_eq!(m.insert(ObjectId(7), 71), Some(70));
        assert_eq!(m.remove(ObjectId(7)), Some(71));
        assert_eq!(m.get(ObjectId(7)), None);
        assert_eq!(m.len(), 99);
        assert!(!m.is_empty());
    }

    #[test]
    fn dense_ids_spread_over_shards() {
        let mut hit = [false; SHARD_COUNT];
        for i in 0..256u64 {
            hit[shard_of(ObjectId(i))] = true;
        }
        assert!(hit.iter().all(|&h| h), "all shards used by dense ids");
    }

    #[test]
    fn to_btree_is_ordered_and_complete() {
        let m: ShardMap<u64> = (0..50u64).rev().map(|i| (ObjectId(i), i)).collect();
        let b = m.to_btree(|v| *v);
        assert_eq!(b.len(), 50);
        let keys: Vec<u64> = b.keys().map(|k| k.raw()).collect();
        let sorted: Vec<u64> = (0..50).collect();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn fast_id_map_round_trips() {
        let mut m: FastIdMap<ObjectId, u64> = FastIdMap::default();
        for i in 0..1000u64 {
            m.insert(ObjectId(i), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&ObjectId(123)), Some(&123));
        let mut s: FastIdSet<ObjectId> = FastIdSet::default();
        assert!(s.insert(ObjectId(1)));
        assert!(!s.insert(ObjectId(1)));
    }

    #[test]
    fn equality_is_content_based() {
        let a: ShardMap<u64> = (0..20u64).map(|i| (ObjectId(i), i)).collect();
        let b: ShardMap<u64> = (0..20u64).rev().map(|i| (ObjectId(i), i)).collect();
        assert_eq!(a, b, "insertion order must not matter");
    }
}
