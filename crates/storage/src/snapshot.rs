//! Checkpoint snapshot container: a versioned, crc-guarded,
//! atomically-installed file format.
//!
//! This module is deliberately ignorant of *what* is being
//! checkpointed — the payload is opaque bytes (the runtime encodes its
//! applied-frontier vector, method state, and client table into it).
//! What lives here is the durability story:
//!
//! * **Framing** — `"ESRSNAP1"` magic, a `u64` checkpoint sequence
//!   number, a `u64` payload length, the payload, and a trailing CRC-32
//!   over everything before it. [`decode_container`] is total: any byte
//!   string either yields `(seq, payload)` or `None`, never a panic —
//!   a torn or bit-flipped snapshot is just "no snapshot".
//! * **Atomic install** — [`install`] writes `<prefix>.ckpt-<seq>.tmp`
//!   and `rename(2)`s it into place, so a crash leaves either the
//!   previous snapshot set or the previous set plus one complete new
//!   file, never a half-written `.snap`.
//! * **Newest-valid load** — [`load_newest`] walks candidates newest
//!   first and returns the first one that validates, silently skipping
//!   torn/corrupt files: recovery lands on snapshot-or-previous.
//! * **Retention** — [`retain`] keeps the newest `keep` snapshots.
//!   Callers keep ≥ 2 so log truncation can lag one checkpoint behind
//!   (see `DESIGN.md` §16): if the newest snapshot is corrupt, the
//!   previous one plus the un-truncated journal suffix still recovers.

use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Container magic: format name + version.
pub const SNAP_MAGIC: [u8; 8] = *b"ESRSNAP1";

/// Fixed container overhead: magic + seq + payload length + crc.
pub const SNAP_OVERHEAD: usize = 8 + 8 + 8 + 4;

/// CRC-32 (IEEE) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Frames `payload` as a snapshot container for checkpoint `seq`.
pub fn encode_container(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SNAP_OVERHEAD + payload.len());
    out.extend_from_slice(&SNAP_MAGIC);
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_be_bytes());
    out
}

/// Parses and validates a snapshot container. Total: returns `None`
/// (never panics) on short input, bad magic, a length that disagrees
/// with the file size, or a crc mismatch.
pub fn decode_container(bytes: &[u8]) -> Option<(u64, &[u8])> {
    if bytes.len() < SNAP_OVERHEAD || bytes[..8] != SNAP_MAGIC {
        return None;
    }
    let seq = u64::from_be_bytes(bytes[8..16].try_into().ok()?);
    let len = u64::from_be_bytes(bytes[16..24].try_into().ok()?);
    // Exact-size check (no truncated payload, no trailing garbage);
    // the comparison is in u64 so a huge declared length cannot
    // overflow a usize conversion.
    if len != (bytes.len() - SNAP_OVERHEAD) as u64 {
        return None;
    }
    let payload_end = bytes.len() - 4;
    let stored = u32::from_be_bytes(bytes[payload_end..].try_into().ok()?);
    if crc32(&bytes[..payload_end]) != stored {
        return None;
    }
    Some((seq, &bytes[24..payload_end]))
}

fn snap_path(dir: &Path, prefix: &str, seq: u64) -> PathBuf {
    dir.join(format!("{prefix}.ckpt-{seq}.snap"))
}

/// Atomically installs checkpoint `seq` with the given opaque payload:
/// the container is written to a `.tmp` sibling, flushed, and renamed
/// into place. Returns the installed path.
pub fn install(dir: &Path, prefix: &str, seq: u64, payload: &[u8]) -> io::Result<PathBuf> {
    let path = snap_path(dir, prefix, seq);
    let tmp = dir.join(format!("{prefix}.ckpt-{seq}.tmp"));
    let bytes = encode_container(seq, payload);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Every installed snapshot for `prefix`, as `(seq, path)` sorted by
/// ascending seq. Files are *not* validated — this lists candidates.
pub fn list(dir: &Path, prefix: &str) -> io::Result<Vec<(u64, PathBuf)>> {
    let head = format!("{prefix}.ckpt-");
    let mut found = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some(rest) = name.strip_prefix(&head) else { continue };
                let Some(seq_str) = rest.strip_suffix(".snap") else { continue };
                if let Ok(seq) = seq_str.parse::<u64>() {
                    found.push((seq, entry.path()));
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    found.sort_unstable_by_key(|(seq, _)| *seq);
    Ok(found)
}

/// Loads the newest snapshot that validates, returning
/// `(seq, payload)` — or `None` when no candidate exists or every one
/// is torn/corrupt. Invalid newer files are skipped, not fatal.
pub fn load_newest(dir: &Path, prefix: &str) -> io::Result<Option<(u64, Vec<u8>)>> {
    for (_, path) in list(dir, prefix)?.into_iter().rev() {
        let Ok(bytes) = std::fs::read(&path) else { continue };
        if let Some((seq, payload)) = decode_container(&bytes) {
            return Ok(Some((seq, payload.to_vec())));
        }
    }
    Ok(None)
}

/// The raw container bytes of the newest *valid* snapshot (for serving
/// snapshot catch-up chunks to a rejoining peer), with its seq.
pub fn load_newest_raw(dir: &Path, prefix: &str) -> io::Result<Option<(u64, Vec<u8>)>> {
    for (_, path) in list(dir, prefix)?.into_iter().rev() {
        let Ok(bytes) = std::fs::read(&path) else { continue };
        if let Some((seq, _)) = decode_container(&bytes) {
            return Ok(Some((seq, bytes)));
        }
    }
    Ok(None)
}

/// Deletes all but the newest `keep` snapshots for `prefix`.
pub fn retain(dir: &Path, prefix: &str, keep: usize) -> io::Result<()> {
    let found = list(dir, prefix)?;
    if found.len() > keep {
        for (_, path) in &found[..found.len() - keep] {
            let _ = std::fs::remove_file(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "esr-snap-test-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn container_round_trips() {
        let payload = b"frontier and friends".to_vec();
        let bytes = encode_container(7, &payload);
        assert_eq!(decode_container(&bytes), Some((7, payload.as_slice())));
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let bytes = encode_container(3, b"some payload");
        for cut in 0..bytes.len() {
            assert_eq!(decode_container(&bytes[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn decode_rejects_every_single_bit_flip() {
        let bytes = encode_container(9, b"bitflip target");
        for i in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1 << bit;
                assert_eq!(
                    decode_container(&mutated),
                    None,
                    "flip of byte {i} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut bytes = encode_container(1, b"p");
        bytes.push(0);
        assert_eq!(decode_container(&bytes), None);
    }

    #[test]
    fn install_load_retain_lifecycle() {
        let dir = tmpdir("lifecycle");
        assert_eq!(load_newest(&dir, "site-0").unwrap(), None);
        install(&dir, "site-0", 1, b"one").unwrap();
        install(&dir, "site-0", 2, b"two").unwrap();
        install(&dir, "site-0", 3, b"three").unwrap();
        // Another site's snapshots are invisible through this prefix.
        install(&dir, "site-1", 9, b"other").unwrap();
        assert_eq!(
            load_newest(&dir, "site-0").unwrap(),
            Some((3, b"three".to_vec()))
        );
        retain(&dir, "site-0", 2).unwrap();
        let left = list(&dir, "site-0").unwrap();
        assert_eq!(left.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(list(&dir, "site-1").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmpdir("fallback");
        install(&dir, "site-2", 1, b"good").unwrap();
        let newest = install(&dir, "site-2", 2, b"bad-to-be").unwrap();
        // Corrupt the newest in place (flip a payload byte).
        let mut bytes = std::fs::read(&newest).unwrap();
        bytes[25] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();
        assert_eq!(
            load_newest(&dir, "site-2").unwrap(),
            Some((1, b"good".to_vec()))
        );
        // And with both corrupt: no snapshot at all.
        let older = snap_path(&dir, "site-2", 1);
        std::fs::write(&older, b"junk").unwrap();
        assert_eq!(load_newest(&dir, "site-2").unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
