//! The single-version object store used by each site.
//!
//! Two flavors live here:
//!
//! * [`ObjectStore`] — a plain value-per-object store; operations are
//!   applied as state transformers in the order given.
//! * [`LwwStore`] — the same, plus per-object version metadata for RITU's
//!   overwrite mode (§3.3): a timestamped write is applied only when its
//!   version is newer than the stored one ("an RITU update trying to
//!   overwrite a newer version is ignored"), so replicas converge under
//!   any delivery order.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};

use esr_core::ids::{ObjectId, VersionTs};
use esr_core::op::{coalesce_ops, ObjectOp, Operation};
use esr_core::value::Value;
use esr_core::CoreResult;

use crate::shard::ShardMap;

/// A plain object store: one current value per object. Missing objects
/// read as [`Value::ZERO`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectStore {
    values: ShardMap<Value>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store preloaded with initial values.
    pub fn with_values(values: impl IntoIterator<Item = (ObjectId, Value)>) -> Self {
        Self {
            values: values.into_iter().collect(),
        }
    }

    /// Reads the current value of `object` (zero if never written).
    pub fn get(&self, object: ObjectId) -> Value {
        self.values.get(object).cloned().unwrap_or_default()
    }

    /// Applies one bound operation. Reads leave the store unchanged and
    /// return the value observed; writes install the transformed value
    /// and return it.
    pub fn apply(&mut self, op: &ObjectOp) -> CoreResult<Value> {
        let current = self.get(op.object);
        let next = op.apply(&current)?;
        if op.op.is_write() {
            self.values.insert(op.object, next.clone());
        }
        Ok(next)
    }

    /// Applies a slice of bound operations in delivery order. Equivalent
    /// to calling [`ObjectStore::apply`] on each; stops at the first
    /// error, leaving earlier writes installed exactly like the
    /// one-at-a-time path.
    pub fn apply_batch(&mut self, ops: &[ObjectOp]) -> CoreResult<()> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Applies a run of operations against one object with coalescing:
    /// the run is folded through [`coalesce_ops`] (N commuting `Incr`s
    /// become one net `Incr`, overwritten writes drop out), then the
    /// folded ops transform a cached copy of the value and the object's
    /// slot is written back once.
    ///
    /// State equivalence with the sequential path holds whenever the run
    /// applies cleanly. On error nothing is installed (the sequential
    /// path would install the successful prefix) — callers on this path
    /// treat apply errors as fatal, so the difference is unobservable.
    pub fn apply_object_run(&mut self, object: ObjectId, ops: &[Operation]) -> CoreResult<Value> {
        let folded = coalesce_ops(ops);
        let mut current = self.get(object);
        let mut wrote = false;
        for op in &folded {
            current = op.apply(object, &current)?;
            wrote |= op.is_write();
        }
        if wrote {
            self.values.insert(object, current.clone());
        }
        Ok(current)
    }

    /// Applies a vector of `(object, operation)` pairs **pre-sorted by
    /// object** (stable, so each object's internal order is the delivery
    /// order), streaming each object's run through the pairwise fold of
    /// [`coalesce_ops`] without materializing per-object vectors: reads
    /// are dropped, adjacent foldable operations collapse, and each
    /// object's slot is read and written at most once per batch.
    ///
    /// Error semantics match [`ObjectStore::apply_object_run`]: an error
    /// leaves the failing object uninstalled while earlier objects keep
    /// their runs — callers treat apply errors as fatal.
    pub fn apply_sorted_pairs(&mut self, pairs: &[(ObjectId, Operation)]) -> CoreResult<()> {
        let mut i = 0;
        while i < pairs.len() {
            let object = pairs[i].0;
            let mut end = i + 1;
            while end < pairs.len() && pairs[end].0 == object {
                end += 1;
            }
            self.apply_op_run(object, pairs[i..end].iter().map(|(_, op)| op))?;
            i = end;
        }
        Ok(())
    }

    /// Applies one object's run of operations, streamed by reference in
    /// delivery order, through the pairwise fold of [`coalesce_ops`]:
    /// reads are dropped, adjacent foldable operations collapse, and the
    /// object's slot is read and written at most once. Operations are
    /// cloned only when a fold boundary forces one into the accumulator,
    /// so a fully-foldable run of N ops costs one clone, not N.
    ///
    /// Error semantics match [`ObjectStore::apply_object_run`]: on error
    /// nothing is installed; callers on this path treat apply errors as
    /// fatal.
    pub fn apply_op_run<'a>(
        &mut self,
        object: ObjectId,
        ops: impl IntoIterator<Item = &'a Operation>,
    ) -> CoreResult<Value> {
        // Fold first, touch the store after: the whole run is coalesced
        // before the object's slot is even located, so a run costs one
        // slot lookup (plus one insert when the object is new), not one
        // get-plus-insert per operation.
        // `overflow` stays unallocated unless the run actually contains
        // a non-foldable boundary — the common fully-foldable run costs
        // one clone and zero heap traffic before the store is touched.
        let mut overflow: Vec<Operation> = Vec::new();
        let mut acc: Option<Operation> = None;
        for op in ops {
            if matches!(op, Operation::Read) {
                continue;
            }
            acc = match acc.take() {
                None => Some(op.clone()),
                Some(prev) => match prev.fold_with(op) {
                    Some(folded) => Some(folded),
                    None => {
                        overflow.push(prev);
                        Some(op.clone())
                    }
                },
            };
        }
        let Some(last) = acc else {
            return Ok(self.get(object)); // all reads: store untouched
        };
        let apply_all = |mut current: Value| -> CoreResult<(Value, bool)> {
            let mut wrote = false;
            for op in &overflow {
                current = op.apply(object, &current)?;
                wrote |= op.is_write();
            }
            current = last.apply(object, &current)?;
            wrote |= last.is_write();
            Ok((current, wrote))
        };
        if let Some(slot) = self.values.get_mut(object) {
            // On error the `?` leaves the taken slot zeroed — callers on
            // this path treat apply errors as fatal, so the difference
            // is unobservable (documented above).
            let (current, _) = apply_all(std::mem::take(slot))?;
            *slot = current.clone();
            Ok(current)
        } else {
            let (current, wrote) = apply_all(Value::default())?;
            if wrote {
                self.values.insert(object, current.clone());
            }
            Ok(current)
        }
    }

    /// Overwrites an object directly (used by recovery to restore
    /// before-images).
    pub fn put(&mut self, object: ObjectId, value: Value) {
        self.values.insert(object, value);
    }

    /// A snapshot of all explicitly written objects, in deterministic
    /// object order.
    pub fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.values.to_btree(Value::clone)
    }

    /// Number of objects holding an explicit value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A last-writer-wins store for RITU overwrite mode: each object carries
/// the version of the write that produced its current value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LwwStore {
    values: ShardMap<(VersionTs, Value)>,
}

/// What [`LwwStore::apply_timestamped`] did with a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LwwOutcome {
    /// The write carried a newer version and was installed.
    Applied,
    /// The write carried an older (or equal) version and was ignored.
    Ignored,
}

impl LwwStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current value (zero if never written).
    pub fn get(&self, object: ObjectId) -> Value {
        self.values
            .get(object)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }

    /// The version of the current value ([`VersionTs::MIN`] if never
    /// written).
    pub fn version(&self, object: ObjectId) -> VersionTs {
        self.values
            .get(object)
            .map(|(ts, _)| *ts)
            .unwrap_or(VersionTs::MIN)
    }

    /// Applies a timestamped write with last-writer-wins arbitration.
    pub fn apply_timestamped(
        &mut self,
        object: ObjectId,
        ts: VersionTs,
        value: Value,
    ) -> LwwOutcome {
        match self.values.entry(object) {
            Entry::Occupied(mut slot) => {
                if ts > slot.get().0 {
                    slot.insert((ts, value));
                    LwwOutcome::Applied
                } else {
                    LwwOutcome::Ignored
                }
            }
            Entry::Vacant(slot) => {
                slot.insert((ts, value));
                LwwOutcome::Applied
            }
        }
    }

    /// Applies a batch of timestamped writes, reducing each object's
    /// candidates to the maximum-version one before touching the store,
    /// so each object's slot is arbitrated exactly once per batch.
    ///
    /// Within-batch ties keep the earlier write, matching the strict-`>`
    /// arbitration the one-at-a-time path performs. Returns the number
    /// of objects whose value changed.
    pub fn apply_timestamped_batch(
        &mut self,
        writes: impl IntoIterator<Item = (ObjectId, VersionTs, Value)>,
    ) -> usize {
        let mut best: HashMap<ObjectId, (VersionTs, Value)> = HashMap::new();
        for (object, ts, value) in writes {
            match best.entry(object) {
                Entry::Occupied(mut slot) => {
                    if ts > slot.get().0 {
                        slot.insert((ts, value));
                    }
                }
                Entry::Vacant(slot) => {
                    slot.insert((ts, value));
                }
            }
        }
        let mut applied = 0;
        for (object, (ts, value)) in best {
            if self.apply_timestamped(object, ts, value) == LwwOutcome::Applied {
                applied += 1;
            }
        }
        applied
    }

    /// Applies any operation: timestamped writes go through LWW
    /// arbitration; everything else transforms the current value and
    /// keeps the stored version.
    pub fn apply(&mut self, op: &ObjectOp) -> CoreResult<Value> {
        match &op.op {
            Operation::TimestampedWrite(ts, v) => {
                self.apply_timestamped(op.object, *ts, v.clone());
                Ok(self.get(op.object))
            }
            Operation::Read => Ok(self.get(op.object)),
            other => {
                let current = self.get(op.object);
                let next = other.apply(op.object, &current)?;
                let ts = self.version(op.object);
                self.values.insert(op.object, (ts, next.clone()));
                Ok(next)
            }
        }
    }

    /// Snapshot of values only (versions stripped), in deterministic
    /// object order, for convergence comparison between replicas.
    pub fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.values.to_btree(|(_, v)| v.clone())
    }

    /// Full versioned dump in deterministic object order — the
    /// checkpoint image. Rebuilding a store by replaying the dump
    /// through [`LwwStore::apply_timestamped`] restores both values and
    /// arbitration state.
    pub fn versioned_dump(&self) -> Vec<(ObjectId, VersionTs, Value)> {
        self.values
            .to_btree(Clone::clone)
            .into_iter()
            .map(|(object, (ts, value))| (object, ts, value))
            .collect()
    }

    /// Number of objects with an explicit value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::ClientId;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn vts(t: u64) -> VersionTs {
        VersionTs::new(t, ClientId(0))
    }

    #[test]
    fn missing_objects_read_zero() {
        let s = ObjectStore::new();
        assert_eq!(s.get(X), Value::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn apply_write_installs_value() {
        let mut s = ObjectStore::new();
        let v = s
            .apply(&ObjectOp::new(X, Operation::Write(Value::Int(5))))
            .unwrap();
        assert_eq!(v, Value::Int(5));
        assert_eq!(s.get(X), Value::Int(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_read_does_not_mutate() {
        let mut s = ObjectStore::with_values([(X, Value::Int(9))]);
        let v = s.apply(&ObjectOp::new(X, Operation::Read)).unwrap();
        assert_eq!(v, Value::Int(9));
        assert_eq!(s.len(), 1);
        // Reading an absent object also leaves it absent.
        s.apply(&ObjectOp::new(Y, Operation::Read)).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_incr_chain() {
        let mut s = ObjectStore::new();
        s.apply(&ObjectOp::new(X, Operation::Incr(10))).unwrap();
        s.apply(&ObjectOp::new(X, Operation::MulBy(3))).unwrap();
        assert_eq!(s.get(X), Value::Int(30));
    }

    #[test]
    fn apply_propagates_errors() {
        let mut s = ObjectStore::with_values([(X, Value::from("text"))]);
        assert!(s.apply(&ObjectOp::new(X, Operation::Incr(1))).is_err());
        // Failed op leaves the store unchanged.
        assert_eq!(s.get(X), Value::from("text"));
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut s = ObjectStore::new();
        s.put(X, Value::Int(1));
        s.put(Y, Value::Int(2));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&Y], Value::Int(2));
    }

    #[test]
    fn lww_applies_newer_ignores_older() {
        let mut s = LwwStore::new();
        assert_eq!(
            s.apply_timestamped(X, vts(10), Value::Int(1)),
            LwwOutcome::Applied
        );
        assert_eq!(
            s.apply_timestamped(X, vts(5), Value::Int(2)),
            LwwOutcome::Ignored
        );
        assert_eq!(s.get(X), Value::Int(1));
        assert_eq!(
            s.apply_timestamped(X, vts(20), Value::Int(3)),
            LwwOutcome::Applied
        );
        assert_eq!(s.get(X), Value::Int(3));
        assert_eq!(s.version(X), vts(20));
    }

    #[test]
    fn lww_equal_version_is_ignored() {
        let mut s = LwwStore::new();
        s.apply_timestamped(X, vts(10), Value::Int(1));
        assert_eq!(
            s.apply_timestamped(X, vts(10), Value::Int(99)),
            LwwOutcome::Ignored,
            "duplicate delivery must be idempotent"
        );
        assert_eq!(s.get(X), Value::Int(1));
    }

    #[test]
    fn lww_convergence_under_any_order() {
        // The RITU property: same set of writes, any order, same state.
        let writes = [
            (vts(3), Value::Int(30)),
            (vts(1), Value::Int(10)),
            (vts(2), Value::Int(20)),
        ];
        let mut forward = LwwStore::new();
        for (ts, v) in writes.iter() {
            forward.apply_timestamped(X, *ts, v.clone());
        }
        let mut reverse = LwwStore::new();
        for (ts, v) in writes.iter().rev() {
            reverse.apply_timestamped(X, *ts, v.clone());
        }
        assert_eq!(forward.snapshot(), reverse.snapshot());
        assert_eq!(forward.get(X), Value::Int(30));
    }

    #[test]
    fn apply_object_run_matches_sequential() {
        let ops = [
            Operation::Incr(5),
            Operation::Incr(7),
            Operation::Read,
            Operation::MulBy(2),
            Operation::Decr(4),
            Operation::Write(Value::Int(100)),
            Operation::Incr(1),
        ];
        let mut seq = ObjectStore::new();
        for op in &ops {
            seq.apply(&ObjectOp::new(X, op.clone())).unwrap();
        }
        let mut run = ObjectStore::new();
        let v = run.apply_object_run(X, &ops).unwrap();
        assert_eq!(v, Value::Int(101));
        assert_eq!(run.snapshot(), seq.snapshot());
    }

    #[test]
    fn apply_object_run_of_reads_installs_nothing() {
        let mut s = ObjectStore::new();
        let v = s
            .apply_object_run(X, &[Operation::Read, Operation::Read])
            .unwrap();
        assert_eq!(v, Value::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn apply_batch_stops_at_first_error_keeping_prefix() {
        let mut s = ObjectStore::new();
        let ops = [
            ObjectOp::new(X, Operation::Write(Value::Int(1))),
            ObjectOp::new(Y, Operation::Write(Value::from("text"))),
            ObjectOp::new(Y, Operation::Incr(1)),
            ObjectOp::new(X, Operation::Write(Value::Int(2))),
        ];
        assert!(s.apply_batch(&ops).is_err());
        assert_eq!(s.get(X), Value::Int(1), "prefix stays installed");
        assert_eq!(s.get(Y), Value::from("text"));
    }

    #[test]
    fn lww_batch_reduces_per_object_and_ties_keep_first() {
        let batch = [
            (X, vts(3), Value::Int(30)),
            (X, vts(7), Value::Int(70)),
            (X, vts(7), Value::Int(71)), // tie: first max-ts write wins
            (Y, vts(1), Value::Int(10)),
            (X, vts(2), Value::Int(20)),
        ];
        let mut seq = LwwStore::new();
        for (o, ts, v) in batch.iter() {
            seq.apply_timestamped(*o, *ts, v.clone());
        }
        let mut batched = LwwStore::new();
        let applied = batched.apply_timestamped_batch(batch.iter().cloned());
        assert_eq!(applied, 2, "one install per touched object");
        assert_eq!(batched.snapshot(), seq.snapshot());
        assert_eq!(batched.get(X), Value::Int(70));
        assert_eq!(batched.version(X), vts(7));
    }

    #[test]
    fn lww_batch_respects_already_stored_newer_version() {
        let mut s = LwwStore::new();
        s.apply_timestamped(X, vts(50), Value::Int(5));
        let applied = s.apply_timestamped_batch([(X, vts(10), Value::Int(1))]);
        assert_eq!(applied, 0);
        assert_eq!(s.get(X), Value::Int(5));
    }

    #[test]
    fn lww_apply_dispatches_by_operation() {
        let mut s = LwwStore::new();
        s.apply(&ObjectOp::new(
            X,
            Operation::TimestampedWrite(vts(1), Value::Int(5)),
        ))
        .unwrap();
        assert_eq!(s.get(X), Value::Int(5));
        // Non-timestamped ops transform in place.
        s.apply(&ObjectOp::new(X, Operation::Incr(3))).unwrap();
        assert_eq!(s.get(X), Value::Int(8));
        // Read returns current value.
        let v = s.apply(&ObjectOp::new(X, Operation::Read)).unwrap();
        assert_eq!(v, Value::Int(8));
        assert!(!s.is_empty());
    }
}
