//! The single-version object store used by each site.
//!
//! Two flavors live here:
//!
//! * [`ObjectStore`] — a plain value-per-object store; operations are
//!   applied as state transformers in the order given.
//! * [`LwwStore`] — the same, plus per-object version metadata for RITU's
//!   overwrite mode (§3.3): a timestamped write is applied only when its
//!   version is newer than the stored one ("an RITU update trying to
//!   overwrite a newer version is ignored"), so replicas converge under
//!   any delivery order.

use std::collections::BTreeMap;

use esr_core::ids::{ObjectId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_core::CoreResult;

/// A plain object store: one current value per object. Missing objects
/// read as [`Value::ZERO`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObjectStore {
    values: BTreeMap<ObjectId, Value>,
}

impl ObjectStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store preloaded with initial values.
    pub fn with_values(values: impl IntoIterator<Item = (ObjectId, Value)>) -> Self {
        Self {
            values: values.into_iter().collect(),
        }
    }

    /// Reads the current value of `object` (zero if never written).
    pub fn get(&self, object: ObjectId) -> Value {
        self.values.get(&object).cloned().unwrap_or_default()
    }

    /// Applies one bound operation. Reads leave the store unchanged and
    /// return the value observed; writes install the transformed value
    /// and return it.
    pub fn apply(&mut self, op: &ObjectOp) -> CoreResult<Value> {
        let current = self.get(op.object);
        let next = op.apply(&current)?;
        if op.op.is_write() {
            self.values.insert(op.object, next.clone());
        }
        Ok(next)
    }

    /// Overwrites an object directly (used by recovery to restore
    /// before-images).
    pub fn put(&mut self, object: ObjectId, value: Value) {
        self.values.insert(object, value);
    }

    /// A snapshot of all explicitly written objects.
    pub fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.values.clone()
    }

    /// Number of objects holding an explicit value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A last-writer-wins store for RITU overwrite mode: each object carries
/// the version of the write that produced its current value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LwwStore {
    values: BTreeMap<ObjectId, (VersionTs, Value)>,
}

/// What [`LwwStore::apply_timestamped`] did with a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LwwOutcome {
    /// The write carried a newer version and was installed.
    Applied,
    /// The write carried an older (or equal) version and was ignored.
    Ignored,
}

impl LwwStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the current value (zero if never written).
    pub fn get(&self, object: ObjectId) -> Value {
        self.values
            .get(&object)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }

    /// The version of the current value ([`VersionTs::MIN`] if never
    /// written).
    pub fn version(&self, object: ObjectId) -> VersionTs {
        self.values
            .get(&object)
            .map(|(ts, _)| *ts)
            .unwrap_or(VersionTs::MIN)
    }

    /// Applies a timestamped write with last-writer-wins arbitration.
    pub fn apply_timestamped(
        &mut self,
        object: ObjectId,
        ts: VersionTs,
        value: Value,
    ) -> LwwOutcome {
        if ts > self.version(object) {
            self.values.insert(object, (ts, value));
            LwwOutcome::Applied
        } else {
            LwwOutcome::Ignored
        }
    }

    /// Applies any operation: timestamped writes go through LWW
    /// arbitration; everything else transforms the current value and
    /// keeps the stored version.
    pub fn apply(&mut self, op: &ObjectOp) -> CoreResult<Value> {
        match &op.op {
            Operation::TimestampedWrite(ts, v) => {
                self.apply_timestamped(op.object, *ts, v.clone());
                Ok(self.get(op.object))
            }
            Operation::Read => Ok(self.get(op.object)),
            other => {
                let current = self.get(op.object);
                let next = other.apply(op.object, &current)?;
                let ts = self.version(op.object);
                self.values.insert(op.object, (ts, next.clone()));
                Ok(next)
            }
        }
    }

    /// Snapshot of values only (versions stripped), for convergence
    /// comparison between replicas.
    pub fn snapshot(&self) -> BTreeMap<ObjectId, Value> {
        self.values
            .iter()
            .map(|(k, (_, v))| (*k, v.clone()))
            .collect()
    }

    /// Number of objects with an explicit value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::ClientId;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn vts(t: u64) -> VersionTs {
        VersionTs::new(t, ClientId(0))
    }

    #[test]
    fn missing_objects_read_zero() {
        let s = ObjectStore::new();
        assert_eq!(s.get(X), Value::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn apply_write_installs_value() {
        let mut s = ObjectStore::new();
        let v = s
            .apply(&ObjectOp::new(X, Operation::Write(Value::Int(5))))
            .unwrap();
        assert_eq!(v, Value::Int(5));
        assert_eq!(s.get(X), Value::Int(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_read_does_not_mutate() {
        let mut s = ObjectStore::with_values([(X, Value::Int(9))]);
        let v = s.apply(&ObjectOp::new(X, Operation::Read)).unwrap();
        assert_eq!(v, Value::Int(9));
        assert_eq!(s.len(), 1);
        // Reading an absent object also leaves it absent.
        s.apply(&ObjectOp::new(Y, Operation::Read)).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn apply_incr_chain() {
        let mut s = ObjectStore::new();
        s.apply(&ObjectOp::new(X, Operation::Incr(10))).unwrap();
        s.apply(&ObjectOp::new(X, Operation::MulBy(3))).unwrap();
        assert_eq!(s.get(X), Value::Int(30));
    }

    #[test]
    fn apply_propagates_errors() {
        let mut s = ObjectStore::with_values([(X, Value::from("text"))]);
        assert!(s.apply(&ObjectOp::new(X, Operation::Incr(1))).is_err());
        // Failed op leaves the store unchanged.
        assert_eq!(s.get(X), Value::from("text"));
    }

    #[test]
    fn snapshot_reflects_state() {
        let mut s = ObjectStore::new();
        s.put(X, Value::Int(1));
        s.put(Y, Value::Int(2));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[&Y], Value::Int(2));
    }

    #[test]
    fn lww_applies_newer_ignores_older() {
        let mut s = LwwStore::new();
        assert_eq!(
            s.apply_timestamped(X, vts(10), Value::Int(1)),
            LwwOutcome::Applied
        );
        assert_eq!(
            s.apply_timestamped(X, vts(5), Value::Int(2)),
            LwwOutcome::Ignored
        );
        assert_eq!(s.get(X), Value::Int(1));
        assert_eq!(
            s.apply_timestamped(X, vts(20), Value::Int(3)),
            LwwOutcome::Applied
        );
        assert_eq!(s.get(X), Value::Int(3));
        assert_eq!(s.version(X), vts(20));
    }

    #[test]
    fn lww_equal_version_is_ignored() {
        let mut s = LwwStore::new();
        s.apply_timestamped(X, vts(10), Value::Int(1));
        assert_eq!(
            s.apply_timestamped(X, vts(10), Value::Int(99)),
            LwwOutcome::Ignored,
            "duplicate delivery must be idempotent"
        );
        assert_eq!(s.get(X), Value::Int(1));
    }

    #[test]
    fn lww_convergence_under_any_order() {
        // The RITU property: same set of writes, any order, same state.
        let writes = [
            (vts(3), Value::Int(30)),
            (vts(1), Value::Int(10)),
            (vts(2), Value::Int(20)),
        ];
        let mut forward = LwwStore::new();
        for (ts, v) in writes.iter() {
            forward.apply_timestamped(X, *ts, v.clone());
        }
        let mut reverse = LwwStore::new();
        for (ts, v) in writes.iter().rev() {
            reverse.apply_timestamped(X, *ts, v.clone());
        }
        assert_eq!(forward.snapshot(), reverse.snapshot());
        assert_eq!(forward.get(X), Value::Int(30));
    }

    #[test]
    fn lww_apply_dispatches_by_operation() {
        let mut s = LwwStore::new();
        s.apply(&ObjectOp::new(
            X,
            Operation::TimestampedWrite(vts(1), Value::Int(5)),
        ))
        .unwrap();
        assert_eq!(s.get(X), Value::Int(5));
        // Non-timestamped ops transform in place.
        s.apply(&ObjectOp::new(X, Operation::Incr(3))).unwrap();
        assert_eq!(s.get(X), Value::Int(8));
        // Read returns current value.
        let v = s.apply(&ObjectOp::new(X, Operation::Read)).unwrap();
        assert_eq!(v, Value::Int(8));
        assert!(!s.is_empty());
    }
}
