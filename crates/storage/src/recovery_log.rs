//! The executed-MSet recovery log for compensation (COMPE, §4).
//!
//! Backward replica control may apply update MSets *before* the global
//! update commits. If the global update later aborts, the site must
//! compensate. The paper's analysis (§4.1):
//!
//! * if every operation after the aborted MSet **commutes** with it, the
//!   compensation MSet can be applied directly (cheap path);
//! * otherwise the log suffix must be rolled back in reverse, the aborted
//!   MSet skipped, and the suffix **replayed** — the `Inc`/`Mul` example:
//!   `Inc(x,10)·Mul(x,2)·Div(x,2)·Dec(x,10)·Mul(x,2) = Mul(x,2)`.
//!
//! The log records a *before-image* for every applied operation, so that
//! operations without algebraic inverses (plain writes, RITU overwrites —
//! "to rollback RITU with overwrite we must also record the value being
//! overwritten") can be undone exactly.
//!
//! **The log is a faithful history.** Suffix rollback restores historical
//! before-images, which is only sound if the log records *every*
//! state-changing action since the oldest at-risk MSet — including
//! compensation MSets applied by the cheap path. Resolution
//! (commit/abort) is therefore status metadata on the records, and only a
//! fully-resolved *prefix* of the log is pruned; dropping records from
//! the middle would silently corrupt later rollbacks.

use std::collections::VecDeque;

use esr_core::error::CoreResult;
use esr_core::fastid::FastIdMap;
use esr_core::ids::EtId;
use esr_core::op::ObjectOp;
use esr_core::value::Value;

use crate::store::ObjectStore;

/// One applied operation with its before-image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedOp {
    /// The operation as executed.
    pub op: ObjectOp,
    /// The object's value immediately before execution.
    pub before: Value,
}

/// One executed MSet: the operations of one update ET at this site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// The update ET the MSet belongs to.
    pub et: EtId,
    /// Its operations, in execution order, with before-images.
    pub ops: Vec<AppliedOp>,
    /// A resolved record can no longer be compensated: it is a committed
    /// MSet or a compensation MSet. It stays in the log (for rollback
    /// fidelity) until every record before it is also resolved.
    pub resolved: bool,
}

/// How an abort was compensated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackStrategy {
    /// All subsequent operations commuted: the compensation MSet was
    /// applied directly.
    CommutativeCompensation,
    /// The log suffix was undone in reverse and replayed.
    SuffixRollback,
}

/// Cost accounting for one rollback, reported to the E8 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackReport {
    /// Which path was taken.
    pub strategy: RollbackStrategy,
    /// Operations executed to undo state (compensations or before-image
    /// restores).
    pub ops_undone: usize,
    /// Operations re-executed during replay (zero on the cheap path).
    pub ops_replayed: usize,
}

/// The recovery log of one site.
///
/// The paper's §4.1 example, end to end:
///
/// ```
/// use esr_core::ids::{EtId, ObjectId};
/// use esr_core::op::{ObjectOp, Operation};
/// use esr_core::value::Value;
/// use esr_storage::recovery_log::{RecoveryLog, RollbackStrategy};
/// use esr_storage::store::ObjectStore;
///
/// let (mut store, mut log, x) = (ObjectStore::new(), RecoveryLog::new(), ObjectId(0));
/// log.apply_mset(&mut store, EtId(1), &[ObjectOp::new(x, Operation::Incr(10))]).unwrap();
/// log.apply_mset(&mut store, EtId(2), &[ObjectOp::new(x, Operation::MulBy(2))]).unwrap();
/// assert_eq!(store.get(x), Value::Int(20));
///
/// // Abort the Inc: Dec alone would give 10, so COMPE must undo the
/// // suffix and replay — Inc·Mul·Div·Dec·Mul = Mul.
/// let report = log.compensate(&mut store, EtId(1)).unwrap().unwrap();
/// assert_eq!(report.strategy, RollbackStrategy::SuffixRollback);
/// assert_eq!(store.get(x), Value::Int(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RecoveryLog {
    records: VecDeque<LogRecord>,
    /// Absolute sequence number of `records[0]`. Pruning the resolved
    /// prefix advances it, so entries in `unresolved` stay valid without
    /// rewriting them.
    base: u64,
    /// Absolute sequence numbers of each ET's unresolved records, oldest
    /// first. Lets [`RecoveryLog::commit`] and
    /// [`RecoveryLog::compensate`] locate their target without scanning
    /// the whole window — the scan made a commit storm over a deep log
    /// quadratic.
    unresolved: FastIdMap<EtId, Vec<u64>>,
    /// Count of unresolved records, kept so [`RecoveryLog::at_risk`] is
    /// O(1) on the delivery hot path.
    at_risk_count: usize,
}

impl RecoveryLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a log from a dumped record window (oldest first), as
    /// produced by iterating [`RecoveryLog::records`] — the checkpoint
    /// restore path. The absolute base restarts at zero (the pruned
    /// prefix is gone, which is exactly what makes the checkpoint
    /// smaller than history); the unresolved index and at-risk count
    /// are rebuilt from the records' resolution flags.
    pub fn from_records(records: Vec<LogRecord>) -> Self {
        let mut log = Self {
            records: records.into(),
            base: 0,
            unresolved: FastIdMap::default(),
            at_risk_count: 0,
        };
        for (i, rec) in log.records.iter().enumerate() {
            if !rec.resolved {
                log.unresolved.entry(rec.et).or_default().push(i as u64);
                log.at_risk_count += 1;
            }
        }
        log
    }

    /// Applies an MSet to `store`, recording before-images. On error the
    /// already-applied prefix is rolled back and nothing is logged.
    pub fn apply_mset(
        &mut self,
        store: &mut ObjectStore,
        et: EtId,
        ops: &[ObjectOp],
    ) -> CoreResult<()> {
        self.apply_internal(store, et, ops, false)
    }

    /// Applies a batch of MSets in delivery order, reserving log storage
    /// up front. One record is kept **per MSet** — compensation targets
    /// individual ETs, so batching must not merge records. Each MSet
    /// keeps [`RecoveryLog::apply_mset`]'s error semantics; a failing
    /// MSet stops the batch with earlier MSets applied and logged,
    /// exactly like sequential delivery.
    pub fn apply_msets<'a>(
        &mut self,
        store: &mut ObjectStore,
        msets: impl IntoIterator<Item = (EtId, &'a [ObjectOp])>,
    ) -> CoreResult<()> {
        let msets = msets.into_iter();
        self.records.reserve(msets.size_hint().0);
        for (et, ops) in msets {
            self.apply_internal(store, et, ops, false)?;
        }
        Ok(())
    }

    fn apply_internal(
        &mut self,
        store: &mut ObjectStore,
        et: EtId,
        ops: &[ObjectOp],
        resolved: bool,
    ) -> CoreResult<()> {
        let mut applied = Vec::with_capacity(ops.len());
        for op in ops {
            let before = store.get(op.object);
            match store.apply(op) {
                Ok(_) => applied.push(AppliedOp {
                    op: op.clone(),
                    before,
                }),
                Err(e) => {
                    for a in applied.iter().rev() {
                        store.put(a.op.object, a.before.clone());
                    }
                    return Err(e);
                }
            }
        }
        if !resolved {
            let abs = self.base + self.records.len() as u64;
            self.unresolved.entry(et).or_default().push(abs);
            self.at_risk_count += 1;
        }
        self.records.push_back(LogRecord {
            et,
            ops: applied,
            resolved,
        });
        Ok(())
    }

    /// Drops one unresolved-index entry (the record at absolute position
    /// `abs`) when that record resolves or is drained.
    fn remove_unresolved(&mut self, et: EtId, abs: u64) {
        if let Some(idxs) = self.unresolved.get_mut(&et) {
            let before = idxs.len();
            idxs.retain(|&a| a != abs);
            self.at_risk_count -= before - idxs.len();
            if idxs.is_empty() {
                self.unresolved.remove(&et);
            }
        }
    }

    /// Records currently in the log window (including resolved records
    /// retained for rollback fidelity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log window is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of MSets still at risk of rollback.
    pub fn at_risk(&self) -> usize {
        self.at_risk_count
    }

    /// The logged records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &LogRecord> {
        self.records.iter()
    }

    /// The at-risk (unresolved) records, oldest first.
    pub fn at_risk_records(&self) -> impl Iterator<Item = &LogRecord> {
        self.records.iter().filter(|r| !r.resolved)
    }

    /// Drops the fully-resolved prefix — "the COMPE replica control
    /// method must remember the executed MSets until there is no risk of
    /// rollback", and a resolved prefix carries no such risk.
    fn prune(&mut self) {
        while self.records.front().is_some_and(|r| r.resolved) {
            self.records.pop_front();
            self.base += 1;
        }
    }

    /// Marks an ET's MSet as globally committed. Returns `true` if a
    /// record changed state.
    pub fn commit(&mut self, et: EtId) -> bool {
        let Some(idxs) = self.unresolved.remove(&et) else {
            return false;
        };
        let changed = !idxs.is_empty();
        for abs in idxs {
            let i = (abs - self.base) as usize;
            self.records[i].resolved = true;
            self.at_risk_count -= 1;
        }
        self.prune();
        changed
    }

    /// Compensates the at-risk MSet of `et` against `store` and resolves
    /// it.
    ///
    /// Picks the cheap commutative path when every logged operation after
    /// the target commutes with every operation of the target **and** the
    /// target's operations all have exact compensations; otherwise
    /// performs a full suffix rollback via before-images and replays the
    /// survivors.
    ///
    /// Returns `None` when `et` has no at-risk record (e.g. it already
    /// committed).
    pub fn compensate(
        &mut self,
        store: &mut ObjectStore,
        et: EtId,
    ) -> Option<CoreResult<RollbackReport>> {
        let abs = *self.unresolved.get(&et)?.first()?;
        let idx = (abs - self.base) as usize;
        Some(self.compensate_at(store, idx))
    }

    #[expect(clippy::expect_used, reason = "only self-compensatable writes are logged, checked at append time")]
    fn compensate_at(
        &mut self,
        store: &mut ObjectStore,
        idx: usize,
    ) -> CoreResult<RollbackReport> {
        let cheap = {
            let target = &self.records[idx];
            let self_compensatable = target
                .ops
                .iter()
                .all(|a| !a.op.op.is_write() || a.op.op.compensation().is_some());
            let suffix_commutes = self.records.range(idx + 1..).all(|later| {
                later.ops.iter().all(|l| {
                    target
                        .ops
                        .iter()
                        .all(|t| !l.op.conflicts_with(&t.op))
                })
            });
            self_compensatable && suffix_commutes
        };

        if cheap {
            // Apply the compensation MSet at the end of the log, in
            // reverse operation order — and *log it*, so that a later
            // suffix rollback replays it faithfully.
            let et = self.records[idx].et;
            let comp_ops: Vec<ObjectOp> = self.records[idx]
                .ops
                .iter()
                .rev()
                .filter(|a| a.op.op.is_write())
                .map(|a| {
                    ObjectOp::new(
                        a.op.object,
                        a.op
                            .op
                            .compensation()
                            .expect("checked self_compensatable above"),
                    )
                })
                .collect();
            let undone = comp_ops.len();
            self.records[idx].resolved = true;
            self.remove_unresolved(et, self.base + idx as u64);
            self.apply_internal(store, et, &comp_ops, true)?;
            self.prune();
            return Ok(RollbackReport {
                strategy: RollbackStrategy::CommutativeCompensation,
                ops_undone: undone,
                ops_replayed: 0,
            });
        }

        // Full suffix rollback: undo everything from the end down to and
        // including the target, via before-images (sound because the log
        // records every state change since the oldest at-risk record)...
        let mut undone = 0;
        for rec in self.records.range(idx..).rev() {
            for a in rec.ops.iter().rev() {
                if a.op.op.is_write() {
                    store.put(a.op.object, a.before.clone());
                    undone += 1;
                }
            }
        }
        // ...drop the target, then replay the survivors in order,
        // re-recording fresh before-images and preserving their
        // resolution status.
        let cut = self.base + idx as u64;
        let suffix: Vec<LogRecord> = self.records.drain(idx..).collect();
        for (k, rec) in suffix.iter().enumerate() {
            if !rec.resolved {
                self.remove_unresolved(rec.et, cut + k as u64);
            }
        }
        let mut replayed = 0;
        for rec in suffix.into_iter().skip(1) {
            let resolved = rec.resolved;
            let et = rec.et;
            let ops: Vec<ObjectOp> = rec.ops.into_iter().map(|a| a.op).collect();
            replayed += ops.iter().filter(|o| o.op.is_write()).count();
            self.apply_internal(store, et, &ops, resolved)?;
        }
        self.prune();
        Ok(RollbackReport {
            strategy: RollbackStrategy::SuffixRollback,
            ops_undone: undone,
            ops_replayed: replayed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esr_core::ids::ObjectId;
    use esr_core::op::Operation;

    const X: ObjectId = ObjectId(0);
    const Y: ObjectId = ObjectId(1);

    fn op(obj: ObjectId, o: Operation) -> ObjectOp {
        ObjectOp::new(obj, o)
    }

    #[test]
    fn apply_records_before_images() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(10))])
            .unwrap();
        assert_eq!(store.get(X), Value::Int(10));
        assert_eq!(log.at_risk(), 1);
        let first = log.records().next().unwrap();
        assert_eq!(first.ops[0].before, Value::Int(0));
        assert!(!first.resolved);
    }

    #[test]
    fn failed_apply_rolls_back_prefix_and_logs_nothing() {
        let mut store = ObjectStore::new();
        store.put(Y, Value::from("text"));
        let mut log = RecoveryLog::new();
        let err = log.apply_mset(
            &mut store,
            EtId(1),
            &[op(X, Operation::Incr(5)), op(Y, Operation::Incr(1))],
        );
        assert!(err.is_err());
        assert_eq!(store.get(X), Value::Int(0), "prefix undone");
        assert!(log.is_empty());
    }

    #[test]
    fn batch_apply_keeps_per_et_records_compensatable() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        let m1 = [op(X, Operation::Incr(10))];
        let m2 = [op(X, Operation::Incr(5))];
        let m3 = [op(Y, Operation::Incr(1))];
        log.apply_msets(
            &mut store,
            [(EtId(1), &m1[..]), (EtId(2), &m2[..]), (EtId(3), &m3[..])],
        )
        .unwrap();
        assert_eq!(log.len(), 3, "one record per MSet");
        assert_eq!(store.get(X), Value::Int(15));
        // A batched ET can still be aborted individually.
        log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(store.get(X), Value::Int(5));
        assert_eq!(store.get(Y), Value::Int(1));
    }

    #[test]
    fn batch_apply_error_keeps_earlier_msets() {
        let mut store = ObjectStore::new();
        store.put(Y, Value::from("text"));
        let mut log = RecoveryLog::new();
        let m1 = [op(X, Operation::Incr(10))];
        let m2 = [op(Y, Operation::Incr(1))];
        let err = log.apply_msets(&mut store, [(EtId(1), &m1[..]), (EtId(2), &m2[..])]);
        assert!(err.is_err());
        assert_eq!(store.get(X), Value::Int(10), "earlier MSet stays applied");
        assert_eq!(log.len(), 1, "only the failing MSet is unlogged");
    }

    #[test]
    fn commit_resolves_and_prunes() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(1))])
            .unwrap();
        assert!(log.commit(EtId(1)));
        assert!(!log.commit(EtId(1)), "second commit is a no-op");
        assert!(log.is_empty(), "resolved prefix is pruned");
    }

    #[test]
    fn committed_suffix_is_retained_until_prefix_resolves() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(1))])
            .unwrap();
        log.apply_mset(&mut store, EtId(2), &[op(X, Operation::MulBy(2))])
            .unwrap();
        log.commit(EtId(2));
        assert_eq!(log.at_risk(), 1);
        assert_eq!(log.len(), 2, "ET2 stays for rollback fidelity");
        log.commit(EtId(1));
        assert!(log.is_empty(), "whole prefix resolved, all pruned");
    }

    #[test]
    fn commutative_compensation_fast_path() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(10))])
            .unwrap();
        log.apply_mset(&mut store, EtId(2), &[op(X, Operation::Incr(5))])
            .unwrap();
        assert_eq!(store.get(X), Value::Int(15));
        let report = log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(report.strategy, RollbackStrategy::CommutativeCompensation);
        assert_eq!(report.ops_undone, 1);
        assert_eq!(report.ops_replayed, 0);
        assert_eq!(store.get(X), Value::Int(5), "only ET2's effect remains");
        assert_eq!(log.at_risk(), 1);
    }

    #[test]
    fn paper_inc_mul_example_requires_suffix_rollback() {
        // Inc(x,10) · Mul(x,2), abort the Inc:
        // naive Dec(x,10) would give (0+10)*2-10 = 10, not Mul(x,2) = 0.
        // COMPE must undo the Mul, skip the Inc, replay the Mul.
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(10))])
            .unwrap();
        log.apply_mset(&mut store, EtId(2), &[op(X, Operation::MulBy(2))])
            .unwrap();
        assert_eq!(store.get(X), Value::Int(20));
        let report = log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(report.strategy, RollbackStrategy::SuffixRollback);
        assert_eq!(report.ops_undone, 2);
        assert_eq!(report.ops_replayed, 1);
        assert_eq!(store.get(X), Value::Int(0), "result equals Mul(x,2) alone");
        assert_eq!(log.at_risk(), 1, "the replayed Mul is re-logged at risk");
    }

    #[test]
    fn suffix_rollback_replay_preserves_later_effects() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(3))])
            .unwrap();
        log.apply_mset(&mut store, EtId(2), &[op(X, Operation::MulBy(2))])
            .unwrap();
        log.apply_mset(&mut store, EtId(3), &[op(X, Operation::Incr(4))])
            .unwrap();
        // state = (0+3)*2+4 = 10. Abort ET1 → should be 0*2+4 = 4.
        let report = log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(report.strategy, RollbackStrategy::SuffixRollback);
        assert_eq!(store.get(X), Value::Int(4));
        assert_eq!(log.at_risk(), 2);
    }

    #[test]
    fn write_ops_are_undone_via_before_images() {
        let mut store = ObjectStore::new();
        store.put(X, Value::Int(7));
        let mut log = RecoveryLog::new();
        log.apply_mset(
            &mut store,
            EtId(1),
            &[op(X, Operation::Write(Value::Int(100)))],
        )
        .unwrap();
        log.apply_mset(&mut store, EtId(2), &[op(X, Operation::Incr(1))])
            .unwrap();
        // Write has no algebraic compensation → suffix rollback.
        let report = log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(report.strategy, RollbackStrategy::SuffixRollback);
        assert_eq!(store.get(X), Value::Int(8), "7 restored, then +1 replayed");
    }

    #[test]
    fn compensating_unknown_et_returns_none() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        assert!(log.compensate(&mut store, EtId(9)).is_none());
        // Committed records can't be compensated either.
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(1))])
            .unwrap();
        log.commit(EtId(1));
        assert!(log.compensate(&mut store, EtId(1)).is_none());
    }

    #[test]
    fn disjoint_objects_take_fast_path() {
        // Later MSet touches a different object: no conflict, cheap path.
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::MulBy(3))])
            .unwrap();
        log.apply_mset(&mut store, EtId(2), &[op(Y, Operation::Incr(5))])
            .unwrap();
        let report = log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(report.strategy, RollbackStrategy::CommutativeCompensation);
        assert_eq!(store.get(Y), Value::Int(5));
    }

    #[test]
    fn multiple_aborts_compose() {
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        for (et, n) in [(1u64, 10i64), (2, 20), (3, 30)] {
            log.apply_mset(&mut store, EtId(et), &[op(X, Operation::Incr(n))])
                .unwrap();
        }
        assert_eq!(store.get(X), Value::Int(60));
        log.compensate(&mut store, EtId(2)).unwrap().unwrap();
        log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(store.get(X), Value::Int(30), "only ET3 survives");
        assert_eq!(log.at_risk(), 1);
    }

    #[test]
    fn fast_path_compensation_survives_later_suffix_rollback() {
        // The regression behind the faithful-history design: ET1 is
        // compensated via the fast path (its Dec is applied and logged);
        // a later *suffix* rollback of ET2 must not resurrect ET1's
        // effect through stale before-images.
        let mut store = ObjectStore::new();
        let mut log = RecoveryLog::new();
        log.apply_mset(&mut store, EtId(1), &[op(X, Operation::Incr(6))])
            .unwrap();
        log.apply_mset(&mut store, EtId(2), &[op(X, Operation::Incr(7))])
            .unwrap();
        // Fast-path abort of ET1: x = 13 - 6 = 7.
        let r1 = log.compensate(&mut store, EtId(1)).unwrap().unwrap();
        assert_eq!(r1.strategy, RollbackStrategy::CommutativeCompensation);
        assert_eq!(store.get(X), Value::Int(7));
        // Now a Mul lands and ET2 aborts: the suffix rollback walks back
        // through the *logged* Dec(6), keeping history consistent.
        log.apply_mset(&mut store, EtId(3), &[op(X, Operation::MulBy(2))])
            .unwrap();
        assert_eq!(store.get(X), Value::Int(14));
        let r2 = log.compensate(&mut store, EtId(2)).unwrap().unwrap();
        assert_eq!(r2.strategy, RollbackStrategy::SuffixRollback);
        // Surviving history: Inc(6) · Dec(6) · Mul(2) = 0.
        assert_eq!(store.get(X), Value::Int(0));
        log.commit(EtId(3));
        assert_eq!(log.at_risk(), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn randomized_aborts_match_committed_only_oracle() {
        // End-to-end soundness: random Inc/Mul streams with interleaved
        // commits and aborts always end at the committed-only state.
        use esr_sim_free_rng::SmallRng;
        // No external RNG dependency here: a tiny LCG suffices.
        mod esr_sim_free_rng {
            pub struct SmallRng(pub u64);
            impl SmallRng {
                pub fn next(&mut self) -> u64 {
                    self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    self.0 >> 33
                }
            }
        }
        for seed in 0..200u64 {
            let mut rng = SmallRng(seed + 1);
            let n = 4 + (rng.next() % 8) as usize;
            let ops: Vec<Operation> = (0..n)
                .map(|_| {
                    if rng.next() % 100 < 40 {
                        Operation::MulBy(1 + (rng.next() % 3) as i64)
                    } else {
                        Operation::Incr(1 + (rng.next() % 10) as i64)
                    }
                })
                .collect();
            let commits: Vec<bool> = (0..n).map(|_| rng.next() % 100 < 60).collect();

            let mut store = ObjectStore::new();
            let mut log = RecoveryLog::new();
            let mut pending = std::collections::VecDeque::new();
            for (i, o) in ops.iter().enumerate() {
                log.apply_mset(&mut store, EtId(i as u64), &[op(X, o.clone())])
                    .unwrap();
                pending.push_back(i);
                if i >= 2 {
                    let j = pending.pop_front().unwrap();
                    if commits[j] {
                        log.commit(EtId(j as u64));
                    } else {
                        log.compensate(&mut store, EtId(j as u64)).unwrap().unwrap();
                    }
                }
            }
            for j in pending {
                if commits[j] {
                    log.commit(EtId(j as u64));
                } else {
                    log.compensate(&mut store, EtId(j as u64)).unwrap().unwrap();
                }
            }

            let mut oracle = ObjectStore::new();
            for (o, &committed) in ops.iter().zip(commits.iter()) {
                if committed {
                    oracle.apply(&op(X, o.clone())).unwrap();
                }
            }
            assert_eq!(
                store.get(X),
                oracle.get(X),
                "seed {seed}: ops {:?} commits {:?}",
                ops.iter().map(|o| o.to_string()).collect::<Vec<_>>(),
                commits
            );
            assert_eq!(log.at_risk(), 0, "seed {seed}");
        }
    }
}
