//! # esr-storage — the local site substrate
//!
//! The paper factors local consistency out of replica control: "each
//! site is capable of maintaining local consistency", unprocessed MSets
//! live in *stable queues*, and backward replica control needs an
//! executed-MSet log. This crate supplies those substrates:
//!
//! * [`store`] — single-version object stores, including the
//!   last-writer-wins store for RITU overwrite mode;
//! * [`mvstore`] — the append-only multiversion store with VTNC
//!   visibility (Modular Synchronization) for RITU multiversion mode;
//! * [`stable_queue`] — at-least-once queues with explicit acks, both
//!   in-memory and file-backed with crash recovery;
//! * [`recovery_log`] — before-image logging and the two compensation
//!   strategies of COMPE (commutative fast path, suffix rollback+replay).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod mvstore;
pub mod recovery_log;
pub mod shard;
pub mod snapshot;
pub mod stable_queue;
pub mod store;

pub use mvstore::{MvStore, VersionedRead};
pub use shard::{ShardMap, SHARD_COUNT};
pub use recovery_log::{AppliedOp, LogRecord, RecoveryLog, RollbackReport, RollbackStrategy};
pub use stable_queue::{EntryId, FileQueue, MemQueue, StableQueue};
pub use store::{LwwOutcome, LwwStore, ObjectStore};
