//! The open-loop cluster load driver: YCSB-style read/update traffic
//! against a *live* `esrd` cluster over the client plane.
//!
//! "Open loop" means arrivals are scheduled on a fixed-rate clock
//! before any request is sent: operation `i` is due at
//! `start + i/rate`, whether or not operation `i-1` has completed.
//! Latency is measured from the *scheduled* arrival, not from the
//! moment a worker got around to sending — so a stalled cluster shows
//! up as growing latency instead of being silently absorbed by a
//! slowed-down generator (the coordinated-omission trap that closed
//! loops fall into).
//!
//! The op *plan* (keys, read/update split, origin sites, arrival
//! times) is generated up front from a seed, so two runs with the same
//! config issue the same requests in the same slots regardless of how
//! the worker threads interleave. Only the wall-clock stamps differ.
//! Update submits carry a trace context (`MSet::traced`) so the
//! cluster's span rings attribute per-stage latency to each ET — the
//! bench harness scrapes those for the stage breakdown next to the
//! end-to-end percentiles this driver reports.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use esr_core::ids::{EtId, ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_replica::mset::MSet;
use esr_runtime::RpcClient;
use esr_sim::rng::DetRng;

use crate::gen::{KeyChooser, KeyDist};
use crate::metrics::percentile_per_mille;

/// Configuration for one load-driver run.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of sites in the target cluster (origins round-robin over
    /// the seeded RNG across `0..sites`).
    pub sites: u64,
    /// Object population the key chooser draws from.
    pub objects: u64,
    /// Key distribution (YCSB default: `Zipf(0.99)`).
    pub dist: KeyDist,
    /// Percentage of operations that are queries (0–100); the rest are
    /// COMMU-friendly increment updates.
    pub read_pct: u64,
    /// Target arrival rate, operations per second.
    pub rate_per_sec: u64,
    /// Worker threads draining the arrival schedule.
    pub clients: usize,
    /// Total operations to issue.
    pub total_ops: u64,
    /// First ET id to mint; update `i` uses `et_base + i`. Pick a range
    /// disjoint from any other traffic on the cluster.
    pub et_base: u64,
    /// Epsilon budget handed to each query.
    pub epsilon_limit: u64,
    /// Workload seed: same seed + config → same op plan.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        Self {
            sites: 3,
            objects: 64,
            dist: KeyDist::Zipf(0.99),
            read_pct: 50,
            rate_per_sec: 500,
            clients: 4,
            total_ops: 1000,
            et_base: 1_000_000,
            epsilon_limit: u64::MAX,
            seed: 42,
        }
    }
}

/// One planned operation: what to send, where, and when (micros after
/// the run's start instant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlannedOp {
    /// Submit an increment update as `et` at `site`.
    Update {
        /// Offset from the run start when this op is due.
        due_us: u64,
        /// Origin site to submit at.
        site: SiteId,
        /// ET id to mint.
        et: EtId,
        /// Target object.
        object: ObjectId,
        /// Increment amount.
        delta: i64,
    },
    /// Run a single-key query at `site`.
    Read {
        /// Offset from the run start when this op is due.
        due_us: u64,
        /// Site to query.
        site: SiteId,
        /// Key to read.
        object: ObjectId,
    },
}

impl PlannedOp {
    fn due_us(&self) -> u64 {
        match self {
            PlannedOp::Update { due_us, .. } | PlannedOp::Read { due_us, .. } => *due_us,
        }
    }

    fn site(&self) -> SiteId {
        match self {
            PlannedOp::Update { site, .. } | PlannedOp::Read { site, .. } => *site,
        }
    }
}

/// Latency percentiles over one operation class, in microseconds from
/// the scheduled arrival to the reply.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Completed operations of this class.
    pub count: u64,
    /// Mean.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// 99.9th percentile.
    pub p999_us: u64,
    /// Worst observed.
    pub max_us: u64,
}

impl LatencySummary {
    /// Summarizes a latency sample set (unsorted, microseconds).
    pub fn of(samples: &mut [u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        samples.sort_unstable();
        let total: u128 = samples.iter().map(|&v| v as u128).sum();
        Self {
            count: samples.len() as u64,
            mean_us: (total / samples.len() as u128) as u64,
            p50_us: percentile_per_mille(samples, 500),
            p99_us: percentile_per_mille(samples, 990),
            p999_us: percentile_per_mille(samples, 999),
            max_us: samples[samples.len() - 1],
        }
    }
}

/// The driver's end-of-run report.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Operations attempted (the whole plan).
    pub issued: u64,
    /// Operations that returned an error (connect or RPC failure).
    pub errors: u64,
    /// Wall time from first scheduled arrival to last reply.
    pub elapsed_us: u64,
    /// Completed ops per second over `elapsed_us`.
    pub achieved_rate: f64,
    /// Update-path latency.
    pub update: LatencySummary,
    /// Query-path latency.
    pub read: LatencySummary,
    /// ETs this run minted (for span scraping afterwards).
    pub ets: Vec<EtId>,
}

/// Generates the deterministic op plan for `cfg`: one entry per
/// operation, ordered by due time.
pub fn plan(cfg: &DriverConfig) -> Vec<PlannedOp> {
    let mut rng = DetRng::new(cfg.seed);
    let keys = KeyChooser::new(cfg.objects, cfg.dist);
    let mut ops = Vec::with_capacity(cfg.total_ops as usize);
    for i in 0..cfg.total_ops {
        let due_us = i.saturating_mul(1_000_000) / cfg.rate_per_sec.max(1);
        let site = SiteId(rng.below(cfg.sites));
        let object = keys.pick(&mut rng);
        if rng.below(100) < cfg.read_pct {
            ops.push(PlannedOp::Read {
                due_us,
                site,
                object,
            });
        } else {
            ops.push(PlannedOp::Update {
                due_us,
                site,
                et: EtId(cfg.et_base + i),
                object,
                delta: 1 + rng.below(10) as i64,
            });
        }
    }
    ops
}

fn wall_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// A worker's connection cache: one client-plane socket per site,
/// re-dialed after any error (a daemon restart republishes its address
/// file, so a stale cached connection must not wedge the run).
struct SiteClients<'a> {
    dir: &'a Path,
    conns: BTreeMap<SiteId, RpcClient>,
}

impl SiteClients<'_> {
    fn with<T>(
        &mut self,
        site: SiteId,
        f: impl FnOnce(&mut RpcClient) -> io::Result<T>,
    ) -> io::Result<T> {
        if !self.conns.contains_key(&site) {
            let c = RpcClient::connect_dir(self.dir, site, Duration::from_secs(5))?;
            self.conns.insert(site, c);
        }
        let conn = self
            .conns
            .get_mut(&site)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "connection cache"))?;
        let out = f(conn);
        if out.is_err() {
            self.conns.remove(&site);
        }
        out
    }
}

/// Runs the load against the cluster whose address files live under
/// `dir`. Blocks until every planned op has been issued and answered
/// (or failed).
pub fn run(dir: &Path, cfg: &DriverConfig) -> io::Result<LoadReport> {
    let ops = plan(cfg);
    let ets: Vec<EtId> = ops
        .iter()
        .filter_map(|op| match op {
            PlannedOp::Update { et, .. } => Some(*et),
            PlannedOp::Read { .. } => None,
        })
        .collect();

    let cursor = AtomicU64::new(0);
    let start = Instant::now();
    let workers = cfg.clients.max(1);

    // Each worker returns (update latencies, read latencies, errors);
    // thread panics surface as an error rather than a poisoned join.
    let results: Vec<(Vec<u64>, Vec<u64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let ops = &ops;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut clients = SiteClients {
                        dir,
                        conns: BTreeMap::new(),
                    };
                    let mut updates = Vec::new();
                    let mut reads = Vec::new();
                    let mut errors = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                        let Some(op) = ops.get(i) else { break };
                        let due = Duration::from_micros(op.due_us());
                        // Open loop: wait for the scheduled arrival.
                        // (Never pull the slot early; running late is
                        // the cluster's problem and shows as latency.)
                        if let Some(wait) = due.checked_sub(start.elapsed()) {
                            if !wait.is_zero() {
                                std::thread::sleep(wait);
                            }
                        }
                        let outcome = match op {
                            PlannedOp::Update {
                                et, object, delta, ..
                            } => clients.with(op.site(), |c| {
                                let mset = MSet::new(
                                    *et,
                                    op.site(),
                                    vec![ObjectOp::new(*object, Operation::Incr(*delta))],
                                )
                                .traced(wall_micros());
                                c.submit(mset).map(|_| ())
                            }),
                            PlannedOp::Read { object, .. } => clients.with(op.site(), |c| {
                                c.query(&[*object], cfg.epsilon_limit).map(|_| ())
                            }),
                        };
                        match outcome {
                            Ok(()) => {
                                let lat = start
                                    .elapsed()
                                    .saturating_sub(due)
                                    .as_micros() as u64;
                                match op {
                                    PlannedOp::Update { .. } => updates.push(lat),
                                    PlannedOp::Read { .. } => reads.push(lat),
                                }
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    (updates, reads, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or((Vec::new(), Vec::new(), 1)))
            .collect()
    });

    let elapsed_us = start.elapsed().as_micros() as u64;
    let mut updates = Vec::new();
    let mut reads = Vec::new();
    let mut errors = 0u64;
    for (u, r, e) in results {
        updates.extend(u);
        reads.extend(r);
        errors += e;
    }
    let completed = (updates.len() + reads.len()) as u64;
    Ok(LoadReport {
        issued: cfg.total_ops,
        errors,
        elapsed_us,
        achieved_rate: if elapsed_us == 0 {
            0.0
        } else {
            completed as f64 * 1_000_000.0 / elapsed_us as f64
        },
        update: LatencySummary::of(&mut updates),
        read: LatencySummary::of(&mut reads),
        ets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DriverConfig {
        DriverConfig {
            total_ops: 200,
            rate_per_sec: 1000,
            read_pct: 30,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn plan_is_deterministic_and_rate_paced() {
        let a = plan(&cfg());
        let b = plan(&cfg());
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        // Arrival offsets follow the open-loop schedule i/rate exactly.
        for (i, op) in a.iter().enumerate() {
            assert_eq!(op.due_us(), i as u64 * 1000);
        }
    }

    #[test]
    fn plan_respects_mix_and_mints_disjoint_ets() {
        let ops = plan(&cfg());
        let reads = ops
            .iter()
            .filter(|o| matches!(o, PlannedOp::Read { .. }))
            .count();
        assert!((30..=90).contains(&reads), "got {reads} reads of 200");
        let mut ets: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                PlannedOp::Update { et, .. } => Some(et.raw()),
                PlannedOp::Read { .. } => None,
            })
            .collect();
        let n = ets.len();
        ets.sort_unstable();
        ets.dedup();
        assert_eq!(ets.len(), n, "duplicate ETs in the plan");
        assert!(ets.iter().all(|&e| e >= cfg().et_base));
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut samples: Vec<u64> = (1..=1000).rev().collect();
        let s = LatencySummary::of(&mut samples);
        assert_eq!(s.count, 1000);
        assert_eq!(s.p50_us, 500);
        assert_eq!(s.p99_us, 990);
        assert_eq!(s.p999_us, 999);
        assert_eq!(s.max_us, 1000);
        assert_eq!(LatencySummary::of(&mut []), LatencySummary::default());
    }
}
