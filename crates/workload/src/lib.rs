//! # esr-workload — workloads, metrics, and the experiment suite
//!
//! Synthetic workload generation (uniform/Zipf key choice, operation
//! mixes, exponential think times), metric summaries, and the drivers
//! for every experiment in EXPERIMENTS.md: Table 1 regeneration plus
//! E4–E10. The `esr-bench` harness binary prints the tables these
//! drivers produce; the integration tests assert the claims on
//! test-sized parameters.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod driver;
pub mod exp;
pub mod gen;
pub mod metrics;

pub use driver::{DriverConfig, LatencySummary, LoadReport};
pub use gen::{KeyChooser, KeyDist, UpdateMix, WorkloadGen};
pub use metrics::{percentile_per_mille, throughput, CountSummary, DurationSummary};
