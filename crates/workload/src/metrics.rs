//! Metric summaries for experiment reporting.

use esr_sim::time::Duration;

/// A summary of a set of duration samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurationSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean, in microseconds.
    pub mean_us: u64,
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Maximum.
    pub max_us: u64,
}

impl DurationSummary {
    /// Summarizes samples (order irrelevant). Zero samples → all-zero
    /// summary.
    pub fn of(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut us: Vec<u64> = samples.iter().map(|d| d.as_micros()).collect();
        us.sort_unstable();
        let total: u128 = us.iter().map(|&v| v as u128).sum();
        Self {
            count: us.len(),
            mean_us: (total / us.len() as u128) as u64,
            p50_us: percentile(&us, 50),
            p95_us: percentile(&us, 95),
            p99_us: percentile(&us, 99),
            max_us: *us.last().expect("non-empty"),
        }
    }

    /// Mean in milliseconds, for human-readable tables.
    pub fn mean_ms(&self) -> f64 {
        self.mean_us as f64 / 1_000.0
    }
}

/// The `p`-th percentile (nearest-rank) of an ascending-sorted slice.
pub fn percentile(sorted_us: &[u64], p: u64) -> u64 {
    assert!(!sorted_us.is_empty());
    assert!(p <= 100);
    let rank = (p as usize * sorted_us.len()).div_ceil(100);
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)]
}

/// Nearest-rank percentile with per-mille resolution (`p999` = 999), so
/// tail quantiles finer than 1% are expressible. Same convention as
/// [`percentile`]: `percentile_per_mille(v, 500)` == `percentile(v, 50)`.
pub fn percentile_per_mille(sorted_us: &[u64], p: u64) -> u64 {
    assert!(!sorted_us.is_empty());
    assert!(p <= 1000);
    let rank = (p as usize * sorted_us.len()).div_ceil(1000);
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)]
}

/// Summary of integer samples (counts, charges, errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CountSummary {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples.
    pub total: u64,
    /// Mean (rounded down).
    pub mean: u64,
    /// Maximum sample.
    pub max: u64,
}

impl CountSummary {
    /// Summarizes samples.
    pub fn of(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let total: u64 = samples.iter().sum();
        Self {
            count: samples.len(),
            total,
            mean: total / samples.len() as u64,
            max: *samples.iter().max().expect("non-empty"),
        }
    }
}

/// Throughput in operations per (virtual) second.
pub fn throughput(ops: u64, elapsed: Duration) -> f64 {
    if elapsed == Duration::ZERO {
        return 0.0;
    }
    ops as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = DurationSummary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_us, 0);
        assert_eq!(CountSummary::of(&[]), CountSummary::default());
    }

    #[test]
    fn summary_statistics() {
        let samples: Vec<Duration> = (1..=100).map(d).collect();
        let s = DurationSummary::of(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.mean_us, 50_500);
        assert_eq!(s.p50_us, 50_000);
        assert_eq!(s.p95_us, 95_000);
        assert_eq!(s.p99_us, 99_000);
        assert_eq!(s.max_us, 100_000);
        assert!((s.mean_ms() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_is_order_independent() {
        let a = DurationSummary::of(&[d(3), d(1), d(2)]);
        let b = DurationSummary::of(&[d(1), d(2), d(3)]);
        assert_eq!(a, b);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![10, 20, 30, 40];
        assert_eq!(percentile(&v, 1), 10);
        assert_eq!(percentile(&v, 25), 10);
        assert_eq!(percentile(&v, 26), 20);
        assert_eq!(percentile(&v, 100), 40);
        assert_eq!(percentile(&v, 0), 10);
    }

    #[test]
    fn count_summary() {
        let s = CountSummary::of(&[1, 2, 3, 10]);
        assert_eq!(s.total, 16);
        assert_eq!(s.mean, 4);
        assert_eq!(s.max, 10);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn throughput_math() {
        assert_eq!(throughput(100, Duration::from_secs(2)), 50.0);
        assert_eq!(throughput(5, Duration::ZERO), 0.0);
    }
}
