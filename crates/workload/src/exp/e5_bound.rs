//! E5 — the divergence-control charge bounds the true query error.
//!
//! §2.1–§2.2: "the overlap is an upper bound of error on the amount of
//! inconsistency that a query ET may accumulate." Each method's
//! divergence control computes a *charge* when a query runs; the *true
//! error* is the number of update ETs whose disposition at the queried
//! replica disagrees with the global outcome at that instant
//! ([`SimCluster::divergent_updates`]). This experiment probes queries at
//! random points of a chaotic run (loss, duplication, reordering) and
//! verifies `error ≤ charge` for every probe.

use esr_core::divergence::EpsilonSpec;
use esr_core::ids::SiteId;
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_sim::time::Duration;

use crate::gen::{KeyDist, UpdateMix, WorkloadGen};
use crate::metrics::CountSummary;

/// Parameters for the bound check.
#[derive(Debug, Clone)]
pub struct E5Params {
    /// Methods to probe.
    pub methods: Vec<Method>,
    /// Replica count.
    pub sites: usize,
    /// Objects.
    pub objects: u64,
    /// Updates per probe interval.
    pub updates_per_probe: usize,
    /// Number of query probes.
    pub probes: usize,
    /// Events processed between submit burst and probe (exposes
    /// mid-flight states).
    pub steps_between: usize,
    /// Seed.
    pub seed: u64,
}

impl E5Params {
    /// Test-sized parameters.
    pub fn quick() -> Self {
        Self {
            methods: vec![
                Method::OrdupSeq,
                Method::OrdupLamport,
                Method::Commu,
                Method::RituOverwrite,
                Method::Compe,
            ],
            sites: 4,
            objects: 6,
            updates_per_probe: 3,
            probes: 25,
            steps_between: 2,
            seed: 51,
        }
    }

    /// Full parameters.
    pub fn full() -> Self {
        Self {
            probes: 300,
            ..Self::quick()
        }
    }
}

/// One row of the E5 table.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Method probed.
    pub method: Method,
    /// Number of probes taken.
    pub probes: usize,
    /// True error across probes.
    pub error: CountSummary,
    /// Charge across probes.
    pub charge: CountSummary,
    /// Probes where the true error exceeded the charge (must be 0).
    pub violations: usize,
}

/// Runs the bound check for every configured method.
pub fn run(p: &E5Params) -> Vec<E5Row> {
    p.methods.iter().map(|&m| run_one(p, m)).collect()
}

fn run_one(p: &E5Params, method: Method) -> E5Row {
    let cfg = ClusterConfig::new(method)
        .with_sites(p.sites)
        .with_link(LinkConfig {
            latency: LatencyModel::Uniform(Duration::from_millis(1), Duration::from_millis(60)),
            drop_prob: 0.15,
            duplicate_prob: 0.1,
            bandwidth: None,
        })
        .with_seed(p.seed)
        .with_abort_prob(if method == Method::Compe { 0.3 } else { 0.0 });
    let mut cluster = SimCluster::new(cfg);
    let mix = if method == Method::RituOverwrite {
        UpdateMix::BlindWrites
    } else {
        UpdateMix::Increments
    };
    let mut gen = WorkloadGen::new(
        p.objects,
        KeyDist::Zipf(0.8),
        mix,
        p.sites as u64,
        Duration::from_millis(3),
        p.seed,
    );

    let mut errors = Vec::new();
    let mut charges = Vec::new();
    let mut violations = 0;
    for _ in 0..p.probes {
        for _ in 0..p.updates_per_probe {
            let u = gen.next_update();
            let t = cluster.now() + u.gap;
            cluster.advance_to(t);
            if mix == UpdateMix::BlindWrites {
                cluster.submit_blind_write(
                    SiteId(u.origin_index),
                    u.object,
                    esr_core::Value::Int(u.value),
                );
            } else {
                cluster.submit_update(SiteId(u.origin_index), u.ops);
            }
        }
        for _ in 0..p.steps_between {
            cluster.step();
        }
        let read_set = gen.next_read_set(2);
        let site = SiteId(gen.rng().below(p.sites as u64));
        let error = cluster.divergent_updates(site, &read_set);
        let out = cluster.try_query(site, &read_set, EpsilonSpec::UNBOUNDED);
        assert!(out.admitted, "unbounded queries always admit");
        if error > out.charged {
            violations += 1;
        }
        errors.push(error);
        charges.push(out.charged);
    }
    cluster.run_until_quiescent();
    assert!(cluster.converged());
    E5Row {
        method,
        probes: p.probes,
        error: CountSummary::of(&errors),
        charge: CountSummary::of(&charges),
        violations,
    }
}

/// Renders the table.
pub fn render(p: &E5Params, rows: &[E5Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E5: error-bound check — {} probes/method, {} sites, lossy reordering links\n",
        p.probes, p.sites
    ));
    out.push_str(&format!(
        "{:>9}  {:>7}  {:>10}  {:>9}  {:>11}  {:>10}  {:>10}\n",
        "method", "probes", "err-mean", "err-max", "charge-mean", "charge-max", "violations"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>9}  {:>7}  {:>10}  {:>9}  {:>11}  {:>10}  {:>10}\n",
            r.method.name(),
            r.probes,
            r.error.mean,
            r.error.max,
            r.charge.mean,
            r.charge.max,
            r.violations
        ));
    }
    out
}

/// The bound claim: no probe's true error exceeded its charge.
pub fn claim_holds(rows: &[E5Row]) -> bool {
    rows.iter().all(|r| r.violations == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_holds_for_all_methods() {
        let rows = run(&E5Params::quick());
        for r in &rows {
            assert_eq!(
                r.violations, 0,
                "{}: error exceeded charge (err max {}, charge max {})",
                r.method.name(),
                r.error.max,
                r.charge.max
            );
        }
        assert!(claim_holds(&rows));
    }

    #[test]
    fn probes_actually_observe_inconsistency() {
        // The experiment is vacuous if charges are always zero: confirm
        // mid-flight probes really see in-flight updates.
        let rows = run(&E5Params::quick());
        let total_charge: u64 = rows.iter().map(|r| r.charge.total).sum();
        assert!(total_charge > 0, "no probe ever saw inconsistency");
    }

    #[test]
    fn render_lists_every_method() {
        let p = E5Params::quick();
        let rows = run(&p);
        let s = render(&p, &rows);
        for m in &p.methods {
            assert!(s.contains(m.name()), "missing {}", m.name());
        }
    }
}
