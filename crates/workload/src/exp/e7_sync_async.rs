//! E7 — asynchronous replica control vs synchronous coherency control.
//!
//! §1/§2.4: synchronous methods "decrease system availability and
//! throughput as the size of the system increases" and a commit protocol
//! "is a big handicap when network links have very low bandwidth or
//! moderately high latency." Two sweeps quantify that:
//!
//! * **latency sweep** — fix 4 sites, grow the one-way link latency;
//!   compare the client-visible update latency of COMMU (asynchronous:
//!   local apply, propagation in the background) against 2PC write-all
//!   and weighted-voting quorums;
//! * **size sweep** — fix the link, grow the replica count; additionally
//!   measure conflicting-update throughput (updates to one hot object):
//!   synchronous methods serialize the whole commit protocol per update,
//!   COMMU applies them as fast as they arrive.

use esr_core::ids::{ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_net::faults::PartitionSchedule;
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_replica::quorum::QuorumCluster;
use esr_replica::sync2pc::TwoPcCluster;
use esr_sim::time::{Duration, VirtualTime};

use crate::metrics::DurationSummary;

/// Parameters.
#[derive(Debug, Clone)]
pub struct E7Params {
    /// One-way latencies for the latency sweep.
    pub latencies: Vec<Duration>,
    /// Replica counts for the size sweep.
    pub site_counts: Vec<usize>,
    /// Sites in the latency sweep.
    pub fixed_sites: usize,
    /// Link latency in the size sweep.
    pub fixed_latency: Duration,
    /// Updates per configuration.
    pub updates: usize,
    /// Seed.
    pub seed: u64,
}

impl E7Params {
    /// Test-sized parameters.
    pub fn quick() -> Self {
        Self {
            latencies: vec![Duration::from_millis(1), Duration::from_millis(50)],
            site_counts: vec![2, 8],
            fixed_sites: 4,
            fixed_latency: Duration::from_millis(10),
            updates: 30,
            seed: 71,
        }
    }

    /// Full parameters.
    pub fn full() -> Self {
        Self {
            latencies: [1u64, 5, 10, 25, 50, 100]
                .iter()
                .map(|&ms| Duration::from_millis(ms))
                .collect(),
            site_counts: vec![2, 4, 8, 12, 16],
            updates: 200,
            ..Self::quick()
        }
    }
}

/// One comparison row.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Varied parameter: one-way latency (latency sweep) in ms, or site
    /// count (size sweep).
    pub x: u64,
    /// COMMU client-visible update latency (local apply — effectively
    /// zero; reported for completeness).
    pub commu_client: DurationSummary,
    /// COMMU completion latency (all replicas applied) — background
    /// propagation the client never waits for.
    pub commu_completion: DurationSummary,
    /// 2PC client-visible commit latency.
    pub twopc_commit: DurationSummary,
    /// Quorum write latency.
    pub quorum_write: DurationSummary,
    /// Conflicting-update makespan (size sweep only): virtual time to
    /// finish `updates` updates of one hot object.
    pub hot_makespan_commu_ms: u64,
    /// 2PC hot-object makespan.
    pub hot_makespan_twopc_ms: u64,
}

fn link(latency: Duration) -> LinkConfig {
    LinkConfig::reliable(LatencyModel::Exponential(latency))
}

fn measure(
    sites: usize,
    latency: Duration,
    updates: usize,
    seed: u64,
    measure_hot: bool,
) -> E7Row {
    let gap = Duration::from_millis(5);

    // --- COMMU (asynchronous): submit spread-object updates.
    let cfg = ClusterConfig::new(Method::Commu)
        .with_sites(sites)
        .with_link(link(latency))
        .with_seed(seed);
    let mut commu = SimCluster::new(cfg);
    for i in 0..updates {
        let t = VirtualTime::from_micros((i as u64) * gap.as_micros());
        commu.advance_to(t);
        commu.submit_update(
            SiteId(i as u64 % sites as u64),
            vec![ObjectOp::new(ObjectId(i as u64), Operation::Incr(1))],
        );
    }
    commu.run_until_quiescent();
    assert!(commu.converged());
    let commu_completion = DurationSummary::of(&commu.stats().completion_latencies);
    // Client-visible latency of an async update is the local apply: zero
    // network waits by construction.
    let commu_client = DurationSummary::of(&vec![Duration::ZERO; updates]);

    // --- 2PC write-all.
    let mut twopc = TwoPcCluster::new(sites, link(latency), PartitionSchedule::none(), seed);
    for i in 0..updates {
        let at = VirtualTime::from_micros((i as u64) * gap.as_micros());
        twopc.submit_update(
            SiteId(i as u64 % sites as u64),
            &[ObjectOp::new(ObjectId(i as u64), Operation::Incr(1))],
            at,
        );
    }
    let twopc_commit = DurationSummary::of(twopc.latencies());

    // --- Weighted voting.
    let mut quorum = QuorumCluster::new(sites, link(latency), PartitionSchedule::none(), seed);
    for i in 0..updates {
        let at = VirtualTime::from_micros((i as u64) * gap.as_micros());
        quorum.write(
            SiteId(i as u64 % sites as u64),
            ObjectId(i as u64),
            esr_core::Value::Int(1),
            at,
        );
    }
    let quorum_write = DurationSummary::of(quorum.write_latencies());

    // --- Hot-object conflicting throughput (size sweep).
    let (hot_commu, hot_twopc) = if measure_hot {
        let cfg = ClusterConfig::new(Method::Commu)
            .with_sites(sites)
            .with_link(link(latency))
            .with_seed(seed);
        let mut c = SimCluster::new(cfg);
        for i in 0..updates {
            c.advance_to(VirtualTime::from_micros(i as u64 * 100));
            c.submit_update(
                SiteId(i as u64 % sites as u64),
                vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))],
            );
        }
        let t_commu = c.run_until_quiescent();
        assert!(c.converged());

        let mut t2 = TwoPcCluster::new(sites, link(latency), PartitionSchedule::none(), seed);
        let mut last = VirtualTime::ZERO;
        for i in 0..updates {
            let at = VirtualTime::from_micros(i as u64 * 100);
            let r = t2.submit_update(
                SiteId(i as u64 % sites as u64),
                &[ObjectOp::new(ObjectId(0), Operation::Incr(1))],
                at,
            );
            last = last.max(r.completed);
        }
        (t_commu.as_millis(), last.as_millis())
    } else {
        (0, 0)
    };

    E7Row {
        x: 0,
        commu_client,
        commu_completion,
        twopc_commit,
        quorum_write,
        hot_makespan_commu_ms: hot_commu,
        hot_makespan_twopc_ms: hot_twopc,
    }
}

/// Runs the latency sweep.
pub fn run_latency_sweep(p: &E7Params) -> Vec<E7Row> {
    p.latencies
        .iter()
        .map(|&l| {
            let mut row = measure(p.fixed_sites, l, p.updates, p.seed, false);
            row.x = l.as_micros() / 1_000;
            row
        })
        .collect()
}

/// Runs the size sweep (includes the hot-object makespan).
pub fn run_size_sweep(p: &E7Params) -> Vec<E7Row> {
    p.site_counts
        .iter()
        .map(|&n| {
            let mut row = measure(n, p.fixed_latency, p.updates, p.seed, true);
            row.x = n as u64;
            row
        })
        .collect()
}

/// Renders both sweeps.
pub fn render(p: &E7Params, latency_rows: &[E7Row], size_rows: &[E7Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E7a: update latency vs link latency — {} sites, {} updates each\n",
        p.fixed_sites, p.updates
    ));
    out.push_str(&format!(
        "{:>8}  {:>12}  {:>14}  {:>12}  {:>12}\n",
        "link-ms", "COMMU-client", "COMMU-complete", "2PC-commit", "quorum-write"
    ));
    for r in latency_rows {
        out.push_str(&format!(
            "{:>8}  {:>10}us  {:>12}us  {:>10}us  {:>10}us\n",
            r.x,
            r.commu_client.mean_us,
            r.commu_completion.mean_us,
            r.twopc_commit.mean_us,
            r.quorum_write.mean_us
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "E7b: scaling with replica count — {} links, {} updates each, plus hot-object makespan\n",
        p.fixed_latency, p.updates
    ));
    out.push_str(&format!(
        "{:>6}  {:>14}  {:>12}  {:>12}  {:>12}  {:>12}\n",
        "sites", "COMMU-complete", "2PC-commit", "quorum-write", "hot-COMMU", "hot-2PC"
    ));
    for r in size_rows {
        out.push_str(&format!(
            "{:>6}  {:>12}us  {:>10}us  {:>10}us  {:>10}ms  {:>10}ms\n",
            r.x,
            r.commu_completion.mean_us,
            r.twopc_commit.mean_us,
            r.quorum_write.mean_us,
            r.hot_makespan_commu_ms,
            r.hot_makespan_twopc_ms
        ));
    }
    out
}

/// The paper's claims: the async client never waits on the network, the
/// synchronous commit cost grows with latency, and hot-object throughput
/// under 2PC collapses relative to COMMU.
pub fn claim_holds(latency_rows: &[E7Row], size_rows: &[E7Row]) -> bool {
    let async_free = latency_rows.iter().all(|r| r.commu_client.mean_us == 0);
    let sync_grows = latency_rows
        .windows(2)
        .all(|w| w[0].twopc_commit.mean_us < w[1].twopc_commit.mean_us);
    let hot_gap = size_rows
        .iter()
        .all(|r| r.hot_makespan_twopc_ms > r.hot_makespan_commu_ms);
    async_free && sync_grows && hot_gap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_beats_sync_and_gap_grows_with_latency() {
        let p = E7Params::quick();
        let rows = run_latency_sweep(&p);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.commu_client.mean_us, 0, "async client never waits");
            assert!(
                r.twopc_commit.mean_us > 0,
                "2PC always pays round trips"
            );
            assert!(
                r.quorum_write.mean_us > 0,
                "quorum writes pay round trips"
            );
        }
        // The synchronous penalty grows with link latency.
        assert!(rows[1].twopc_commit.mean_us > rows[0].twopc_commit.mean_us);
        assert!(rows[1].quorum_write.mean_us > rows[0].quorum_write.mean_us);
    }

    #[test]
    fn sync_latency_grows_with_sites_and_hot_object_serializes() {
        let p = E7Params::quick();
        let rows = run_size_sweep(&p);
        assert!(rows[1].twopc_commit.mean_us > rows[0].twopc_commit.mean_us);
        for r in &rows {
            assert!(
                r.hot_makespan_twopc_ms > r.hot_makespan_commu_ms,
                "2PC hot makespan {}ms must exceed COMMU {}ms",
                r.hot_makespan_twopc_ms,
                r.hot_makespan_commu_ms
            );
        }
    }

    #[test]
    fn combined_claims_hold_and_render() {
        let p = E7Params::quick();
        let lat = run_latency_sweep(&p);
        let size = run_size_sweep(&p);
        assert!(claim_holds(&lat, &size));
        let s = render(&p, &lat, &size);
        assert!(s.contains("E7a"));
        assert!(s.contains("E7b"));
        assert!(s.contains("2PC-commit"));
    }
}
