//! E8 — the cost of compensation (COMPE, §4).
//!
//! §4.1's analysis: when everything after the aborted MSet commutes with
//! it, the compensation MSet applies directly (one operation per write);
//! otherwise "we need to undo and redo the entire log" suffix — the
//! `Inc·Mul·Div·Dec·Mul = Mul` example. We sweep the abort rate under a
//! purely commutative mix (distributed cluster) and a conflicting
//! `Inc`/`Mul` mix (single replica, where COMPE is well-defined without
//! an ordering layer), and report how many operations each abort cost.

use esr_core::ids::SiteId;
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_sim::time::Duration;

use crate::gen::{KeyDist, UpdateMix, WorkloadGen};

/// Parameters.
#[derive(Debug, Clone)]
pub struct E8Params {
    /// Abort probabilities to sweep, in percent.
    pub abort_pcts: Vec<u64>,
    /// Updates per configuration.
    pub updates: usize,
    /// Objects.
    pub objects: u64,
    /// Sites for the commutative (distributed) runs.
    pub sites: usize,
    /// Seed.
    pub seed: u64,
}

impl E8Params {
    /// Test-sized parameters.
    pub fn quick() -> Self {
        Self {
            abort_pcts: vec![0, 25, 50],
            updates: 60,
            objects: 4,
            sites: 3,
            seed: 81,
        }
    }

    /// Full parameters.
    pub fn full() -> Self {
        Self {
            abort_pcts: vec![0, 5, 10, 25, 50],
            updates: 400,
            ..Self::quick()
        }
    }
}

/// One row.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Abort probability (percent).
    pub abort_pct: u64,
    /// Operation mix label ("commutative" or "inc+mul").
    pub mix: &'static str,
    /// Sites in the run.
    pub sites: usize,
    /// Aborts decided.
    pub aborts: u64,
    /// Compensations via the commutative fast path.
    pub fast: u64,
    /// Compensations requiring suffix rollback.
    pub suffix: u64,
    /// Operations undone, total.
    pub ops_undone: u64,
    /// Operations replayed, total.
    pub ops_replayed: u64,
}

impl E8Row {
    /// Average operations (undo + replay) spent per abort at one
    /// replica.
    pub fn ops_per_compensation(&self) -> f64 {
        let comps = self.fast + self.suffix;
        if comps == 0 {
            return 0.0;
        }
        (self.ops_undone + self.ops_replayed) as f64 / comps as f64
    }
}

fn run_one(p: &E8Params, abort_pct: u64, mix: UpdateMix, sites: usize) -> E8Row {
    let cfg = ClusterConfig::new(Method::Compe)
        .with_sites(sites)
        .with_link(LinkConfig::reliable(LatencyModel::Uniform(
            Duration::from_millis(1),
            Duration::from_millis(20),
        )))
        .with_seed(p.seed)
        .with_abort_prob(abort_pct as f64 / 100.0);
    let mut cluster = SimCluster::new(cfg);
    let mut gen = WorkloadGen::new(
        p.objects,
        KeyDist::Uniform,
        mix,
        sites as u64,
        Duration::from_millis(2),
        p.seed,
    );
    for _ in 0..p.updates {
        let u = gen.next_update();
        let t = cluster.now() + u.gap;
        cluster.advance_to(t);
        cluster.submit_update(SiteId(u.origin_index), u.ops);
    }
    cluster.run_until_quiescent();
    assert!(cluster.converged(), "COMPE run diverged");
    assert!(
        cluster.matches_oracle(),
        "COMPE final state must equal the committed-only oracle"
    );
    let s = cluster.stats();
    E8Row {
        abort_pct,
        mix: match mix {
            UpdateMix::Increments => "commutative",
            _ => "inc+mul",
        },
        sites,
        aborts: s.aborts,
        fast: s.fast_compensations,
        suffix: s.suffix_rollbacks,
        ops_undone: s.ops_undone,
        ops_replayed: s.ops_replayed,
    }
}

/// Runs both mixes across the abort sweep.
pub fn run(p: &E8Params) -> Vec<E8Row> {
    let mut rows = Vec::new();
    for &pct in &p.abort_pcts {
        rows.push(run_one(p, pct, UpdateMix::Increments, p.sites));
    }
    for &pct in &p.abort_pcts {
        // Conflicting mixes need an ordering layer for multi-replica
        // convergence (the paper treats method combinations as out of
        // scope), so the inc+mul runs use a single replica to isolate
        // pure compensation cost.
        rows.push(run_one(p, pct, UpdateMix::IncrMul(40), 1));
    }
    rows
}

/// Renders the table.
pub fn render(p: &E8Params, rows: &[E8Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E8: compensation cost — COMPE, {} updates per run\n",
        p.updates
    ));
    out.push_str(&format!(
        "{:>8}  {:>12}  {:>6}  {:>7}  {:>6}  {:>7}  {:>8}  {:>9}  {:>9}\n",
        "abort%", "mix", "sites", "aborts", "fast", "suffix", "undone", "replayed", "ops/comp"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>12}  {:>6}  {:>7}  {:>6}  {:>7}  {:>8}  {:>9}  {:>9.2}\n",
            r.abort_pct,
            r.mix,
            r.sites,
            r.aborts,
            r.fast,
            r.suffix,
            r.ops_undone,
            r.ops_replayed,
            r.ops_per_compensation()
        ));
    }
    out
}

/// §4's analysis, checked: commutative aborts never trigger suffix
/// rollback, and the conflicting mix pays strictly more operations per
/// compensation once aborts occur.
pub fn claim_holds(rows: &[E8Row]) -> bool {
    let commutative_fast = rows
        .iter()
        .filter(|r| r.mix == "commutative")
        .all(|r| r.suffix == 0 && r.ops_replayed == 0);
    let mixed_pays_more = rows
        .iter()
        .filter(|r| r.mix == "inc+mul" && r.suffix > 0)
        .all(|r| r.ops_per_compensation() > 1.0);
    commutative_fast && mixed_pays_more
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutative_aborts_use_fast_path_only() {
        let rows = run(&E8Params::quick());
        for r in rows.iter().filter(|r| r.mix == "commutative") {
            assert_eq!(r.suffix, 0, "commutative mix must never suffix-rollback");
            assert_eq!(r.ops_replayed, 0);
            if r.abort_pct == 0 {
                assert_eq!(r.aborts, 0);
            }
        }
    }

    #[test]
    fn conflicting_mix_triggers_suffix_rollbacks() {
        let rows = run(&E8Params::quick());
        let heavy: Vec<_> = rows
            .iter()
            .filter(|r| r.mix == "inc+mul" && r.abort_pct == 50)
            .collect();
        assert!(!heavy.is_empty());
        assert!(
            heavy.iter().any(|r| r.suffix > 0),
            "50% aborts on inc+mul must hit the suffix path: {heavy:?}"
        );
        assert!(claim_holds(&rows));
    }

    #[test]
    fn cost_grows_with_abort_rate_on_conflicting_mix() {
        let rows = run(&E8Params::quick());
        let total_ops = |pct: u64| {
            rows.iter()
                .find(|r| r.mix == "inc+mul" && r.abort_pct == pct)
                .map(|r| r.ops_undone + r.ops_replayed)
                .unwrap()
        };
        assert!(total_ops(50) > total_ops(0), "more aborts, more repair work");
    }

    #[test]
    fn render_has_both_mixes() {
        let p = E8Params::quick();
        let s = render(&p, &run(&p));
        assert!(s.contains("commutative"));
        assert!(s.contains("inc+mul"));
    }
}
