//! The experiment suite (DESIGN.md §4, EXPERIMENTS.md).
//!
//! Each experiment is a pure function from parameters to rows, plus a
//! renderer that prints the table the harness binary emits. Every
//! experiment has `quick()` parameters (used by integration tests, a few
//! hundred milliseconds) and `full()` parameters (used by
//! `cargo run -p esr-bench --bin experiments`).
//!
//! * [`table1`] — regenerates the paper's Table 1 from behavioural
//!   probes (E1);
//! * [`e4_epsilon`] — epsilon tunes the consistency/availability
//!   trade-off down to strict SR (E4);
//! * [`e5_bound`] — the divergence-control charge bounds the true query
//!   error (E5);
//! * [`e6_convergence`] — convergence to the 1SR oracle at quiescence
//!   under adversarial delivery (E6);
//! * [`e7_sync_async`] — asynchronous replica control vs synchronous
//!   coherency control as latency and system size grow (E7);
//! * [`e8_compensation`] — COMPE's compensation cost: commutative fast
//!   path vs suffix rollback (E8);
//! * [`e9_vtnc`] — RITU multiversion: staleness vs inconsistency budget
//!   (E9);
//! * [`e10_partition`] — availability under network partition (E10);
//! * [`e11_spatial`] — the §5.1 spatial value-deviation criterion
//!   bounds the answer error of admitted queries (E11, extension).

pub mod e10_partition;
pub mod e11_spatial;
pub mod e4_epsilon;
pub mod e5_bound;
pub mod e6_convergence;
pub mod e7_sync_async;
pub mod e8_compensation;
pub mod e9_vtnc;
pub mod table1;
