//! E9 — RITU multiversion: staleness vs inconsistency budget.
//!
//! §3.3: a query may read versions newer than the VTNC, charging one
//! inconsistency unit per such read; once its counter hits the limit it
//! reads at the VTNC (SR, possibly stale). Sweeping the budget shows the
//! dial: epsilon 0 reads are always serializable but lag the newest
//! version; larger budgets buy freshness. Blind-write values are
//! monotonically increasing integers, so `newest_value − returned_value`
//! measures the staleness in "writes behind".

use esr_core::divergence::EpsilonSpec;
use esr_core::ids::{ObjectId, SiteId};
use esr_core::value::Value;
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_sim::time::Duration;

use crate::metrics::CountSummary;

/// Parameters.
#[derive(Debug, Clone)]
pub struct E9Params {
    /// Epsilon budgets to sweep.
    pub epsilons: Vec<u64>,
    /// Replica count.
    pub sites: usize,
    /// Blind writes per epsilon setting.
    pub writes: usize,
    /// Queries per epsilon setting.
    pub queries: usize,
    /// Seed.
    pub seed: u64,
}

impl E9Params {
    /// Test-sized parameters.
    pub fn quick() -> Self {
        Self {
            epsilons: vec![0, 2, u64::MAX],
            sites: 4,
            writes: 40,
            queries: 20,
            seed: 91,
        }
    }

    /// Full parameters.
    pub fn full() -> Self {
        Self {
            epsilons: vec![0, 1, 2, 4, 8, u64::MAX],
            writes: 300,
            queries: 100,
            ..Self::quick()
        }
    }
}

/// One row.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Budget (`u64::MAX` = unbounded).
    pub epsilon: u64,
    /// Staleness in writes-behind across queries.
    pub staleness: CountSummary,
    /// Queries that returned the globally newest value.
    pub fresh: usize,
    /// Total queries.
    pub queries: usize,
    /// Inconsistency charged.
    pub charge: CountSummary,
}

/// Objects the workload spreads over; each query reads all of them, so
/// the budget meaningfully rations how many fresh (above-VTNC) reads a
/// query may take.
const OBJECTS: u64 = 4;

/// Runs the sweep. Writes round-robin over `OBJECTS` (4) objects carrying
/// a monotonically increasing value; queries read the full object set
/// mid-flight.
pub fn run(p: &E9Params) -> Vec<E9Row> {
    let read_set: Vec<ObjectId> = (0..OBJECTS).map(ObjectId).collect();
    let mut rows = Vec::new();
    for &epsilon in &p.epsilons {
        let cfg = ClusterConfig::new(Method::RituMv)
            .with_sites(p.sites)
            .with_link(LinkConfig::reliable(LatencyModel::Uniform(
                Duration::from_millis(5),
                Duration::from_millis(60),
            )))
            .with_seed(p.seed);
        let mut cluster = SimCluster::new(cfg);
        let mut staleness = Vec::new();
        let mut charges = Vec::new();
        let mut fresh = 0;
        let mut newest = vec![0i64; OBJECTS as usize];
        let writes_per_query = p.writes.div_ceil(p.queries).max(1);
        let mut written = 0usize;
        for q in 0..p.queries {
            for _ in 0..writes_per_query {
                if written >= p.writes {
                    break;
                }
                written += 1;
                let obj = (written as u64) % OBJECTS;
                newest[obj as usize] = written as i64;
                let origin = SiteId(written as u64 % p.sites as u64);
                let t = cluster.now() + Duration::from_millis(2);
                cluster.advance_to(t);
                cluster.submit_blind_write(origin, ObjectId(obj), Value::Int(written as i64));
            }
            // Let some, but not all, propagation happen.
            for _ in 0..3 {
                cluster.step();
            }
            let site = SiteId(q as u64 % p.sites as u64);
            let out = cluster.try_query(site, &read_set, EpsilonSpec::bounded(epsilon));
            assert!(out.admitted, "RITU-MV queries never reject");
            let total_stale: u64 = out
                .values
                .iter()
                .zip(newest.iter())
                .map(|(v, &nw)| (nw - v.as_int().unwrap_or(0)).max(0) as u64)
                .sum();
            staleness.push(total_stale);
            charges.push(out.charged);
            if total_stale == 0 {
                fresh += 1;
            }
            assert!(out.charged <= epsilon, "charge exceeded budget");
        }
        cluster.run_until_quiescent();
        assert!(cluster.converged());
        rows.push(E9Row {
            epsilon,
            staleness: CountSummary::of(&staleness),
            fresh,
            queries: p.queries,
            charge: CountSummary::of(&charges),
        });
    }
    rows
}

/// Renders the table.
pub fn render(p: &E9Params, rows: &[E9Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E9: RITU-MV staleness vs budget — {} sites, {} writes, {} queries per setting\n",
        p.sites, p.writes, p.queries
    ));
    out.push_str(&format!(
        "{:>8}  {:>11}  {:>10}  {:>8}  {:>11}  {:>10}\n",
        "epsilon", "stale-mean", "stale-max", "fresh", "charge-mean", "charge-max"
    ));
    for r in rows {
        let eps = if r.epsilon == u64::MAX {
            "inf".to_string()
        } else {
            r.epsilon.to_string()
        };
        out.push_str(&format!(
            "{:>8}  {:>11}  {:>10}  {:>8}  {:>11}  {:>10}\n",
            eps,
            r.staleness.mean,
            r.staleness.max,
            format!("{}/{}", r.fresh, r.queries),
            r.charge.mean,
            r.charge.max
        ));
    }
    out
}

/// The dial works: a larger budget never reads staler on average, and
/// unbounded queries charge whenever they read past the VTNC.
pub fn claim_holds(rows: &[E9Row]) -> bool {
    rows.windows(2).all(|w| {
        w[0].epsilon > w[1].epsilon || w[0].staleness.mean >= w[1].staleness.mean
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_budget_reads_fresher() {
        let rows = run(&E9Params::quick());
        let strict = rows.iter().find(|r| r.epsilon == 0).unwrap();
        let unbounded = rows.iter().find(|r| r.epsilon == u64::MAX).unwrap();
        assert!(
            unbounded.staleness.mean <= strict.staleness.mean,
            "unbounded mean {} vs strict mean {}",
            unbounded.staleness.mean,
            strict.staleness.mean
        );
        assert!(
            unbounded.fresh >= strict.fresh,
            "freshness must not drop with budget"
        );
        assert!(claim_holds(&rows));
    }

    #[test]
    fn strict_queries_charge_nothing() {
        let rows = run(&E9Params::quick());
        let strict = rows.iter().find(|r| r.epsilon == 0).unwrap();
        assert_eq!(strict.charge.max, 0);
    }

    #[test]
    fn unbounded_queries_actually_pay_for_freshness() {
        let rows = run(&E9Params::quick());
        let unbounded = rows.iter().find(|r| r.epsilon == u64::MAX).unwrap();
        assert!(
            unbounded.charge.total > 0,
            "mid-flight fresh reads must charge at least once"
        );
    }

    #[test]
    fn render_shows_all_budgets() {
        let p = E9Params::quick();
        let s = render(&p, &run(&p));
        assert!(s.contains("inf"));
        assert!(s.contains("stale-mean"));
    }
}
