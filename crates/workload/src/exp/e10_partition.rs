//! E10 — availability under network partition.
//!
//! §1/§5.3: asynchronous replica control keeps accepting updates during
//! a partition and converges after reconnection, while synchronous
//! coherency control blocks. One replica is cut off for a fixed window;
//! updates keep arriving throughout. We record, for each system, the
//! client-visible update latency during the partition and the time to
//! convergence after the heal.

use esr_core::ids::{ObjectId, SiteId};
use esr_core::op::{ObjectOp, Operation};
use esr_net::faults::{PartitionSchedule, PartitionWindow};
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_replica::quorum::QuorumCluster;
use esr_replica::sync2pc::TwoPcCluster;
use esr_sim::time::{Duration, VirtualTime};

use crate::metrics::DurationSummary;

/// Parameters.
#[derive(Debug, Clone)]
pub struct E10Params {
    /// Replica count.
    pub sites: usize,
    /// When the partition begins.
    pub partition_start: VirtualTime,
    /// When it heals.
    pub partition_end: VirtualTime,
    /// Updates submitted during the partition window.
    pub updates: usize,
    /// Link latency.
    pub latency: Duration,
    /// Seed.
    pub seed: u64,
}

impl E10Params {
    /// Test-sized parameters.
    pub fn quick() -> Self {
        Self {
            sites: 4,
            partition_start: VirtualTime::from_millis(50),
            partition_end: VirtualTime::from_millis(800),
            updates: 20,
            latency: Duration::from_millis(5),
            seed: 101,
        }
    }

    /// Full parameters.
    pub fn full() -> Self {
        Self {
            updates: 100,
            partition_end: VirtualTime::from_millis(3_000),
            ..Self::quick()
        }
    }
}

/// One row.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// System label.
    pub system: &'static str,
    /// Does the client get an immediate local acknowledgement?
    pub local_ack: bool,
    /// Client-visible latency of updates issued during the partition.
    pub update_latency: DurationSummary,
    /// Were any updates blocked past the heal time?
    pub blocked_by_partition: bool,
    /// Virtual time between the heal and full convergence of all
    /// replicas.
    pub convergence_after_heal: Duration,
}

fn partition(p: &E10Params) -> PartitionSchedule {
    // The last site is cut off from everyone else.
    let victim = SiteId(p.sites as u64 - 1);
    let others = (0..p.sites as u64 - 1).map(SiteId);
    PartitionSchedule::new(vec![PartitionWindow::isolate(
        p.partition_start,
        p.partition_end,
        victim,
        others,
    )])
}

fn link(p: &E10Params) -> LinkConfig {
    LinkConfig::reliable(LatencyModel::Exponential(p.latency))
}

fn submit_times(p: &E10Params) -> Vec<VirtualTime> {
    let window = p.partition_end - p.partition_start;
    let step = window.as_micros() / (p.updates as u64 + 1);
    (0..p.updates as u64)
        .map(|i| p.partition_start + Duration::from_micros(step * (i + 1)))
        .collect()
}

fn run_async(p: &E10Params, method: Method) -> E10Row {
    let cfg = ClusterConfig::new(method)
        .with_sites(p.sites)
        .with_link(link(p))
        .with_partitions(partition(p))
        .with_seed(p.seed);
    let mut cluster = SimCluster::new(cfg);
    for (i, &t) in submit_times(p).iter().enumerate() {
        cluster.advance_to(t);
        // Submit from the majority side: origin rotates over connected
        // sites.
        let origin = SiteId(i as u64 % (p.sites as u64 - 1));
        if method == Method::RituOverwrite {
            cluster.submit_blind_write(origin, ObjectId(0), esr_core::Value::Int(i as i64));
        } else {
            cluster.submit_update(
                origin,
                vec![ObjectOp::new(ObjectId(0), Operation::Incr(1))],
            );
        }
    }
    let quiesced = cluster.run_until_quiescent();
    assert!(cluster.converged(), "{} must converge after heal", method.name());
    E10Row {
        system: method.name(),
        local_ack: true,
        // Asynchronous submission: the client's update is applied locally
        // and acknowledged without any network wait.
        update_latency: DurationSummary::of(&vec![Duration::ZERO; p.updates]),
        blocked_by_partition: false,
        convergence_after_heal: quiesced - p.partition_end,
    }
}

fn run_2pc(p: &E10Params) -> E10Row {
    let mut c = TwoPcCluster::new(p.sites, link(p), partition(p), p.seed);
    let mut latencies = Vec::new();
    let mut blocked = false;
    let mut last_done = VirtualTime::ZERO;
    for (i, &t) in submit_times(p).iter().enumerate() {
        let origin = SiteId(i as u64 % (p.sites as u64 - 1));
        let r = c.submit_update(
            origin,
            &[ObjectOp::new(ObjectId(i as u64), Operation::Incr(1))],
            t,
        );
        latencies.push(r.decided - t);
        if r.decided >= p.partition_end {
            blocked = true;
        }
        last_done = last_done.max(r.completed);
    }
    assert!(c.converged());
    E10Row {
        system: "2PC",
        local_ack: false,
        update_latency: DurationSummary::of(&latencies),
        blocked_by_partition: blocked,
        convergence_after_heal: last_done - p.partition_end,
    }
}

fn run_quorum(p: &E10Params) -> E10Row {
    let mut c = QuorumCluster::new(p.sites, link(p), partition(p), p.seed);
    let mut latencies = Vec::new();
    let mut blocked = false;
    let mut last_done = VirtualTime::ZERO;
    for (i, &t) in submit_times(p).iter().enumerate() {
        let origin = SiteId(i as u64 % (p.sites as u64 - 1));
        let r = c.write(origin, ObjectId(i as u64), esr_core::Value::Int(1), t);
        latencies.push(r.decided - t);
        if r.decided >= p.partition_end {
            blocked = true;
        }
        last_done = last_done.max(r.decided);
    }
    E10Row {
        system: "quorum",
        local_ack: false,
        update_latency: DurationSummary::of(&latencies),
        blocked_by_partition: blocked,
        convergence_after_heal: Duration::ZERO.max(last_done - p.partition_end),
    }
}

/// Runs every system through the same partition scenario.
pub fn run(p: &E10Params) -> Vec<E10Row> {
    vec![
        run_async(p, Method::Commu),
        run_async(p, Method::OrdupSeq),
        run_async(p, Method::RituOverwrite),
        run_2pc(p),
        run_quorum(p),
    ]
}

/// Renders the table.
pub fn render(p: &E10Params, rows: &[E10Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E10: availability under partition — {} sites, 1 isolated {}..{}, {} updates\n",
        p.sites, p.partition_start, p.partition_end, p.updates
    ));
    out.push_str(&format!(
        "{:>8}  {:>9}  {:>12}  {:>12}  {:>9}  {:>16}\n",
        "system", "local-ack", "lat-mean", "lat-max", "blocked", "converge-after"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>8}  {:>9}  {:>10}us  {:>10}us  {:>9}  {:>14}ms\n",
            r.system,
            if r.local_ack { "yes" } else { "no" },
            r.update_latency.mean_us,
            r.update_latency.max_us,
            if r.blocked_by_partition { "yes" } else { "no" },
            r.convergence_after_heal.as_micros() / 1_000
        ));
    }
    out
}

/// The availability claim: async systems keep a zero client latency and
/// are never blocked; 2PC blocks on the partition; a majority quorum
/// rides it out (its minority-partitioned replica simply misses the
/// write quorum).
pub fn claim_holds(rows: &[E10Row]) -> bool {
    let async_ok = rows
        .iter()
        .filter(|r| r.local_ack)
        .all(|r| !r.blocked_by_partition && r.update_latency.max_us == 0);
    let twopc_blocked = rows
        .iter()
        .find(|r| r.system == "2PC")
        .is_some_and(|r| r.blocked_by_partition);
    let quorum_available = rows
        .iter()
        .find(|r| r.system == "quorum")
        .is_some_and(|r| !r.blocked_by_partition);
    async_ok && twopc_blocked && quorum_available
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_available_sync_blocked() {
        let p = E10Params::quick();
        let rows = run(&p);
        assert!(claim_holds(&rows), "{rows:#?}");
    }

    #[test]
    fn twopc_latency_reflects_the_heal_wait() {
        let p = E10Params::quick();
        let rows = run(&p);
        let twopc = rows.iter().find(|r| r.system == "2PC").unwrap();
        // The first blocked update waited essentially the whole window.
        assert!(
            twopc.update_latency.max_us >= 500_000,
            "max 2PC latency {}us should approach the partition length",
            twopc.update_latency.max_us
        );
    }

    #[test]
    fn quorum_latency_stays_small_during_partition() {
        let p = E10Params::quick();
        let rows = run(&p);
        let q = rows.iter().find(|r| r.system == "quorum").unwrap();
        assert!(
            q.update_latency.max_us < 200_000,
            "majority quorum writes must not wait for the heal: {}us",
            q.update_latency.max_us
        );
    }

    #[test]
    fn async_methods_converge_shortly_after_heal() {
        let p = E10Params::quick();
        let rows = run(&p);
        for r in rows.iter().filter(|r| r.local_ack) {
            assert!(
                r.convergence_after_heal < Duration::from_secs(2),
                "{}: convergence took {} after heal",
                r.system,
                r.convergence_after_heal
            );
        }
    }

    #[test]
    fn render_lists_all_systems() {
        let p = E10Params::quick();
        let s = render(&p, &run(&p));
        for sys in ["COMMU", "ORDUP", "RITU", "2PC", "quorum"] {
            assert!(s.contains(sys), "missing {sys}");
        }
    }
}
