//! E6 — convergence to the one-copy oracle at quiescence.
//!
//! §2.2: "under ESR all replicas converge to the same 1SR value when the
//! update MSets queued at individual sites are processed, and the system
//! reaches a quiescent state." We hammer every method with an
//! adversarial network — loss, duplication, reordering, and a partition
//! in the middle of the run — then drain and check (1) all replicas
//! identical and (2) equal to the serial oracle where one is defined.

use std::collections::BTreeSet;

use esr_core::ids::SiteId;
use esr_net::faults::{PartitionSchedule, PartitionWindow};
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_sim::time::{Duration, VirtualTime};

use crate::gen::{KeyDist, UpdateMix, WorkloadGen};

/// Parameters.
#[derive(Debug, Clone)]
pub struct E6Params {
    /// Methods to exercise.
    pub methods: Vec<Method>,
    /// Replica count.
    pub sites: usize,
    /// Objects.
    pub objects: u64,
    /// Updates to submit.
    pub updates: usize,
    /// Seeds (each seed is an independent adversarial run).
    pub seeds: Vec<u64>,
}

impl E6Params {
    /// Test-sized parameters.
    pub fn quick() -> Self {
        Self {
            methods: Method::ALL.to_vec(),
            sites: 4,
            objects: 5,
            updates: 40,
            seeds: vec![1, 2],
        }
    }

    /// Full parameters.
    pub fn full() -> Self {
        Self {
            updates: 200,
            seeds: (1..=10).collect(),
            ..Self::quick()
        }
    }
}

/// One row (per method, aggregated over seeds).
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Method.
    pub method: Method,
    /// Runs performed.
    pub runs: usize,
    /// Runs where all replicas converged to identical state.
    pub converged: usize,
    /// Runs whose final state matched the serial oracle (only counted
    /// for methods with a defined oracle).
    pub oracle_matches: usize,
    /// Whether the oracle applies to this method.
    pub oracle_defined: bool,
    /// Mean virtual time to quiescence, milliseconds.
    pub mean_quiesce_ms: u64,
    /// Total updates applied per run.
    pub updates: usize,
}

/// Does this driver define an exact serial oracle for the method?
/// (ORDUP-Lamport's order is its runtime Lamport order, which the driver
/// does not precompute.)
fn oracle_defined(method: Method) -> bool {
    method != Method::OrdupLamport
}

/// Runs the convergence matrix.
pub fn run(p: &E6Params) -> Vec<E6Row> {
    let mut rows = Vec::new();
    for &method in &p.methods {
        let mut converged = 0;
        let mut oracle_matches = 0;
        let mut total_quiesce_ms = 0;
        for &seed in &p.seeds {
            let partition = PartitionSchedule::new(vec![PartitionWindow::split(
                VirtualTime::from_millis(30),
                VirtualTime::from_millis(220),
                (0..p.sites as u64 / 2).map(SiteId).collect::<BTreeSet<_>>(),
                (p.sites as u64 / 2..p.sites as u64).map(SiteId),
            )]);
            let cfg = ClusterConfig::new(method)
                .with_sites(p.sites)
                .with_link(LinkConfig {
                    latency: LatencyModel::Uniform(
                        Duration::from_millis(1),
                        Duration::from_millis(50),
                    ),
                    drop_prob: 0.2,
                    duplicate_prob: 0.15,
                    bandwidth: None,
                })
                .with_partitions(partition)
                .with_seed(seed)
                .with_abort_prob(if method == Method::Compe { 0.25 } else { 0.0 });
            let mut cluster = SimCluster::new(cfg);
            let mix = match method {
                Method::RituOverwrite | Method::RituMv => UpdateMix::BlindWrites,
                // ORDUP orders everything, so it converges even for
                // conflicting families; exercise that.
                Method::OrdupSeq | Method::OrdupLamport => UpdateMix::IncrMul(30),
                _ => UpdateMix::Increments,
            };
            let mut gen = WorkloadGen::new(
                p.objects,
                KeyDist::Uniform,
                mix,
                p.sites as u64,
                Duration::from_millis(2),
                seed,
            );
            for _ in 0..p.updates {
                let u = gen.next_update();
                let t = cluster.now() + u.gap;
                cluster.advance_to(t);
                if mix == UpdateMix::BlindWrites {
                    cluster.submit_blind_write(
                        SiteId(u.origin_index),
                        u.object,
                        esr_core::Value::Int(u.value),
                    );
                } else {
                    cluster.submit_update(SiteId(u.origin_index), u.ops);
                }
            }
            let t = cluster.run_until_quiescent();
            total_quiesce_ms += t.as_millis();
            if cluster.converged() {
                converged += 1;
            }
            if oracle_defined(method) && cluster.matches_oracle() {
                oracle_matches += 1;
            }
        }
        rows.push(E6Row {
            method,
            runs: p.seeds.len(),
            converged,
            oracle_matches,
            oracle_defined: oracle_defined(method),
            mean_quiesce_ms: total_quiesce_ms / p.seeds.len() as u64,
            updates: p.updates,
        });
    }
    rows
}

/// Renders the table.
pub fn render(p: &E6Params, rows: &[E6Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E6: convergence at quiescence — {} updates/run, {} sites, loss+dup+partition\n",
        p.updates, p.sites
    ));
    out.push_str(&format!(
        "{:>9}  {:>6}  {:>10}  {:>13}  {:>13}\n",
        "method", "runs", "converged", "oracle-match", "quiesce-mean"
    ));
    for r in rows {
        let oracle = if r.oracle_defined {
            format!("{}/{}", r.oracle_matches, r.runs)
        } else {
            "n/a".to_string()
        };
        out.push_str(&format!(
            "{:>9}  {:>6}  {:>10}  {:>13}  {:>11}ms\n",
            r.method.name(),
            r.runs,
            format!("{}/{}", r.converged, r.runs),
            oracle,
            r.mean_quiesce_ms
        ));
    }
    out
}

/// The convergence claim: every run of every method converged, and every
/// oracle-bearing run matched its oracle.
pub fn claim_holds(rows: &[E6Row]) -> bool {
    rows.iter().all(|r| {
        r.converged == r.runs && (!r.oracle_defined || r.oracle_matches == r.runs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_methods_converge_under_adversity() {
        let p = E6Params::quick();
        let rows = run(&p);
        for r in &rows {
            assert_eq!(
                r.converged, r.runs,
                "{} failed to converge in some run",
                r.method.name()
            );
            if r.oracle_defined {
                assert_eq!(
                    r.oracle_matches, r.runs,
                    "{} diverged from the serial oracle",
                    r.method.name()
                );
            }
        }
        assert!(claim_holds(&rows));
    }

    #[test]
    fn quiescence_happens_after_partition_heals() {
        let p = E6Params::quick();
        let rows = run(&p);
        for r in &rows {
            assert!(
                r.mean_quiesce_ms >= 220,
                "{}: quiesced at {}ms, before the partition healed",
                r.method.name(),
                r.mean_quiesce_ms
            );
        }
    }

    #[test]
    fn render_covers_all_methods() {
        let p = E6Params::quick();
        let s = render(&p, &run(&p));
        for m in Method::ALL {
            assert!(s.contains(m.name()));
        }
        assert!(s.contains("n/a"), "ORDUP-L has no precomputed oracle");
    }
}
