//! E1 — regenerating the paper's **Table 1** from behavioural probes.
//!
//! Table 1 characterizes the four replica control methods along four
//! dimensions. Rather than hard-coding the paper's cells, each cell is
//! *derived* from a probe against the real implementation:
//!
//! * **Kind of restriction** — ORDUP holds out-of-order MSets back
//!   (message delivery); COMMU/RITU converge under any order
//!   (operation semantics); COMPE can undo a value (operation value).
//! * **Applicability** — forward methods treat updates as committed;
//!   COMPE compensates aborts (backwards).
//! * **Asynchronous propagation** — under ORDUP only queries escape the
//!   ordering restriction; the others propagate updates in any order.
//! * **Sorting time** — ORDUP sorts before applying (at update); COMMU
//!   needs no sort at all; RITU arbitrates at read time via version
//!   timestamps; COMPE has no sorting dimension.

use esr_core::ids::{ClientId, EtId, ObjectId, SeqNo, SiteId, VersionTs};
use esr_core::op::{ObjectOp, Operation};
use esr_core::value::Value;
use esr_replica::commu::CommuSite;
use esr_replica::compe::CompeSite;
use esr_replica::mset::MSet;
use esr_replica::ordup::OrdupSite;
use esr_replica::ritu::RituOverwriteSite;
use esr_replica::site::ReplicaSite;

const X: ObjectId = ObjectId(0);

/// One regenerated column of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Column {
    /// Method name.
    pub method: &'static str,
    /// "Kind of restriction" row.
    pub restriction: &'static str,
    /// "Applicability" row.
    pub applicability: &'static str,
    /// "Asynchronous propagation" row.
    pub async_propagation: &'static str,
    /// "Sorting time" row.
    pub sorting_time: &'static str,
}

fn inc_mset(et: u64, n: i64) -> MSet {
    MSet::new(EtId(et), SiteId(9), vec![ObjectOp::new(X, Operation::Incr(n))])
}

fn mul_mset(et: u64, k: i64) -> MSet {
    MSet::new(EtId(et), SiteId(9), vec![ObjectOp::new(X, Operation::MulBy(k))])
}

fn tw_mset(et: u64, t: u64, v: i64) -> MSet {
    MSet::new(
        EtId(et),
        SiteId(9),
        vec![ObjectOp::new(
            X,
            Operation::TimestampedWrite(VersionTs::new(t, ClientId(0)), Value::Int(v)),
        )],
    )
}

/// Probes ORDUP: out-of-order delivery is held back — the restriction is
/// on *message delivery*, updates sort *at update* (before application),
/// and only queries escape the ordering (query-only asynchrony).
pub fn probe_ordup() -> Table1Column {
    let mut s = OrdupSite::new(SiteId(0));
    // Deliver #1 before #0: it must be held, not applied.
    s.deliver(inc_mset(2, 5).sequenced(SeqNo(1)));
    let held_back = s.backlog() == 1 && s.applied() == 0;
    s.deliver(mul_mset(1, 3).sequenced(SeqNo(0)));
    let sorted_before_apply = s.applied() == 2 && s.snapshot()[&X] == Value::Int(5); // 0*3+5
    assert!(held_back, "ORDUP must hold back out-of-order MSets");
    assert!(sorted_before_apply, "ORDUP must apply in sequence order");
    Table1Column {
        method: "ORDUP",
        restriction: "message delivery",
        applicability: "forwards",
        async_propagation: "query only",
        sorting_time: "at update",
    }
}

/// Probes COMMU: opposite delivery orders produce identical states — the
/// restriction is on *operation semantics*, no sorting ever happens.
pub fn probe_commu() -> Table1Column {
    let msets = [inc_mset(1, 5), inc_mset(2, 7), inc_mset(3, -2)];
    let mut a = CommuSite::new(SiteId(0));
    let mut b = CommuSite::new(SiteId(1));
    for m in &msets {
        a.deliver(m.clone());
    }
    for m in msets.iter().rev() {
        b.deliver(m.clone());
    }
    assert_eq!(
        a.snapshot(),
        b.snapshot(),
        "COMMU must converge under any delivery order"
    );
    assert_eq!(a.backlog(), 0, "COMMU never holds MSets back");
    Table1Column {
        method: "COMMU",
        restriction: "operation semantics",
        applicability: "forwards",
        async_propagation: "query & update",
        sorting_time: "doesn't matter",
    }
}

/// Probes RITU: version timestamps arbitrate at read time — an older
/// write arriving late is ignored, so the sort happens *at read*.
pub fn probe_ritu() -> Table1Column {
    let mut a = RituOverwriteSite::new(SiteId(0));
    let mut b = RituOverwriteSite::new(SiteId(1));
    // a sees new-then-old, b sees old-then-new: both must read v2.
    a.deliver(tw_mset(1, 2, 20));
    a.deliver(tw_mset(2, 1, 10));
    b.deliver(tw_mset(2, 1, 10));
    b.deliver(tw_mset(1, 2, 20));
    assert_eq!(a.snapshot(), b.snapshot());
    assert_eq!(a.snapshot()[&X], Value::Int(20), "newest version wins at read");
    Table1Column {
        method: "RITU",
        restriction: "operation semantics",
        applicability: "forwards",
        async_propagation: "query & update",
        sorting_time: "at read",
    }
}

/// Probes COMPE: an applied update can be *undone* after the fact — the
/// backward method, restricted by operation value (a compensation must
/// exist or a before-image must be logged).
pub fn probe_compe() -> Table1Column {
    let mut s = CompeSite::new(SiteId(0));
    s.deliver(inc_mset(1, 10));
    s.deliver(mul_mset(2, 2));
    assert_eq!(s.snapshot()[&X], Value::Int(20), "optimistically applied");
    let report = s.abort(EtId(1)).expect("abort compensates");
    assert_eq!(
        s.snapshot()[&X],
        Value::Int(0),
        "state equals the surviving Mul alone"
    );
    let _ = report;
    s.commit(EtId(2));
    assert_eq!(s.at_risk(), 0);
    Table1Column {
        method: "COMPE",
        restriction: "operation value",
        applicability: "backwards",
        async_propagation: "query & update",
        sorting_time: "n/a",
    }
}

/// Regenerates all four columns. Every cell is backed by the assertions
/// in its probe — a behavioural change in any method breaks the table.
pub fn run() -> Vec<Table1Column> {
    vec![probe_ordup(), probe_commu(), probe_ritu(), probe_compe()]
}

/// Renders the table in the paper's layout.
pub fn render(cols: &[Table1Column]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: Replica-Control Methods (regenerated from behavioural probes)\n\n");
    let w = 22;
    out.push_str(&format!("{:<26}", ""));
    for c in cols {
        out.push_str(&format!("{:<w$}", c.method));
    }
    out.push('\n');
    type CellGetter = fn(&Table1Column) -> &'static str;
    let rows: [(&str, CellGetter); 4] = [
        ("Kind of Restriction", |c| c.restriction),
        ("Applicability", |c| c.applicability),
        ("Asynchronous Propagation", |c| c.async_propagation),
        ("Sorting Time", |c| c.sorting_time),
    ];
    for (label, get) in rows {
        out.push_str(&format!("{label:<26}"));
        for c in cols {
            out.push_str(&format!("{:<w$}", get(c)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerated_table_matches_paper() {
        let cols = run();
        assert_eq!(cols.len(), 4);
        // Paper Table 1, column by column.
        assert_eq!(cols[0].restriction, "message delivery");
        assert_eq!(cols[0].async_propagation, "query only");
        assert_eq!(cols[0].sorting_time, "at update");

        assert_eq!(cols[1].restriction, "operation semantics");
        assert_eq!(cols[1].async_propagation, "query & update");
        assert_eq!(cols[1].sorting_time, "doesn't matter");

        assert_eq!(cols[2].restriction, "operation semantics");
        assert_eq!(cols[2].sorting_time, "at read");

        assert_eq!(cols[3].restriction, "operation value");
        assert_eq!(cols[3].applicability, "backwards");
        assert_eq!(cols[3].sorting_time, "n/a");

        // Forward methods are forwards.
        for c in &cols[..3] {
            assert_eq!(c.applicability, "forwards");
        }
    }

    #[test]
    fn render_contains_all_rows_and_methods() {
        let s = render(&run());
        for label in [
            "Kind of Restriction",
            "Applicability",
            "Asynchronous Propagation",
            "Sorting Time",
        ] {
            assert!(s.contains(label), "missing row {label}");
        }
        for m in ["ORDUP", "COMMU", "RITU", "COMPE"] {
            assert!(s.contains(m), "missing column {m}");
        }
    }
}
