//! E4 — epsilon tunes the consistency/availability trade-off.
//!
//! The paper's headline claim: "users can reduce the degree of
//! inconsistency to the desired amount. In the limit, users see strict
//! 1-copy serializability." We sweep the query epsilon on an ORDUP
//! cluster under continuous update load and measure what each budget
//! buys: small epsilons force queries to wait for the global order
//! (retries, waiting time); large epsilons serve immediately at the cost
//! of visible inconsistency (the charge). The charge never exceeds the
//! declared budget.

use esr_core::divergence::EpsilonSpec;
use esr_core::ids::SiteId;
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_sim::time::Duration;

use crate::gen::{KeyDist, UpdateMix, WorkloadGen};
use crate::metrics::{CountSummary, DurationSummary};

/// Parameters for the sweep.
#[derive(Debug, Clone)]
pub struct E4Params {
    /// Replica count.
    pub sites: usize,
    /// Number of objects.
    pub objects: u64,
    /// Updates submitted between consecutive queries.
    pub updates_per_query: usize,
    /// Queries issued per epsilon setting.
    pub queries: usize,
    /// The epsilon budgets to sweep (`u64::MAX` = unbounded).
    pub epsilons: Vec<u64>,
    /// Mean one-way link latency.
    pub latency: Duration,
    /// Seed.
    pub seed: u64,
}

impl E4Params {
    /// Test-sized parameters (sub-second).
    pub fn quick() -> Self {
        Self {
            sites: 4,
            objects: 8,
            updates_per_query: 3,
            queries: 20,
            epsilons: vec![0, 2, u64::MAX],
            latency: Duration::from_millis(10),
            seed: 41,
        }
    }

    /// Full parameters for the published table.
    pub fn full() -> Self {
        Self {
            sites: 4,
            objects: 16,
            updates_per_query: 4,
            queries: 200,
            epsilons: vec![0, 1, 2, 4, 8, 16, u64::MAX],
            latency: Duration::from_millis(10),
            seed: 41,
        }
    }
}

/// One row of the E4 table.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// The epsilon budget (`u64::MAX` printed as `inf`).
    pub epsilon: u64,
    /// Queries served on the first attempt (no waiting).
    pub served_immediately: usize,
    /// Total retry loops across all queries.
    pub total_retries: u64,
    /// Waiting time (issue → served).
    pub wait: DurationSummary,
    /// Inconsistency charged to queries.
    pub charge: CountSummary,
}

/// Runs the sweep.
pub fn run(p: &E4Params) -> Vec<E4Row> {
    let mut rows = Vec::new();
    for &epsilon in &p.epsilons {
        let cfg = ClusterConfig::new(Method::OrdupSeq)
            .with_sites(p.sites)
            .with_link(LinkConfig::reliable(LatencyModel::Exponential(p.latency)))
            .with_seed(p.seed);
        let mut cluster = SimCluster::new(cfg);
        let mut gen = WorkloadGen::new(
            p.objects,
            KeyDist::Zipf(0.99),
            UpdateMix::Increments,
            p.sites as u64,
            Duration::from_millis(2),
            p.seed,
        );
        let mut served_immediately = 0;
        let mut total_retries = 0;
        let mut waits = Vec::new();
        let mut charges = Vec::new();
        for _ in 0..p.queries {
            for _ in 0..p.updates_per_query {
                let u = gen.next_update();
                let t = cluster.now() + u.gap;
                cluster.advance_to(t);
                cluster.submit_update(SiteId(u.origin_index), u.ops);
            }
            let read_set = gen.next_read_set(2);
            let site = SiteId(gen.rng().below(p.sites as u64));
            let issued = cluster.now();
            let report = cluster.query_with_retry(site, &read_set, EpsilonSpec::bounded(epsilon));
            if report.retries == 0 {
                served_immediately += 1;
            }
            total_retries += report.retries;
            waits.push(report.served_at - issued);
            charges.push(report.charged);
            assert!(
                report.charged <= epsilon,
                "charge {} exceeded declared epsilon {}",
                report.charged,
                epsilon
            );
        }
        cluster.run_until_quiescent();
        assert!(cluster.converged(), "E4 cluster must converge");
        rows.push(E4Row {
            epsilon,
            served_immediately,
            total_retries,
            wait: DurationSummary::of(&waits),
            charge: CountSummary::of(&charges),
        });
    }
    rows
}

/// Renders the table.
pub fn render(p: &E4Params, rows: &[E4Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E4: query epsilon sweep — ORDUP, {} sites, {} queries x {} updates, ~{} links\n",
        p.sites, p.queries, p.updates_per_query, p.latency
    ));
    out.push_str(&format!(
        "{:>8}  {:>10}  {:>9}  {:>12}  {:>12}  {:>11}  {:>10}\n",
        "epsilon", "immediate", "retries", "wait-mean", "wait-max", "charge-mean", "charge-max"
    ));
    for r in rows {
        let eps = if r.epsilon == u64::MAX {
            "inf".to_string()
        } else {
            r.epsilon.to_string()
        };
        out.push_str(&format!(
            "{:>8}  {:>10}  {:>9}  {:>10}us  {:>10}us  {:>11}  {:>10}\n",
            eps,
            r.served_immediately,
            r.total_retries,
            r.wait.mean_us,
            r.wait.max_us,
            r.charge.mean,
            r.charge.max
        ));
    }
    out
}

/// The paper's claim checked by tests: looser budgets never serve fewer
/// queries immediately, and strict queries import zero inconsistency.
pub fn claim_holds(rows: &[E4Row]) -> bool {
    let monotone = rows
        .windows(2)
        .all(|w| w[0].epsilon > w[1].epsilon || w[0].served_immediately <= w[1].served_immediately);
    let strict_clean = rows
        .iter()
        .filter(|r| r.epsilon == 0)
        .all(|r| r.charge.max == 0);
    monotone && strict_clean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_satisfies_claims() {
        let p = E4Params::quick();
        let rows = run(&p);
        assert_eq!(rows.len(), 3);
        assert!(claim_holds(&rows), "{rows:?}");
        // The unbounded row must serve everything immediately.
        let unbounded = rows.iter().find(|r| r.epsilon == u64::MAX).unwrap();
        assert_eq!(unbounded.served_immediately, p.queries);
        assert_eq!(unbounded.total_retries, 0);
    }

    #[test]
    fn strict_queries_wait_longer_than_unbounded() {
        let p = E4Params::quick();
        let rows = run(&p);
        let strict = rows.iter().find(|r| r.epsilon == 0).unwrap();
        let unbounded = rows.iter().find(|r| r.epsilon == u64::MAX).unwrap();
        assert!(
            strict.wait.mean_us >= unbounded.wait.mean_us,
            "strict {}us vs unbounded {}us",
            strict.wait.mean_us,
            unbounded.wait.mean_us
        );
        assert_eq!(unbounded.wait.mean_us, 0, "unbounded queries never wait");
    }

    #[test]
    fn render_contains_all_rows() {
        let p = E4Params::quick();
        let rows = run(&p);
        let s = render(&p, &rows);
        assert!(s.contains("inf"));
        assert!(s.contains("epsilon"));
        assert!(s.lines().count() >= rows.len() + 2);
    }
}
