//! E11 — spatial consistency criteria (§5.1 extension).
//!
//! The paper: "in order to implement the other spatial consistency
//! criteria, replica control methods would need to explicitly include
//! these factors." We include them ([`esr_core::spatial`]) and measure
//! the interesting one: **MaxValueDeviation** promises that an admitted
//! query's answer is within D value units of the converged truth.
//!
//! Setup: COMMU, additive workload (deviations are exact), mid-flight
//! probes under a sweep of deviation budgets. For every admitted probe
//! we compare the answer against the authoritative state (all submitted
//! updates applied) and check `answer error ≤ D`.

use esr_core::ids::{ObjectId, SiteId};
use esr_core::spatial::{answer_deviation, SpatialSpec};
use esr_core::value::Value;
use esr_net::latency::LatencyModel;
use esr_net::topology::LinkConfig;
use esr_replica::cluster::{ClusterConfig, Method, SimCluster};
use esr_sim::time::Duration;

use crate::gen::{KeyDist, UpdateMix, WorkloadGen};
use crate::metrics::CountSummary;

/// Parameters.
#[derive(Debug, Clone)]
pub struct E11Params {
    /// Deviation budgets (value units) to sweep.
    pub budgets: Vec<u64>,
    /// Replica count.
    pub sites: usize,
    /// Objects.
    pub objects: u64,
    /// Probes per budget.
    pub probes: usize,
    /// Updates between probes.
    pub updates_per_probe: usize,
    /// Seed.
    pub seed: u64,
}

impl E11Params {
    /// Test-sized parameters.
    pub fn quick() -> Self {
        Self {
            budgets: vec![0, 10, 50, u64::MAX],
            sites: 4,
            objects: 4,
            probes: 25,
            updates_per_probe: 3,
            seed: 111,
        }
    }

    /// Full parameters.
    pub fn full() -> Self {
        Self {
            budgets: vec![0, 5, 10, 25, 50, 100, u64::MAX],
            probes: 200,
            ..Self::quick()
        }
    }
}

/// One row.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// The deviation budget (`u64::MAX` = unbounded).
    pub budget: u64,
    /// Probes admitted by the criterion.
    pub admitted: usize,
    /// Total probes.
    pub probes: usize,
    /// Measured answer error (value units) across admitted probes.
    pub answer_error: CountSummary,
    /// Admitted probes whose measured error exceeded the budget (must
    /// be 0).
    pub violations: usize,
}

/// Runs the sweep.
pub fn run(p: &E11Params) -> Vec<E11Row> {
    let read_set: Vec<ObjectId> = (0..p.objects).map(ObjectId).collect();
    let mut rows = Vec::new();
    for &budget in &p.budgets {
        let cfg = ClusterConfig::new(Method::Commu)
            .with_sites(p.sites)
            .with_link(LinkConfig::reliable(LatencyModel::Uniform(
                Duration::from_millis(1),
                Duration::from_millis(60),
            )))
            .with_seed(p.seed);
        let mut cluster = SimCluster::new(cfg);
        let mut gen = WorkloadGen::new(
            p.objects,
            KeyDist::Uniform,
            UpdateMix::Increments,
            p.sites as u64,
            Duration::from_millis(2),
            p.seed,
        );
        let mut admitted = 0;
        let mut errors = Vec::new();
        let mut violations = 0;
        for q in 0..p.probes {
            for _ in 0..p.updates_per_probe {
                let u = gen.next_update();
                let t = cluster.now() + u.gap;
                cluster.advance_to(t);
                cluster.submit_update(SiteId(u.origin_index), u.ops);
            }
            for _ in 0..2 {
                cluster.step();
            }
            let site = SiteId(q as u64 % p.sites as u64);
            let out =
                cluster.try_query_spatial(site, &read_set, SpatialSpec::MaxValueDeviation(budget));
            if out.admitted {
                admitted += 1;
                // Authoritative truth: all submitted updates applied.
                let oracle = cluster.expected_state();
                let truth: Vec<Value> = read_set
                    .iter()
                    .map(|o| oracle.get(o).cloned().unwrap_or_default())
                    .collect();
                let err = answer_deviation(&out.values, &truth);
                if err > budget {
                    violations += 1;
                }
                errors.push(err);
            }
        }
        cluster.run_until_quiescent();
        assert!(cluster.converged());
        rows.push(E11Row {
            budget,
            admitted,
            probes: p.probes,
            answer_error: CountSummary::of(&errors),
            violations,
        });
    }
    rows
}

/// Renders the table.
pub fn render(p: &E11Params, rows: &[E11Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "E11: spatial value-deviation bound — COMMU, {} sites, {} probes per budget\n",
        p.sites, p.probes
    ));
    out.push_str(&format!(
        "{:>10}  {:>10}  {:>9}  {:>9}  {:>10}\n",
        "budget", "admitted", "err-mean", "err-max", "violations"
    ));
    for r in rows {
        let b = if r.budget == u64::MAX {
            "inf".to_string()
        } else {
            r.budget.to_string()
        };
        out.push_str(&format!(
            "{:>10}  {:>10}  {:>9}  {:>9}  {:>10}\n",
            b,
            format!("{}/{}", r.admitted, r.probes),
            r.answer_error.mean,
            r.answer_error.max,
            r.violations
        ));
    }
    out
}

/// The claim: no admitted query's measured error ever exceeds its
/// declared value-deviation budget, and looser budgets admit more.
pub fn claim_holds(rows: &[E11Row]) -> bool {
    let sound = rows.iter().all(|r| r.violations == 0);
    let monotone = rows
        .windows(2)
        .all(|w| w[0].budget > w[1].budget || w[0].admitted <= w[1].admitted);
    sound && monotone
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deviation_budget_bounds_answer_error() {
        let rows = run(&E11Params::quick());
        for r in &rows {
            assert_eq!(
                r.violations, 0,
                "budget {} violated (err max {})",
                r.budget, r.answer_error.max
            );
        }
        assert!(claim_holds(&rows));
    }

    #[test]
    fn zero_budget_admits_only_clean_reads() {
        let rows = run(&E11Params::quick());
        let strict = rows.iter().find(|r| r.budget == 0).unwrap();
        assert_eq!(strict.answer_error.max, 0, "admitted at 0 ⇒ exact answer");
        let unbounded = rows.iter().find(|r| r.budget == u64::MAX).unwrap();
        assert_eq!(unbounded.admitted, unbounded.probes);
        assert!(unbounded.admitted >= strict.admitted);
    }

    #[test]
    fn experiment_is_not_vacuous() {
        let rows = run(&E11Params::quick());
        let unbounded = rows.iter().find(|r| r.budget == u64::MAX).unwrap();
        assert!(
            unbounded.answer_error.max > 0,
            "unbounded probes must actually observe stale answers"
        );
    }

    #[test]
    fn render_shows_budgets() {
        let p = E11Params::quick();
        let s = render(&p, &run(&p));
        assert!(s.contains("inf"));
        assert!(s.contains("violations"));
    }
}
