//! Workload generation: key distributions and operation mixes.
//!
//! Experiments drive clusters with synthetic workloads: a key chooser
//! (uniform or Zipf-skewed), an operation mix, and an arrival process.
//! Everything draws from the deterministic [`DetRng`], so a workload is
//! reproduced exactly by its seed.

use esr_core::ids::ObjectId;
use esr_core::op::{ObjectOp, Operation};
use esr_sim::rng::DetRng;
use esr_sim::time::Duration;

/// How keys (objects) are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every object equally likely.
    Uniform,
    /// Zipf-skewed with the given exponent (`theta` ≈ 0.99 is the YCSB
    /// default; larger = more skew).
    Zipf(f64),
}

/// A key chooser over `n` objects.
#[derive(Debug, Clone)]
pub struct KeyChooser {
    n: u64,
    /// Cumulative probabilities for Zipf; empty for uniform.
    cdf: Vec<f64>,
}

impl KeyChooser {
    /// Builds a chooser over objects `0..n`.
    pub fn new(n: u64, dist: KeyDist) -> Self {
        assert!(n > 0, "need at least one object");
        let cdf = match dist {
            KeyDist::Uniform => Vec::new(),
            KeyDist::Zipf(theta) => {
                let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
                let total: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w / total;
                    *w = acc;
                }
                weights
            }
        };
        Self { n, cdf }
    }

    /// Number of objects.
    pub fn objects(&self) -> u64 {
        self.n
    }

    /// Draws one object.
    pub fn pick(&self, rng: &mut DetRng) -> ObjectId {
        if self.cdf.is_empty() {
            return ObjectId(rng.below(self.n));
        }
        let u = rng.unit();
        let idx = self.cdf.partition_point(|&p| p < u);
        ObjectId(idx.min(self.n as usize - 1) as u64)
    }

    /// Draws a read set of `k` *distinct* objects (k clamped to n).
    pub fn pick_distinct(&self, rng: &mut DetRng, k: usize) -> Vec<ObjectId> {
        let k = k.min(self.n as usize);
        let mut out = Vec::with_capacity(k);
        let mut guard = 0;
        while out.len() < k {
            let o = self.pick(rng);
            if !out.contains(&o) {
                out.push(o);
            }
            guard += 1;
            if guard > 100 * k {
                // Heavy skew can make distinct draws slow; fall back to a
                // deterministic fill.
                for i in 0..self.n {
                    let o = ObjectId(i);
                    if out.len() < k && !out.contains(&o) {
                        out.push(o);
                    }
                }
            }
        }
        out
    }
}

/// Which update operations a workload issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMix {
    /// Pure commutative increments (COMMU-friendly).
    Increments,
    /// Increments mixed with multiplies (conflicting families — the
    /// paper's `Inc`/`Mul` example); the `u64` is the percentage of
    /// multiplies (0–100).
    IncrMul(u64),
    /// Blind timestamped writes (RITU workloads). The cluster stamps
    /// versions; the generator just picks keys and values.
    BlindWrites,
}

/// One generated update request.
#[derive(Debug, Clone)]
pub struct UpdateRequest {
    /// Site where the client originates the update.
    pub origin_index: u64,
    /// Generated operations (empty for `BlindWrites`, where the cluster
    /// stamps a fresh version; use `object`/`value` instead).
    pub ops: Vec<ObjectOp>,
    /// Target object (blind writes).
    pub object: ObjectId,
    /// Value to write (blind writes).
    pub value: i64,
    /// Think time before the next request.
    pub gap: Duration,
}

/// The workload generator.
///
/// ```
/// use esr_sim::time::Duration;
/// use esr_workload::gen::{KeyDist, UpdateMix, WorkloadGen};
///
/// let mut generator = WorkloadGen::new(
///     16, KeyDist::Zipf(0.99), UpdateMix::Increments, 4,
///     Duration::from_millis(5), 42,
/// );
/// let update = generator.next_update();
/// assert!(update.origin_index < 4);
/// assert_eq!(update.ops.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    keys: KeyChooser,
    mix: UpdateMix,
    sites: u64,
    mean_gap: Duration,
    rng: DetRng,
    issued: u64,
}

impl WorkloadGen {
    /// A generator over `objects` objects and `sites` sites, issuing one
    /// update per `mean_gap` on average (exponential gaps).
    pub fn new(
        objects: u64,
        dist: KeyDist,
        mix: UpdateMix,
        sites: u64,
        mean_gap: Duration,
        seed: u64,
    ) -> Self {
        Self {
            keys: KeyChooser::new(objects, dist),
            mix,
            sites,
            mean_gap,
            rng: DetRng::new(seed),
            issued: 0,
        }
    }

    /// The key chooser (for queries that should share the distribution).
    pub fn keys(&self) -> &KeyChooser {
        &self.keys
    }

    /// Access the generator's RNG (for auxiliary draws that must stay
    /// deterministic with the workload).
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.rng
    }

    /// Generates the next update request.
    pub fn next_update(&mut self) -> UpdateRequest {
        self.issued += 1;
        let origin_index = self.rng.below(self.sites);
        let object = self.keys.pick(&mut self.rng);
        let value = self.issued as i64;
        let ops = match self.mix {
            UpdateMix::Increments => vec![ObjectOp::new(
                object,
                Operation::Incr(1 + self.rng.below(10) as i64),
            )],
            UpdateMix::IncrMul(mul_pct) => {
                if self.rng.below(100) < mul_pct {
                    vec![ObjectOp::new(
                        object,
                        Operation::MulBy(1 + self.rng.below(3) as i64),
                    )]
                } else {
                    vec![ObjectOp::new(
                        object,
                        Operation::Incr(1 + self.rng.below(10) as i64),
                    )]
                }
            }
            UpdateMix::BlindWrites => Vec::new(),
        };
        let gap = if self.mean_gap == Duration::ZERO {
            Duration::ZERO
        } else {
            self.rng.exponential(self.mean_gap)
        };
        UpdateRequest {
            origin_index,
            ops,
            object,
            value,
            gap,
        }
    }

    /// Generates a query read set of `k` distinct keys.
    pub fn next_read_set(&mut self, k: usize) -> Vec<ObjectId> {
        let keys = self.keys.clone();
        keys.pick_distinct(&mut self.rng, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_all_keys() {
        let c = KeyChooser::new(10, KeyDist::Uniform);
        let mut rng = DetRng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[c.pick(&mut rng).raw() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zipf_prefers_low_keys() {
        let c = KeyChooser::new(100, KeyDist::Zipf(0.99));
        let mut rng = DetRng::new(2);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[c.pick(&mut rng).raw() as usize] += 1;
        }
        assert!(
            counts[0] > counts[50] * 5,
            "key 0 ({}) must dominate key 50 ({})",
            counts[0],
            counts[50]
        );
        // Still a valid distribution: every draw lands in range.
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 20_000);
    }

    #[test]
    fn zipf_high_theta_is_more_skewed() {
        let mut rng = DetRng::new(3);
        let mild = KeyChooser::new(50, KeyDist::Zipf(0.5));
        let harsh = KeyChooser::new(50, KeyDist::Zipf(2.0));
        let head = |c: &KeyChooser, rng: &mut DetRng| {
            (0..10_000).filter(|_| c.pick(rng).raw() == 0).count()
        };
        let mild_head = head(&mild, &mut rng);
        let harsh_head = head(&harsh, &mut rng);
        assert!(harsh_head > mild_head * 2, "{harsh_head} vs {mild_head}");
    }

    #[test]
    fn pick_distinct_returns_unique_keys() {
        let c = KeyChooser::new(20, KeyDist::Zipf(1.5));
        let mut rng = DetRng::new(4);
        for _ in 0..100 {
            let set = c.pick_distinct(&mut rng, 5);
            assert_eq!(set.len(), 5);
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "duplicates in {set:?}");
        }
    }

    #[test]
    fn pick_distinct_clamps_to_population() {
        let c = KeyChooser::new(3, KeyDist::Uniform);
        let mut rng = DetRng::new(5);
        let set = c.pick_distinct(&mut rng, 10);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn generator_is_deterministic() {
        let make = || {
            let mut g = WorkloadGen::new(
                10,
                KeyDist::Uniform,
                UpdateMix::Increments,
                4,
                Duration::from_millis(5),
                42,
            );
            (0..20).map(|_| g.next_update().ops).collect::<Vec<_>>()
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn incr_mul_mix_respects_percentage() {
        let mut g = WorkloadGen::new(
            5,
            KeyDist::Uniform,
            UpdateMix::IncrMul(30),
            2,
            Duration::ZERO,
            7,
        );
        let muls = (0..5000)
            .filter(|_| {
                matches!(
                    g.next_update().ops[0].op,
                    Operation::MulBy(_)
                )
            })
            .count();
        assert!((1200..1800).contains(&muls), "got {muls} muls out of 5000");
    }

    #[test]
    fn blind_writes_have_no_ops_but_carry_key_value() {
        let mut g = WorkloadGen::new(
            5,
            KeyDist::Uniform,
            UpdateMix::BlindWrites,
            2,
            Duration::ZERO,
            7,
        );
        let u = g.next_update();
        assert!(u.ops.is_empty());
        assert!(u.object.raw() < 5);
        assert_eq!(u.value, 1);
    }

    #[test]
    fn origins_spread_over_sites() {
        let mut g = WorkloadGen::new(
            5,
            KeyDist::Uniform,
            UpdateMix::Increments,
            4,
            Duration::ZERO,
            9,
        );
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[g.next_update().origin_index as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
