//! Pre-registered instrument bundles for the hot paths.
//!
//! A [`SiteInstruments`] bundles every per-site series one replica site
//! implementation updates, so the apply path never touches the
//! registry mutex — just the handles' relaxed atomics. The bundle is an
//! `Option<Arc<…>>`: `Default` gives a detached no-op (one branch per
//! call), which is what every site starts with until a cluster or
//! daemon attaches metrics.
//!
//! [`LinkInstruments`] does the same for one directed TCP link,
//! [`ReactorInstruments`] for a daemon's poll-driven I/O reactor, and
//! [`GaugeFamily`] lazily registers one gauge per site id (divergence,
//! VTNC lag) keyed through the shared [`esr_core::fastid`] hasher.

use std::sync::{Arc, Mutex, MutexGuard};

use esr_core::fastid::FastIdMap;

use crate::registry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Largest epsilon limit a gauge can represent; `u64` limits at or
/// above this (the UNBOUNDED spec) clamp here.
const GAUGE_MAX: i64 = i64::MAX;

fn as_gauge(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(GAUGE_MAX)
}

#[derive(Debug)]
struct SiteCells {
    msets_delivered: Counter,
    msets_applied: Counter,
    redelivered: Counter,
    batches: Counter,
    batch_msets: Counter,
    backlog: Gauge,
    at_risk: Gauge,
    compensations: Counter,
    lock_counter_high_water: Gauge,
    vtnc_time: Gauge,
    vtnc_lag: Gauge,
    query_epsilon_charged: Gauge,
    query_epsilon_limit: Gauge,
    epsilon_charged_total: Counter,
    queries_admitted: Counter,
    queries_rejected: Counter,
}

/// Per-site instrument bundle (no-op until attached).
#[derive(Debug, Clone, Default)]
pub struct SiteInstruments {
    cells: Option<Arc<SiteCells>>,
}

impl SiteInstruments {
    /// Registers the full per-site series family for `method` at
    /// `site` and returns live handles. Every series appears in the
    /// registry immediately (at zero), so scrapes see the catalogue
    /// even before traffic.
    pub fn for_site(registry: &MetricsRegistry, method: &str, site: u64) -> Self {
        let site = site.to_string();
        let l: &[(&str, &str)] = &[("method", method), ("site", &site)];
        Self {
            cells: Some(Arc::new(SiteCells {
                msets_delivered: registry.counter("esr_msets_delivered_total", l),
                msets_applied: registry.counter("esr_msets_applied_total", l),
                redelivered: registry.counter("esr_redelivered_total", l),
                batches: registry.counter("esr_batches_total", l),
                batch_msets: registry.counter("esr_batch_msets_total", l),
                backlog: registry.gauge("esr_backlog", l),
                at_risk: registry.gauge("esr_at_risk", l),
                compensations: registry.counter("esr_compensations_total", l),
                lock_counter_high_water: registry
                    .gauge("esr_commu_lock_counter_high_water", l),
                vtnc_time: registry.gauge("esr_vtnc_time", l),
                vtnc_lag: registry.gauge("esr_vtnc_lag", l),
                query_epsilon_charged: registry.gauge("esr_query_epsilon_charged", l),
                query_epsilon_limit: registry.gauge("esr_query_epsilon_limit", l),
                epsilon_charged_total: registry.counter("esr_epsilon_charged_total", l),
                queries_admitted: registry.counter("esr_queries_admitted_total", l),
                queries_rejected: registry.counter("esr_queries_rejected_total", l),
            })),
        }
    }

    /// Whether this bundle is attached to a registry.
    pub fn is_attached(&self) -> bool {
        self.cells.is_some()
    }

    /// One delivery call carrying `msets` MSets, of which `applied`
    /// were newly applied and `redelivered` were duplicate-suppressed.
    /// Call once per batch with aggregated counts — the whole point is
    /// a constant number of atomic ops per batch.
    #[inline]
    pub fn delivered(&self, msets: u64, applied: u64, redelivered: u64) {
        if let Some(c) = &self.cells {
            c.msets_delivered.add(msets);
            c.msets_applied.add(applied);
            if redelivered > 0 {
                c.redelivered.add(redelivered);
            }
        }
    }

    /// One batched delivery of `msets` MSets (feeds the coalesce-ratio
    /// series `esr_batch_msets_total / esr_batches_total`).
    #[inline]
    pub fn batch(&self, msets: u64) {
        if let Some(c) = &self.cells {
            c.batches.inc();
            c.batch_msets.add(msets);
        }
    }

    /// Current hold-back backlog (ORDUP) — 0 for methods that apply
    /// immediately.
    #[inline]
    pub fn set_backlog(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.backlog.set(as_gauge(n));
        }
    }

    /// Current at-risk set size (COMPE: applied but undecided ETs).
    #[inline]
    pub fn set_at_risk(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.at_risk.set(as_gauge(n));
        }
    }

    /// Compensations executed (COMPE aborts rolled back).
    #[inline]
    pub fn compensations(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.compensations.add(n);
        }
    }

    /// Raises the COMMU per-object lock-counter high-water mark.
    #[inline]
    pub fn lock_counter_high_water(&self, v: u64) {
        if let Some(c) = &self.cells {
            c.lock_counter_high_water.set_max(as_gauge(v));
        }
    }

    /// The site's current certified VTNC horizon (RITU-MV).
    #[inline]
    pub fn set_vtnc(&self, time: u64) {
        if let Some(c) = &self.cells {
            c.vtnc_time.set(as_gauge(time));
        }
    }

    /// RITU-MV: how far certified visibility trails the newest version
    /// this site has installed (0 once the horizon catches up). The sim
    /// cluster additionally publishes a globally-computed
    /// `esr_vtnc_lag{site}` that also counts versions not yet delivered
    /// here.
    #[inline]
    pub fn set_vtnc_lag(&self, lag: u64) {
        if let Some(c) = &self.cells {
            c.vtnc_lag.set(as_gauge(lag));
        }
    }

    /// Overrides the last-query epsilon gauges without touching the
    /// admitted/rejected totals — for a wrapper (the sim cluster) whose
    /// admission decision happens outside the site's `query` call, so
    /// the authoritative charge and limit arrive after the site already
    /// ticked its own view.
    #[inline]
    pub fn query_gauges(&self, charged: u64, limit: u64) {
        if let Some(c) = &self.cells {
            c.query_epsilon_charged.set(as_gauge(charged));
            c.query_epsilon_limit.set(as_gauge(limit));
        }
    }

    /// One query outcome: epsilon `charged` against `limit`,
    /// admitted or rejected. Records both the last-query gauges and the
    /// running totals.
    #[inline]
    pub fn query(&self, charged: u64, limit: u64, admitted: bool) {
        if let Some(c) = &self.cells {
            c.query_epsilon_charged.set(as_gauge(charged));
            c.query_epsilon_limit.set(as_gauge(limit));
            if admitted {
                c.epsilon_charged_total.add(charged);
                c.queries_admitted.inc();
            } else {
                c.queries_rejected.inc();
            }
        }
    }
}

#[derive(Debug)]
struct LinkCells {
    queue_depth: Gauge,
    queue_age_micros: Gauge,
    sends: Counter,
    retransmits: Counter,
    dials: Counter,
    acks: Counter,
}

/// Per-link (directed `from -> to`) instrument bundle for the TCP link
/// manager. No-op until attached.
#[derive(Debug, Clone, Default)]
pub struct LinkInstruments {
    cells: Option<Arc<LinkCells>>,
}

impl LinkInstruments {
    /// Registers the link series family for the directed link named
    /// `link` (convention: `"1->2"`).
    pub fn for_link(registry: &MetricsRegistry, link: &str) -> Self {
        let l: &[(&str, &str)] = &[("link", link)];
        Self {
            cells: Some(Arc::new(LinkCells {
                queue_depth: registry.gauge("esr_link_queue_depth", l),
                queue_age_micros: registry.gauge("esr_link_queue_age_micros", l),
                sends: registry.counter("esr_link_sends_total", l),
                retransmits: registry.counter("esr_link_retransmits_total", l),
                dials: registry.counter("esr_link_dials_total", l),
                acks: registry.counter("esr_link_acks_total", l),
            })),
        }
    }

    /// Whether this bundle is attached to a registry.
    pub fn is_attached(&self) -> bool {
        self.cells.is_some()
    }

    /// Updates the queue gauges: current `depth` and the age in
    /// microseconds of the oldest continuously pending stretch (0 when
    /// the queue is empty).
    #[inline]
    pub fn queue(&self, depth: u64, age_micros: u64) {
        if let Some(c) = &self.cells {
            c.queue_depth.set(as_gauge(depth));
            c.queue_age_micros.set(as_gauge(age_micros));
        }
    }

    /// `n` frames written to the socket.
    #[inline]
    pub fn sent(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.sends.add(n);
        }
    }

    /// `n` frames re-sent after a reconnect (at-least-once retries).
    #[inline]
    pub fn retransmitted(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.retransmits.add(n);
        }
    }

    /// One dial attempt that produced a connection.
    #[inline]
    pub fn dialed(&self) {
        if let Some(c) = &self.cells {
            c.dials.inc();
        }
    }

    /// `n` acknowledgements reaped from the peer.
    #[inline]
    pub fn acked(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.acks.add(n);
        }
    }
}

#[derive(Debug)]
struct ReactorCells {
    connections: Gauge,
    wakeups: Counter,
    poll_micros: Histogram,
    ack_batch: Histogram,
}

/// Instrument bundle for one poll-driven I/O reactor: how many sockets
/// it is multiplexing, how often the readiness loop wakes, how long
/// each `poll(2)` call blocks, and how many queue entries each outgoing
/// acknowledgement frame retires. No-op until attached.
#[derive(Debug, Clone, Default)]
pub struct ReactorInstruments {
    cells: Option<Arc<ReactorCells>>,
}

impl ReactorInstruments {
    /// Registers the reactor series family.
    pub fn for_registry(registry: &MetricsRegistry) -> Self {
        Self {
            cells: Some(Arc::new(ReactorCells {
                connections: registry.gauge("esr_reactor_connections", &[]),
                wakeups: registry.counter("esr_reactor_wakeups_total", &[]),
                poll_micros: registry.histogram("esr_reactor_poll_micros", &[]),
                ack_batch: registry.histogram("esr_ack_batch_size", &[]),
            })),
        }
    }

    /// Whether this bundle is attached to a registry.
    pub fn is_attached(&self) -> bool {
        self.cells.is_some()
    }

    /// One accepted connection entered the readiness loop.
    #[inline]
    pub fn connection_opened(&self) {
        if let Some(c) = &self.cells {
            c.connections.add(1);
        }
    }

    /// One connection left the readiness loop.
    #[inline]
    pub fn connection_closed(&self) {
        if let Some(c) = &self.cells {
            c.connections.add(-1);
        }
    }

    /// One readiness wake-up (a `poll` return with at least one ready
    /// descriptor).
    #[inline]
    pub fn wakeup(&self) {
        if let Some(c) = &self.cells {
            c.wakeups.inc();
        }
    }

    /// How long one `poll(2)` call blocked, in microseconds.
    #[inline]
    pub fn poll_tick(&self, micros: u64) {
        if let Some(c) = &self.cells {
            c.poll_micros.record(micros);
        }
    }

    /// One acknowledgement frame retiring `n` queue entries.
    #[inline]
    pub fn ack_batch(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.ack_batch.record(n);
        }
    }
}

#[derive(Debug)]
struct CkptCells {
    checkpoints: Counter,
    ckpt_bytes: Gauge,
    journal_bytes: Gauge,
    journal_live: Gauge,
    truncated: Counter,
    ckpt_latency: Histogram,
    replay_latency: Histogram,
}

/// Instrument bundle for one site's checkpoint subsystem: how many
/// snapshots it installed, how large the newest image and the live
/// journal are, how many journal entries checkpoint coverage retired,
/// and how long cutting+installing a snapshot and replaying the boot
/// suffix took. No-op until attached.
#[derive(Debug, Clone, Default)]
pub struct CkptInstruments {
    cells: Option<Arc<CkptCells>>,
}

impl CkptInstruments {
    /// Registers the checkpoint series family for `site`.
    pub fn for_site(registry: &MetricsRegistry, site: u64) -> Self {
        let site = site.to_string();
        let l: &[(&str, &str)] = &[("site", &site)];
        Self {
            cells: Some(Arc::new(CkptCells {
                checkpoints: registry.counter("esr_checkpoint_total", l),
                ckpt_bytes: registry.gauge("esr_checkpoint_bytes", l),
                journal_bytes: registry.gauge("esr_journal_bytes", l),
                journal_live: registry.gauge("esr_journal_live_entries", l),
                truncated: registry.counter("esr_journal_truncated_total", l),
                ckpt_latency: registry.histogram("esr_checkpoint_latency_micros", l),
                replay_latency: registry.histogram("esr_suffix_replay_latency_micros", l),
            })),
        }
    }

    /// Whether this bundle is attached to a registry.
    pub fn is_attached(&self) -> bool {
        self.cells.is_some()
    }

    /// One snapshot installed: its container size and how long the
    /// cut-to-durable path took.
    #[inline]
    pub fn installed(&self, bytes: u64, micros: u64) {
        if let Some(c) = &self.cells {
            c.checkpoints.inc();
            c.ckpt_bytes.set(as_gauge(bytes));
            c.ckpt_latency.record(micros);
        }
    }

    /// Current journal occupancy: file bytes and live (unretired)
    /// entries.
    #[inline]
    pub fn journal(&self, bytes: u64, live_entries: u64) {
        if let Some(c) = &self.cells {
            c.journal_bytes.set(as_gauge(bytes));
            c.journal_live.set(as_gauge(live_entries));
        }
    }

    /// `n` journal entries retired by checkpoint coverage.
    #[inline]
    pub fn truncated(&self, n: u64) {
        if let Some(c) = &self.cells {
            c.truncated.add(n);
        }
    }

    /// One boot-time journal-suffix replay after a snapshot restore.
    #[inline]
    pub fn suffix_replay(&self, micros: u64) {
        if let Some(c) = &self.cells {
            c.replay_latency.record(micros);
        }
    }
}

/// A family of gauges sharing a name, one per site id — lazily
/// registered on first touch. Used for cluster-computed per-site series
/// (replica divergence, VTNC lag) where the set of sites is dynamic.
#[derive(Debug)]
pub struct GaugeFamily {
    registry: MetricsRegistry,
    name: &'static str,
    by_site: Mutex<FastIdMap<u64, Gauge>>,
}

impl GaugeFamily {
    /// A family named `name`, labelled by `site`.
    pub fn new(registry: &MetricsRegistry, name: &'static str) -> Self {
        Self {
            registry: registry.clone(),
            name,
            by_site: Mutex::new(FastIdMap::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, FastIdMap<u64, Gauge>> {
        self.by_site
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Sets the gauge for `site` (registering it on first touch).
    pub fn set(&self, site: u64, v: i64) {
        let mut map = self.lock();
        let gauge = map.entry(site).or_insert_with(|| {
            self.registry
                .gauge(self.name, &[("site", &site.to_string())])
        });
        gauge.set(v);
    }

    /// Reads the gauge for `site` (0 if never set).
    pub fn get(&self, site: u64) -> i64 {
        self.lock().get(&site).map_or(0, Gauge::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detached_bundles_are_noops() {
        let s = SiteInstruments::default();
        assert!(!s.is_attached());
        s.delivered(10, 10, 0);
        s.query(3, 5, true);
        let link = LinkInstruments::default();
        assert!(!link.is_attached());
        link.queue(4, 100);
        link.sent(2);
        let reactor = ReactorInstruments::default();
        assert!(!reactor.is_attached());
        reactor.connection_opened();
        reactor.wakeup();
        reactor.poll_tick(5);
        reactor.ack_batch(3);
    }

    #[test]
    fn reactor_bundle_updates_series() {
        let r = MetricsRegistry::new();
        let obs = ReactorInstruments::for_registry(&r);
        assert!(obs.is_attached());
        obs.connection_opened();
        obs.connection_opened();
        obs.connection_closed();
        obs.wakeup();
        obs.wakeup();
        obs.ack_batch(4);
        let snap = r.snapshot();
        assert_eq!(snap.value("esr_reactor_connections", &[]), Some(1));
        assert_eq!(snap.value("esr_reactor_wakeups_total", &[]), Some(2));
        // Histograms answer value() with their observation count.
        assert_eq!(snap.value("esr_ack_batch_size", &[]), Some(1));
        assert!(r.render().contains("esr_ack_batch_size_sum 4"));
    }

    #[test]
    fn site_bundle_registers_full_catalogue_at_zero() {
        let r = MetricsRegistry::new();
        let s = SiteInstruments::for_site(&r, "COMMU", 0);
        assert!(s.is_attached());
        let snap = r.snapshot();
        for name in [
            "esr_msets_delivered_total",
            "esr_msets_applied_total",
            "esr_redelivered_total",
            "esr_batches_total",
            "esr_batch_msets_total",
            "esr_backlog",
            "esr_at_risk",
            "esr_compensations_total",
            "esr_commu_lock_counter_high_water",
            "esr_vtnc_time",
            "esr_query_epsilon_charged",
            "esr_query_epsilon_limit",
            "esr_epsilon_charged_total",
            "esr_queries_admitted_total",
            "esr_queries_rejected_total",
        ] {
            assert_eq!(
                snap.value(name, &[("method", "COMMU"), ("site", "0")]),
                Some(0),
                "{name} pre-registered"
            );
        }
    }

    #[test]
    fn site_bundle_updates_series() {
        let r = MetricsRegistry::new();
        let s = SiteInstruments::for_site(&r, "ORDUP", 2);
        s.delivered(5, 4, 1);
        s.batch(5);
        s.set_backlog(3);
        s.query(2, 10, true);
        s.query(11, 10, false);
        let l = &[("method", "ORDUP"), ("site", "2")];
        let snap = r.snapshot();
        assert_eq!(snap.value("esr_msets_delivered_total", l), Some(5));
        assert_eq!(snap.value("esr_msets_applied_total", l), Some(4));
        assert_eq!(snap.value("esr_redelivered_total", l), Some(1));
        assert_eq!(snap.value("esr_batch_msets_total", l), Some(5));
        assert_eq!(snap.value("esr_backlog", l), Some(3));
        assert_eq!(snap.value("esr_epsilon_charged_total", l), Some(2));
        assert_eq!(snap.value("esr_queries_admitted_total", l), Some(1));
        assert_eq!(snap.value("esr_queries_rejected_total", l), Some(1));
        assert_eq!(snap.value("esr_query_epsilon_charged", l), Some(11));
        assert_eq!(snap.value("esr_query_epsilon_limit", l), Some(10));
    }

    #[test]
    fn unbounded_epsilon_clamps_to_gauge_max() {
        let r = MetricsRegistry::new();
        let s = SiteInstruments::for_site(&r, "COMMU", 0);
        s.query(0, u64::MAX, true);
        let l = &[("method", "COMMU"), ("site", "0")];
        assert_eq!(
            r.snapshot().value("esr_query_epsilon_limit", l),
            Some(i64::MAX)
        );
    }

    #[test]
    fn ckpt_bundle_updates_series() {
        let r = MetricsRegistry::new();
        let c = CkptInstruments::for_site(&r, 1);
        assert!(c.is_attached());
        c.installed(2048, 150);
        c.journal(4096, 17);
        c.truncated(9);
        c.suffix_replay(75);
        let l = &[("site", "1")];
        let snap = r.snapshot();
        assert_eq!(snap.value("esr_checkpoint_total", l), Some(1));
        assert_eq!(snap.value("esr_checkpoint_bytes", l), Some(2048));
        assert_eq!(snap.value("esr_journal_bytes", l), Some(4096));
        assert_eq!(snap.value("esr_journal_live_entries", l), Some(17));
        assert_eq!(snap.value("esr_journal_truncated_total", l), Some(9));
        assert_eq!(snap.value("esr_checkpoint_latency_micros", l), Some(1));
        assert_eq!(snap.value("esr_suffix_replay_latency_micros", l), Some(1));
        // Detached bundle is a no-op.
        let d = CkptInstruments::default();
        assert!(!d.is_attached());
        d.installed(1, 1);
        d.journal(1, 1);
        d.truncated(1);
        d.suffix_replay(1);
    }

    #[test]
    fn gauge_family_registers_per_site() {
        let r = MetricsRegistry::new();
        let f = GaugeFamily::new(&r, "esr_divergence");
        f.set(0, 2);
        f.set(1, 0);
        f.set(0, 0);
        assert_eq!(f.get(0), 0);
        assert_eq!(f.get(7), 0, "never-set site reads 0");
        let snap = r.snapshot();
        assert_eq!(snap.value("esr_divergence", &[("site", "0")]), Some(0));
        assert_eq!(snap.value("esr_divergence", &[("site", "1")]), Some(0));
    }
}
