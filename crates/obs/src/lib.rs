//! # esr-obs — observability for the ESR runtimes
//!
//! The paper's claims are all about *bounded* quantities: a query's
//! accumulated epsilon never exceeds its limit, COMMU lock-counters
//! return to zero at quiescence, RITU sites trail the newest certified
//! version by a finite lag, replicas diverge only while updates are in
//! flight. This crate makes those quantities observable at runtime
//! instead of only post-hoc in test oracles:
//!
//! * [`MetricsRegistry`] — a lock-cheap registry of counters, gauges,
//!   and histograms. Registration takes a mutex (rare); every handle is
//!   a plain atomic afterwards, so the apply hot path pays a few
//!   relaxed atomic ops per *batch*. Snapshots are deterministic: the
//!   series map is ordered, the rendering is integer-only, and nothing
//!   in the registry reads a wall clock — under the sim's virtual clock
//!   the same seed yields a byte-identical [`MetricsSnapshot`].
//! * [`SiteInstruments`] / [`LinkInstruments`] — pre-registered handle
//!   bundles threaded through the five replica-site implementations and
//!   the TCP link manager. Both are no-ops when detached (`Default`),
//!   so uninstrumented paths pay one branch.
//! * [`EventRing`] — a bounded in-memory ring of causally ordered
//!   structured trace events (the daemon's flight recorder), dumpable
//!   over the wire via `esrctl trace`.
//!
//! Zero dependencies beyond `esr-core` (for the shared
//! [`esr_core::fastid`] hasher); no wall-clock reads anywhere — callers
//! supply timestamps where they want them.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod events;
pub mod instruments;
pub mod registry;

pub use events::{EventRing, TraceEvent};
pub use instruments::{
    CkptInstruments, GaugeFamily, LinkInstruments, ReactorInstruments, SiteInstruments,
};
pub use registry::{
    quantile_from_cumulative, Counter, Gauge, Histogram, HistogramSample, MetricsRegistry,
    MetricsSnapshot, SampleValue, SeriesSample, HIST_BUCKETS,
};
