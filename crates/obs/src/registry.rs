//! The metrics registry: named series of counters, gauges, and
//! histograms with deterministic snapshots and Prometheus-text
//! rendering.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost.** A handle ([`Counter`], [`Gauge`]) is one
//!    `Arc<Atomic*>`; updating it is a relaxed atomic RMW. The registry
//!    mutex is taken only at registration (site boot, link spawn) and
//!    at snapshot time — never per MSet.
//! 2. **Determinism.** Series are keyed in a `BTreeMap` by
//!    `(name, sorted labels)`, values are integers, and the registry
//!    never reads a clock. Two runs that perform the same instrument
//!    updates in the same order render byte-identical snapshots — the
//!    property the sim-determinism test pins down.
//! 3. **No dependencies.** `std` atomics and collections only.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Histogram bucket upper bounds are `2^0, 2^1, …, 2^(BUCKET_POWERS-1)`
/// (microseconds in every current use), plus a `+Inf` overflow bucket.
pub const BUCKET_POWERS: usize = 21;

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; a `Default` counter is a
/// detached cell not attached to any registry (useful as a no-op).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
///
/// Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct HistogramCells {
    buckets: [AtomicU64; BUCKET_POWERS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A histogram over power-of-two buckets (plus `+Inf`).
///
/// Used only on wall-clocked paths (daemon apply/RPC latency); the sim
/// never records into one, keeping sim snapshots clock-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = (u64::BITS - v.saturating_sub(1).leading_zeros()) as usize;
        let idx = idx.min(BUCKET_POWERS); // overflow → +Inf bucket
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSample {
        let mut buckets = [0u64; BUCKET_POWERS + 1];
        for (slot, cell) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *slot = cell.load(Ordering::Relaxed);
        }
        HistogramSample {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// `(name, sorted labels)` — the `BTreeMap` key, so snapshot order is
/// total and stable.
type SeriesKey = (String, Vec<(String, String)>);

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    ls.sort();
    (name.to_owned(), ls)
}

/// The registry: a shared, ordered map from series key to instrument.
///
/// Cloning is cheap (an `Arc`); every layer of a cluster shares one.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    series: Arc<Mutex<BTreeMap<SeriesKey, Instrument>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<SeriesKey, Instrument>> {
        // A poisoned registry still holds consistent atomics; recover.
        self.series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers (or retrieves) a counter for `name` + `labels`.
    ///
    /// Re-registering the same series returns a handle to the same
    /// cell. Registering a name that exists with a different instrument
    /// kind returns a fresh detached handle (the registry keeps the
    /// original) — a programming error surfaced by tests, not a panic.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Registers (or retrieves) a gauge for `name` + `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Registers (or retrieves) a histogram for `name` + `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Histogram::default()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => Histogram::default(),
        }
    }

    /// A deterministic point-in-time snapshot of every series, ordered
    /// by `(name, labels)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let samples = map
            .iter()
            .map(|((name, labels), inst)| SeriesSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Renders the current state as Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSample {
    /// Metric name (e.g. `esr_msets_applied_total`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// A sampled instrument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets + sum + count.
    Histogram(HistogramSample),
}

/// Snapshot of one histogram's cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Per-bucket (non-cumulative) observation counts; the last slot is
    /// the `+Inf` overflow bucket.
    pub buckets: [u64; BUCKET_POWERS + 1],
    /// Sum of observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

/// A deterministic, ordered snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All series, ordered by `(name, labels)`.
    pub samples: Vec<SeriesSample>,
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Looks up a sampled value by name and labels (labels in any
    /// order). Histograms answer with their count.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let (_, want) = series_key(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| match &s.value {
                SampleValue::Counter(v) => i64::try_from(*v).unwrap_or(i64::MAX),
                SampleValue::Gauge(v) => *v,
                SampleValue::Histogram(h) => i64::try_from(h.count).unwrap_or(i64::MAX),
            })
    }

    /// Every sample of `name`, across all label sets.
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SeriesSample> + 'a {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// Renders Prometheus text exposition format: one
    /// `name{labels} value` line per counter/gauge, cumulative
    /// `_bucket`/`_sum`/`_count` lines per histogram. Integer-only and
    /// ordered, so equal snapshots render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                SampleValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        cum += b;
                        let bound = if i < BUCKET_POWERS {
                            (1u64 << i).to_string()
                        } else {
                            "+Inf".to_owned()
                        };
                        let _ = write!(out, "{}_bucket", s.name);
                        write_labels(&mut out, &s.labels, Some(("le", &bound)));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{}_sum", s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.sum);
                    let _ = write!(out, "{}_count", s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = MetricsRegistry::new();
        let c = r.counter("hits_total", &[("site", "0")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same series → same cell.
        let c2 = r.counter("hits_total", &[("site", "0")]);
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = r.gauge("depth", &[]);
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = MetricsRegistry::new();
        let a = r.counter("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn kind_mismatch_yields_detached_handle() {
        let r = MetricsRegistry::new();
        let c = r.counter("x", &[]);
        c.inc();
        let g = r.gauge("x", &[]);
        g.set(99);
        assert_eq!(c.get(), 1, "original untouched");
        assert_eq!(r.snapshot().value("x", &[]), Some(1));
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2, "0 and 1 in the first bucket");
        assert_eq!(s.buckets[1], 1, "2 in the <=2 bucket");
        assert_eq!(s.buckets[2], 2, "3 and 4 in the <=4 bucket");
        assert_eq!(s.buckets[10], 1, "1000 in the <=1024 bucket");
        assert_eq!(s.buckets[BUCKET_POWERS], 1, "u64::MAX overflows to +Inf");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("z_total", &[]).inc();
        r.gauge("a_gauge", &[("site", "1")]).set(-2);
        r.gauge("a_gauge", &[("site", "0")]).set(5);
        let text = r.render();
        assert_eq!(
            text,
            "a_gauge{site=\"0\"} 5\na_gauge{site=\"1\"} -2\nz_total 1\n"
        );
        // Same updates → byte-identical render.
        let r2 = MetricsRegistry::new();
        r2.gauge("a_gauge", &[("site", "0")]).set(5);
        r2.gauge("a_gauge", &[("site", "1")]).set(-2);
        r2.counter("z_total", &[]).inc();
        assert_eq!(r2.render(), text);
        assert_eq!(r2.snapshot(), r.snapshot());
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_micros", &[]);
        h.record(1);
        h.record(3);
        let text = r.render();
        assert!(text.contains("lat_micros_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"2\"} 1\n"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"4\"} 2\n"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("lat_micros_sum 4\n"), "{text}");
        assert!(text.contains("lat_micros_count 2\n"), "{text}");
    }
}
