//! The metrics registry: named series of counters, gauges, and
//! histograms with deterministic snapshots and Prometheus-text
//! rendering.
//!
//! Design constraints, in order:
//!
//! 1. **Hot-path cost.** A handle ([`Counter`], [`Gauge`]) is one
//!    `Arc<Atomic*>`; updating it is a relaxed atomic RMW. The registry
//!    mutex is taken only at registration (site boot, link spawn) and
//!    at snapshot time — never per MSet.
//! 2. **Determinism.** Series are keyed in a `BTreeMap` by
//!    `(name, sorted labels)`, values are integers, and the registry
//!    never reads a clock. Two runs that perform the same instrument
//!    updates in the same order render byte-identical snapshots — the
//!    property the sim-determinism test pins down.
//! 3. **No dependencies.** `std` atomics and collections only.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// The histogram range covers `1 … 2^(BUCKET_POWERS-1)` (microseconds
/// in every current use); larger observations land in a `+Inf`
/// overflow bucket.
pub const BUCKET_POWERS: usize = 21;

/// Finite buckets in the log-linear histogram layout: bounds `1..=4`
/// one-wide, then every octave `(2^p, 2^(p+1)]` split into 4 equal
/// sub-buckets up to `2^(BUCKET_POWERS-1)`. Sub-bucketing caps the
/// relative bucket width at 25%, so a p999 read is never a 2x-wide
/// guess (the power-of-two layout's tail resolution).
pub const HIST_BUCKETS: usize = 4 + 4 * (BUCKET_POWERS - 3);

/// The bucket index an observation `v` lands in (`HIST_BUCKETS` =
/// the `+Inf` overflow slot).
fn bucket_idx(v: u64) -> usize {
    if v <= 4 {
        return v.saturating_sub(1) as usize;
    }
    let m = v - 1;
    let p = (63 - m.leading_zeros()) as usize; // MSB position, >= 2
    let idx = 4 + (p - 2) * 4 + ((m >> (p - 2)) as usize - 4);
    idx.min(HIST_BUCKETS)
}

/// The inclusive upper bound of finite bucket `idx`.
fn bucket_bound(idx: usize) -> u64 {
    if idx < 4 {
        return idx as u64 + 1;
    }
    let g = (idx - 4) / 4;
    let s = (idx - 4) % 4;
    (1u64 << (g + 2)) + (s as u64 + 1) * (1u64 << g)
}

/// The inclusive lower edge of bucket `idx` (0 for the first).
fn bucket_lower(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        bucket_bound(idx - 1)
    }
}

/// A monotonically increasing counter.
///
/// Cloning shares the underlying cell; a `Default` counter is a
/// detached cell not attached to any registry (useful as a no-op).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can move both ways.
///
/// Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HIST_BUCKETS + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        Self {
            // `[AtomicU64; N]` has no `Default` past N = 32.
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A histogram over log-linear buckets (4 sub-buckets per octave,
/// plus `+Inf`).
///
/// Used only on wall-clocked paths (daemon apply/RPC latency); the sim
/// never records into one, keeping sim snapshots clock-free.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_idx(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSample {
        let mut buckets = [0u64; HIST_BUCKETS + 1];
        for (slot, cell) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *slot = cell.load(Ordering::Relaxed);
        }
        HistogramSample {
            buckets,
            sum: self.sum(),
            count: self.count(),
        }
    }
}

#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// `(name, sorted labels)` — the `BTreeMap` key, so snapshot order is
/// total and stable.
type SeriesKey = (String, Vec<(String, String)>);

fn series_key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    let mut ls: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    ls.sort();
    (name.to_owned(), ls)
}

/// Records an instrument-kind collision on the already-locked series
/// map (taking the guard's target directly avoids re-entering the
/// registry mutex). Debug builds panic — the collision is a programming
/// error and the call site is in the backtrace. Release builds count it
/// under `esr_obs_type_collisions_total` so it is visible on every
/// scrape instead of silently splitting writers onto a detached cell.
fn note_kind_collision(map: &mut BTreeMap<SeriesKey, Instrument>, name: &str) {
    debug_assert!(
        false,
        "metric '{name}' re-registered as a different instrument kind"
    );
    let key = series_key("esr_obs_type_collisions_total", &[]);
    if let Instrument::Counter(c) = map
        .entry(key)
        .or_insert_with(|| Instrument::Counter(Counter::default()))
    {
        c.inc();
    }
}

/// The registry: a shared, ordered map from series key to instrument.
///
/// Cloning is cheap (an `Arc`); every layer of a cluster shares one.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    series: Arc<Mutex<BTreeMap<SeriesKey, Instrument>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<SeriesKey, Instrument>> {
        // A poisoned registry still holds consistent atomics; recover.
        self.series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Registers (or retrieves) a counter for `name` + `labels`.
    ///
    /// Re-registering the same series returns a handle to the same
    /// cell. Registering a name that exists with a different instrument
    /// kind is a programming error: debug builds panic at the call
    /// site; release builds keep the original series, bump
    /// `esr_obs_type_collisions_total` (so the bug shows on every
    /// scrape), and return a fresh detached handle whose updates go
    /// nowhere.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Counter::default()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => {
                note_kind_collision(&mut map, name);
                Counter::default()
            }
        }
    }

    /// Registers (or retrieves) a gauge for `name` + `labels`. Kind
    /// collisions behave as in [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Gauge::default()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => {
                note_kind_collision(&mut map, name);
                Gauge::default()
            }
        }
    }

    /// Registers (or retrieves) a histogram for `name` + `labels`. Kind
    /// collisions behave as in [`MetricsRegistry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = series_key(name, labels);
        let mut map = self.lock();
        match map
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Histogram::default()))
        {
            Instrument::Histogram(h) => h.clone(),
            _ => {
                note_kind_collision(&mut map, name);
                Histogram::default()
            }
        }
    }

    /// A deterministic point-in-time snapshot of every series, ordered
    /// by `(name, labels)`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.lock();
        let samples = map
            .iter()
            .map(|((name, labels), inst)| SeriesSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match inst {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge(g.get()),
                    Instrument::Histogram(h) => SampleValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        MetricsSnapshot { samples }
    }

    /// Renders the current state as Prometheus text exposition format.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSample {
    /// Metric name (e.g. `esr_msets_applied_total`).
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SampleValue,
}

/// A sampled instrument value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram buckets + sum + count.
    Histogram(Box<HistogramSample>),
}

/// Snapshot of one histogram's cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSample {
    /// Per-bucket (non-cumulative) observation counts; the last slot is
    /// the `+Inf` overflow bucket.
    pub buckets: [u64; HIST_BUCKETS + 1],
    /// Sum of observations.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSample {
    /// The `q`-quantile (`0 < q <= 1`) by rank, linearly interpolated
    /// inside the winning bucket. When every recorded value is
    /// distinct and the bucket is full the answer is exact; otherwise
    /// it errs by at most one bucket width (<= 25% relative, by the
    /// sub-bucket layout). Observations past the finite range saturate
    /// to the largest finite bound — a floor, reported rather than
    /// invented. `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            let before = cum;
            cum += b;
            if cum < target {
                continue;
            }
            if i >= HIST_BUCKETS {
                return Some(bucket_bound(HIST_BUCKETS - 1));
            }
            let lower = bucket_lower(i);
            let width = bucket_bound(i) - lower;
            let frac = (target - before) as f64 / b as f64;
            return Some(lower + (frac * width as f64).ceil() as u64);
        }
        None
    }

    /// The median.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// The 99.9th percentile.
    pub fn p999(&self) -> Option<u64> {
        self.quantile(0.999)
    }
}

/// Quantile extraction over *cumulative* `(upper_bound, count)` pairs —
/// the shape a Prometheus `_bucket` scrape yields (`u64::MAX` stands
/// for the `+Inf` bound). Same interpolation and saturation rules as
/// [`HistogramSample::quantile`]; `None` when empty.
pub fn quantile_from_cumulative(cumulative: &[(u64, u64)], q: f64) -> Option<u64> {
    let total = cumulative.last()?.1;
    if total == 0 {
        return None;
    }
    let target = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut lower = 0u64;
    let mut before = 0u64;
    for &(bound, cum) in cumulative {
        if cum >= target {
            if bound == u64::MAX {
                return Some(lower); // +Inf bucket: saturate to last finite bound
            }
            let in_bucket = cum - before;
            let frac = (target - before) as f64 / in_bucket as f64;
            return Some(lower + (frac * (bound - lower) as f64).ceil() as u64);
        }
        lower = bound;
        before = cum;
    }
    None
}

/// A deterministic, ordered snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All series, ordered by `(name, labels)`.
    pub samples: Vec<SeriesSample>,
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

impl MetricsSnapshot {
    /// Looks up a sampled value by name and labels (labels in any
    /// order). Histograms answer with their count.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        let (_, want) = series_key(name, labels);
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == want)
            .map(|s| match &s.value {
                SampleValue::Counter(v) => i64::try_from(*v).unwrap_or(i64::MAX),
                SampleValue::Gauge(v) => *v,
                SampleValue::Histogram(h) => i64::try_from(h.count).unwrap_or(i64::MAX),
            })
    }

    /// Every sample of `name`, across all label sets.
    pub fn all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SeriesSample> + 'a {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// Renders Prometheus text exposition format: one
    /// `name{labels} value` line per counter/gauge, cumulative
    /// `_bucket`/`_sum`/`_count` lines per histogram. Integer-only and
    /// ordered, so equal snapshots render byte-identically.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    out.push_str(&s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                SampleValue::Gauge(v) => {
                    out.push_str(&s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {v}");
                }
                SampleValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, b) in h.buckets.iter().enumerate() {
                        cum += b;
                        let bound = if i < HIST_BUCKETS {
                            bucket_bound(i).to_string()
                        } else {
                            "+Inf".to_owned()
                        };
                        let _ = write!(out, "{}_bucket", s.name);
                        write_labels(&mut out, &s.labels, Some(("le", &bound)));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{}_sum", s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.sum);
                    let _ = write!(out, "{}_count", s.name);
                    write_labels(&mut out, &s.labels, None);
                    let _ = writeln!(out, " {}", h.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_round_trip() {
        let r = MetricsRegistry::new();
        let c = r.counter("hits_total", &[("site", "0")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same series → same cell.
        let c2 = r.counter("hits_total", &[("site", "0")]);
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = r.gauge("depth", &[]);
        g.set(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.set_max(10);
        g.set_max(7);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn label_order_does_not_matter() {
        let r = MetricsRegistry::new();
        let a = r.counter("x", &[("a", "1"), ("b", "2")]);
        let b = r.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "re-registered as a different instrument kind")]
    fn kind_mismatch_panics_in_debug() {
        let r = MetricsRegistry::new();
        r.counter("x", &[]).inc();
        let _ = r.gauge("x", &[]);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn kind_mismatch_counts_and_detaches_in_release() {
        let r = MetricsRegistry::new();
        let c = r.counter("x", &[]);
        c.inc();
        let g = r.gauge("x", &[]);
        g.set(99);
        assert_eq!(c.get(), 1, "original untouched");
        assert_eq!(r.snapshot().value("x", &[]), Some(1));
        assert_eq!(
            r.snapshot().value("esr_obs_type_collisions_total", &[]),
            Some(1),
            "collision is visible on the scrape"
        );
        let _ = r.histogram("x", &[]);
        assert_eq!(
            r.snapshot().value("esr_obs_type_collisions_total", &[]),
            Some(2)
        );
    }

    #[test]
    fn histogram_buckets_are_log_linear() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 5, 1000, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2, "0 and 1 in the first bucket");
        assert_eq!(s.buckets[1], 1, "2 in the <=2 bucket");
        assert_eq!(s.buckets[2], 1, "3 in the <=3 bucket");
        assert_eq!(s.buckets[3], 1, "4 in the <=4 bucket");
        assert_eq!(s.buckets[4], 1, "5 in the first sub-bucket (4, 5]");
        assert_eq!(s.buckets[35], 1, "1000 in the (896, 1024] sub-bucket");
        assert_eq!(s.buckets[HIST_BUCKETS], 1, "u64::MAX overflows to +Inf");
    }

    #[test]
    fn bucket_layout_round_trips_and_bounds_resolution() {
        // Every bucket's bound and lower edge map back to the bucket.
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_idx(bucket_bound(i)), i, "bound of {i}");
            assert_eq!(bucket_idx(bucket_lower(i) + 1), i, "lower edge of {i}");
        }
        // Bounds are strictly increasing and the top covers the old
        // power-of-two range exactly.
        for i in 1..HIST_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), 1u64 << (BUCKET_POWERS - 1));
        // Sub-bucketing keeps relative width at or under 25%: a p999
        // read is off by at most a quarter of its own magnitude.
        for i in 4..HIST_BUCKETS {
            let width = bucket_bound(i) - bucket_bound(i - 1);
            assert!(width * 4 <= bucket_bound(i), "bucket {i} too wide");
        }
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.counter("z_total", &[]).inc();
        r.gauge("a_gauge", &[("site", "1")]).set(-2);
        r.gauge("a_gauge", &[("site", "0")]).set(5);
        let text = r.render();
        assert_eq!(
            text,
            "a_gauge{site=\"0\"} 5\na_gauge{site=\"1\"} -2\nz_total 1\n"
        );
        // Same updates → byte-identical render.
        let r2 = MetricsRegistry::new();
        r2.gauge("a_gauge", &[("site", "0")]).set(5);
        r2.gauge("a_gauge", &[("site", "1")]).set(-2);
        r2.counter("z_total", &[]).inc();
        assert_eq!(r2.render(), text);
        assert_eq!(r2.snapshot(), r.snapshot());
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat_micros", &[]);
        h.record(1);
        h.record(3);
        let text = r.render();
        assert!(text.contains("lat_micros_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"2\"} 1\n"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"3\"} 2\n"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"4\"} 2\n"), "{text}");
        assert!(text.contains("lat_micros_bucket{le=\"+Inf\"} 2\n"), "{text}");
        assert!(text.contains("lat_micros_sum 4\n"), "{text}");
        assert!(text.contains("lat_micros_count 2\n"), "{text}");
    }

    #[test]
    fn quantiles_are_exact_on_small_distinct_values() {
        let h = Histogram::default();
        for v in [1, 2, 3, 4] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.25), Some(1));
        assert_eq!(s.p50(), Some(2));
        assert_eq!(s.quantile(0.75), Some(3));
        assert_eq!(s.quantile(1.0), Some(4));
    }

    #[test]
    fn quantiles_on_uniform_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // Rank 500 lands in sub-bucket (448, 512] where interpolation
        // is exact for a dense uniform fill.
        assert_eq!(s.p50(), Some(500));
        // The tail lives in (896, 1024]: p99 true value 990, p999 true
        // value 999 — both land inside the 128-wide sub-bucket, so the
        // estimate is within that width, never a 2x power-of-two guess.
        assert_eq!(s.p99(), Some(1012));
        assert_eq!(s.p999(), Some(1023));
        assert_eq!(s.quantile(1.0), Some(1024));
    }

    #[test]
    fn quantiles_handle_edges() {
        let empty = Histogram::default().snapshot();
        assert_eq!(empty.p50(), None);

        // Everything past the finite range reports the largest finite
        // bound — a floor, not an invented tail.
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.snapshot().p50(), Some(1u64 << (BUCKET_POWERS - 1)));

        // A single value answers every quantile with (at most) its own
        // bucket's bound.
        let one = Histogram::default();
        one.record(7);
        let s = one.snapshot();
        assert_eq!(s.p50(), s.p999());
        let p = s.p50().unwrap();
        assert!((7..=8).contains(&p), "p50 = {p}");
    }

    #[test]
    fn cumulative_quantiles_match_sample_quantiles() {
        let h = Histogram::default();
        for v in [3, 17, 17, 90, 1500, 250_000] {
            h.record(v);
        }
        let s = h.snapshot();
        // Rebuild the cumulative pairs the way a Prometheus scrape
        // presents them and check both extractors agree.
        let mut cum = 0u64;
        let pairs: Vec<(u64, u64)> = s
            .buckets
            .iter()
            .enumerate()
            .map(|(i, b)| {
                cum += b;
                let bound = if i < HIST_BUCKETS {
                    bucket_bound(i)
                } else {
                    u64::MAX
                };
                (bound, cum)
            })
            .collect();
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(quantile_from_cumulative(&pairs, q), s.quantile(q), "q={q}");
        }
        assert_eq!(quantile_from_cumulative(&[], 0.5), None);
        assert_eq!(quantile_from_cumulative(&[(u64::MAX, 0)], 0.5), None);
    }
}
