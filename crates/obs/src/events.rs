//! A bounded ring of causally ordered structured trace events.
//!
//! The daemon's flight recorder: every protocol step (MSet accepted,
//! applied, completion notice, VTNC advance, decision, recovery
//! replay) drops one event here. The ring is bounded so a long-lived
//! daemon never grows without bound; old events are evicted and
//! counted. Each event carries a monotone sequence number assigned
//! under the ring lock — the *causal* order of events at this site —
//! plus a caller-supplied timestamp (wall micros in the daemon,
//! virtual time in the sim; the ring itself never reads a clock).
//!
//! The shape mirrors `esr_sim`'s `Trace`, but is shareable across
//! threads and wire-encodable so `esrctl trace` can dump it remotely.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone per-ring sequence number: the causal order of events.
    pub seq: u64,
    /// Caller-supplied timestamp (microseconds; wall or virtual).
    pub micros: u64,
    /// Emitting component (e.g. `site-1`, `link-1->2`, `recovery`).
    pub component: String,
    /// Human-readable payload.
    pub message: String,
}

#[derive(Debug, Default)]
struct RingInner {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded, shareable event ring. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct EventRing {
    inner: Arc<Mutex<RingInner>>,
    capacity: usize,
}

impl EventRing {
    /// A ring holding at most `capacity` events (oldest evicted first).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RingInner::default())),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Records one event at timestamp `micros`.
    pub fn record(&self, micros: u64, component: &str, message: impl Into<String>) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(TraceEvent {
            seq,
            micros,
            component: component.to_owned(),
            message: message.into(),
        });
    }

    /// All retained events, oldest first (sequence-ordered).
    pub fn entries(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }
}

impl Default for EventRing {
    /// A ring with the default daemon capacity (4096 events).
    fn default() -> Self {
        Self::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_causal_order() {
        let ring = EventRing::new(10);
        ring.record(5, "site-0", "applied et=1");
        ring.record(3, "site-0", "applied et=2"); // timestamps may regress…
        let es = ring.entries();
        assert_eq!(es.len(), 2);
        assert_eq!(es[0].seq, 0);
        assert_eq!(es[1].seq, 1); // …but seq never does
        assert_eq!(es[0].message, "applied et=1");
    }

    #[test]
    fn bounded_ring_evicts_oldest() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.record(i, "c", format!("e{i}"));
        }
        let es = ring.entries();
        assert_eq!(es.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(es[0].seq, 2, "oldest two evicted");
        assert_eq!(es[2].seq, 4);
        assert!(!ring.is_empty());
    }

    #[test]
    fn clones_share_the_ring() {
        let a = EventRing::new(8);
        let b = a.clone();
        a.record(0, "x", "one");
        b.record(1, "y", "two");
        assert_eq!(a.len(), 2);
        assert_eq!(b.entries()[1].component, "y");
    }
}
